"""Packet-level game-session traces (paper Sec. III-D, Fig. 4).

The paper captures eight RuneScape sessions with ``tcpdump`` and shows,
via the CDFs of packet length and packet inter-arrival time (IAT), that
the server load depends on the number *and type* of player interactions.
We reproduce the experiment with a session generator whose per-scenario
distributions encode the documented findings:

* **fast-paced** sessions (T1, T6) — the server sends packets as often
  as possible with as much information as possible, regardless of how
  crowded the area is;
* **player-to-player interaction** (T2 market vs. T3 crowded combat,
  T7) — similar packet sizes, very different IATs (market trades
  involve thinking time; combat does not);
* **group interaction** (T4-style play) — packets arrive more often
  *and* carry more objects (larger packets);
* **validation pairs** (T5a, T5b) — consecutive captures of the same
  environment produce statistically indistinguishable distributions.
"""

from repro.nettrace.packets import (
    PacketTrace,
    SessionScenario,
    ScenarioParams,
    SCENARIOS,
    scenario,
)
from repro.nettrace.generator import SessionGenerator, generate_session, generate_paper_traces
from repro.nettrace.analysis import (
    empirical_cdf,
    cdf_at,
    TraceSummary,
    summarize_trace,
    ks_distance,
)

__all__ = [
    "PacketTrace",
    "SessionScenario",
    "ScenarioParams",
    "SCENARIOS",
    "scenario",
    "SessionGenerator",
    "generate_session",
    "generate_paper_traces",
    "empirical_cdf",
    "cdf_at",
    "TraceSummary",
    "summarize_trace",
    "ks_distance",
]

"""Session generation: sampling packet streams from scenario parameters.

Sessions follow the paper's capture protocol: "Each trace is collected
from a game session of at least five minutes and at most one hour."
"""

from __future__ import annotations

import numpy as np

from repro.nettrace.packets import (
    PacketTrace,
    ScenarioParams,
    SCENARIOS,
    SessionScenario,
)

__all__ = ["SessionGenerator", "generate_session", "generate_paper_traces"]

#: Ethernet MTU minus headers — packets are clipped here, which produces
#: the truncation visible in the paper's length CDF at 500 B.
MAX_PACKET_BYTES = 1460.0
MIN_PACKET_BYTES = 40.0


class SessionGenerator:
    """Generates packet traces for one scenario.

    Parameters
    ----------
    params:
        Scenario distribution parameters.
    rng:
        Random generator (or a seed via :func:`generate_session`).
    """

    def __init__(self, params: ScenarioParams, rng: np.random.Generator) -> None:
        self.params = params
        self._rng = rng

    def generate(self, duration_seconds: float) -> tuple[np.ndarray, np.ndarray]:
        """Sample ``(timestamps, lengths)`` for one session.

        IATs are gamma with the configured mean/shape; lengths are
        lognormal around the configured median, clipped to
        ``[MIN_PACKET_BYTES, MAX_PACKET_BYTES]``.
        """
        if duration_seconds <= 0:
            raise ValueError("duration must be positive")
        p = self.params
        # Expected packet count plus slack; trim to the duration after.
        expected = int(duration_seconds * 1000.0 / p.iat_mean_ms)
        n = max(int(expected * 1.25) + 16, 16)
        scale_ms = p.iat_mean_ms / p.iat_shape
        iats = self._rng.gamma(p.iat_shape, scale_ms, size=n) / 1000.0
        timestamps = np.cumsum(iats)
        timestamps = timestamps[timestamps <= duration_seconds]
        while timestamps.size == 0 or timestamps[-1] < duration_seconds * 0.95:
            extra = self._rng.gamma(p.iat_shape, scale_ms, size=n) / 1000.0
            start = timestamps[-1] if timestamps.size else 0.0
            more = start + np.cumsum(extra)
            timestamps = np.concatenate([timestamps, more[more <= duration_seconds]])
            if more[-1] > duration_seconds:
                break
        lengths = self._rng.lognormal(
            mean=np.log(p.length_median), sigma=p.length_sigma, size=timestamps.size
        )
        lengths = np.clip(lengths, MIN_PACKET_BYTES, MAX_PACKET_BYTES)
        return timestamps, lengths


def generate_session(
    scenario_id: SessionScenario,
    *,
    duration_seconds: float = 600.0,
    seed: int | None = None,
) -> PacketTrace:
    """Generate one session trace for a scenario.

    The default duration (10 minutes) sits inside the paper's 5-60
    minute capture window.  Seeds default to a per-scenario constant so
    the paper traces are reproducible; T5a and T5b intentionally share
    parameters but differ in seed.
    """
    params = SCENARIOS[scenario_id]
    if seed is None:
        seed = 5000 + list(SCENARIOS).index(scenario_id)
    rng = np.random.default_rng(seed)
    timestamps, lengths = SessionGenerator(params, rng).generate(duration_seconds)
    return PacketTrace(name=scenario_id.value, timestamps=timestamps, lengths=lengths)


def generate_paper_traces(
    *, duration_seconds: float = 600.0
) -> dict[SessionScenario, PacketTrace]:
    """Generate all eight Fig. 4 traces (nine captures, T5 twice)."""
    return {
        scen: generate_session(scen, duration_seconds=duration_seconds)
        for scen in SessionScenario
    }

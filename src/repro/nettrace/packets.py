"""Packet-trace containers and the eight session scenarios of Fig. 4.

Each scenario is parameterized by the moments of its packet-length and
inter-arrival-time distributions.  The concrete values are calibrated so
that the generated CDFs reproduce the qualitative relations the paper
reports (see the package docstring); absolute byte/millisecond scales
follow the plotted ranges (lengths ~40-500 B, IATs ~20-600 ms).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = ["PacketTrace", "SessionScenario", "ScenarioParams", "SCENARIOS", "scenario"]


@dataclass
class PacketTrace:
    """One captured (generated) game session.

    Attributes
    ----------
    name:
        Trace label, e.g. ``"Trace 2"``.
    timestamps:
        Packet arrival times in seconds, non-decreasing.
    lengths:
        Packet sizes in bytes, same length as ``timestamps``.
    """

    name: str
    timestamps: np.ndarray
    lengths: np.ndarray

    def __post_init__(self) -> None:
        self.timestamps = np.asarray(self.timestamps, dtype=np.float64)
        self.lengths = np.asarray(self.lengths, dtype=np.float64)
        if self.timestamps.shape != self.lengths.shape or self.timestamps.ndim != 1:
            raise ValueError("timestamps and lengths must be equal-length 1-D arrays")
        if self.timestamps.size >= 2 and np.any(np.diff(self.timestamps) < 0):
            raise ValueError("timestamps must be non-decreasing")
        if self.lengths.size and self.lengths.min() <= 0:
            raise ValueError("packet lengths must be positive")

    @property
    def n_packets(self) -> int:
        """Number of packets in the session."""
        return int(self.timestamps.size)

    @property
    def duration_seconds(self) -> float:
        """Session duration (last minus first timestamp)."""
        if self.n_packets < 2:
            return 0.0
        return float(self.timestamps[-1] - self.timestamps[0])

    def inter_arrival_ms(self) -> np.ndarray:
        """Packet inter-arrival times in milliseconds."""
        if self.n_packets < 2:
            return np.zeros(0)
        return np.diff(self.timestamps) * 1000.0

    def throughput_bytes_per_second(self) -> float:
        """Mean server-to-client throughput over the session."""
        dur = self.duration_seconds
        if dur <= 0:
            return 0.0
        return float(self.lengths.sum() / dur)


class SessionScenario(enum.Enum):
    """The eight captured environments of Fig. 4."""

    T0 = "Trace 0"  # non-crowded + creating content
    T1 = "Trace 1"  # non-crowded + fast paced
    T2 = "Trace 2"  # semi-crowded + p2p interaction (market)
    T3 = "Trace 3"  # crowded + p2p interaction
    T4 = "Trace 4"  # new content + non-crowded (group interaction)
    T5A = "Trace 5a"  # new content + crowded (validation capture 1)
    T5B = "Trace 5b"  # new content + crowded (validation capture 2)
    T6 = "Trace 6"  # crowded + fast paced
    T7 = "Trace 7"  # new content + locks

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class ScenarioParams:
    """Distribution parameters of one scenario.

    Packet lengths follow a lognormal distribution (clipped to the MTU);
    IATs follow a gamma distribution.  Both choices are standard for
    game traffic modelling and produce the long-tailed CDFs the paper
    plots.

    Parameters
    ----------
    description:
        The Fig. 4 legend text.
    length_median / length_sigma:
        Median (bytes) and lognormal shape of the packet length.
    iat_mean_ms / iat_shape:
        Mean inter-arrival time (milliseconds) and gamma shape (larger
        shape = more regular pacing, as in fast-paced streams).
    """

    description: str
    length_median: float
    length_sigma: float
    iat_mean_ms: float
    iat_shape: float

    def __post_init__(self) -> None:
        if self.length_median <= 0 or self.length_sigma <= 0:
            raise ValueError("length parameters must be positive")
        if self.iat_mean_ms <= 0 or self.iat_shape <= 0:
            raise ValueError("IAT parameters must be positive")


#: Scenario parameter catalogue.  Calibration notes:
#: - T1/T6 (fast paced): tight, small IAT (~50 ms) with high regularity
#:   and large packets — identical whether crowded (T6) or not (T1).
#: - T2 (market p2p): packet sizes like T3/T7, but IAT much larger
#:   (trading includes thinking time).
#: - T3 (crowded p2p combat): T2-like sizes, much smaller IAT.
#: - T4 (group interaction): smallest IAT outside the fast-paced pair
#:   and the largest packets (updates describe many objects).
#: - T5a/T5b: identical parameters, different seeds (validation pair).
#: - T0 (creating content, solitary): sparse small packets.
#: - T7 (new content + locks): T2-like sizes with lower IAT moments.
SCENARIOS: dict[SessionScenario, ScenarioParams] = {
    SessionScenario.T0: ScenarioParams(
        "non-crowded + creating content", length_median=90, length_sigma=0.55,
        iat_mean_ms=260, iat_shape=1.2,
    ),
    SessionScenario.T1: ScenarioParams(
        "non-crowded + fast paced", length_median=220, length_sigma=0.45,
        iat_mean_ms=55, iat_shape=6.0,
    ),
    SessionScenario.T2: ScenarioParams(
        "semi-crowded + p2p interaction", length_median=150, length_sigma=0.50,
        iat_mean_ms=330, iat_shape=1.1,
    ),
    SessionScenario.T3: ScenarioParams(
        "crowded + p2p interaction", length_median=155, length_sigma=0.50,
        iat_mean_ms=140, iat_shape=1.8,
    ),
    SessionScenario.T4: ScenarioParams(
        "new content + non-crowded (group interaction)", length_median=280,
        length_sigma=0.45, iat_mean_ms=90, iat_shape=2.5,
    ),
    SessionScenario.T5A: ScenarioParams(
        "new content + crowded (capture a)", length_median=190, length_sigma=0.50,
        iat_mean_ms=120, iat_shape=2.0,
    ),
    SessionScenario.T5B: ScenarioParams(
        "new content + crowded (capture b)", length_median=190, length_sigma=0.50,
        iat_mean_ms=120, iat_shape=2.0,
    ),
    SessionScenario.T6: ScenarioParams(
        "crowded + fast paced", length_median=225, length_sigma=0.45,
        iat_mean_ms=52, iat_shape=6.0,
    ),
    SessionScenario.T7: ScenarioParams(
        "new content + locks", length_median=150, length_sigma=0.50,
        iat_mean_ms=210, iat_shape=1.6,
    ),
}


def scenario(name: str | SessionScenario) -> ScenarioParams:
    """Look up scenario parameters by enum or label (e.g. ``"Trace 2"``)."""
    if isinstance(name, SessionScenario):
        return SCENARIOS[name]
    for scen, params in SCENARIOS.items():
        if scen.value == name or scen.name == name:
            return params
    raise KeyError(f"unknown scenario {name!r}")

"""Packet-trace analysis: empirical CDFs and summary statistics (Fig. 4)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nettrace.packets import PacketTrace

__all__ = ["empirical_cdf", "cdf_at", "TraceSummary", "summarize_trace", "ks_distance"]


def empirical_cdf(samples: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """The empirical CDF of a sample.

    Returns ``(x, F)`` with ``x`` the sorted unique sample values and
    ``F`` the fraction of samples <= x (so ``F[-1] == 1``).
    """
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot build a CDF from an empty sample")
    x, counts = np.unique(arr, return_counts=True)
    F = np.cumsum(counts) / arr.size
    return x, F


def cdf_at(samples: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Evaluate the empirical CDF at given points (vectorized)."""
    arr = np.sort(np.asarray(samples, dtype=np.float64))
    pts = np.asarray(points, dtype=np.float64)
    return np.searchsorted(arr, pts, side="right") / arr.size


@dataclass(frozen=True)
class TraceSummary:
    """Summary statistics of one packet trace (the Fig. 4 discussion
    compares exactly these moments across scenarios)."""

    name: str
    n_packets: int
    duration_seconds: float
    length_mean: float
    length_median: float
    length_p90: float
    iat_mean_ms: float
    iat_median_ms: float
    iat_std_ms: float
    throughput_bps: float


def summarize_trace(trace: PacketTrace) -> TraceSummary:
    """Compute the summary statistics of a packet trace."""
    iats = trace.inter_arrival_ms()
    if iats.size == 0:
        raise ValueError(f"trace {trace.name!r} has fewer than 2 packets")
    return TraceSummary(
        name=trace.name,
        n_packets=trace.n_packets,
        duration_seconds=trace.duration_seconds,
        length_mean=float(trace.lengths.mean()),
        length_median=float(np.median(trace.lengths)),
        length_p90=float(np.percentile(trace.lengths, 90)),
        iat_mean_ms=float(iats.mean()),
        iat_median_ms=float(np.median(iats)),
        iat_std_ms=float(iats.std()),
        throughput_bps=trace.throughput_bytes_per_second(),
    )


def ks_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Two-sample Kolmogorov-Smirnov distance (sup |F_a - F_b|).

    Used to verify the paper's validation claim: two captures of the
    same environment (T5a, T5b) have close distributions, while
    different scenarios are far apart.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.size == 0 or b.size == 0:
        raise ValueError("KS distance requires non-empty samples")
    grid = np.concatenate([a, b])
    return float(np.abs(cdf_at(a, grid) - cdf_at(b, grid)).max())

"""Population statistics: active vs. concurrent players.

Section III-B relates three population measures for RuneScape:

* **open accounts** (~8M in 2007),
* **active players** — played at least once in the last month (~5M),
* **active concurrent players** — online simultaneously (peak ~250k).

It also estimates a 30-60 % conversion from starting to dedicated
players.  These ratios let experiments translate a subscription level
(as produced by :mod:`repro.market`) into the concurrency levels that
drive resource demand.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PopulationStats", "concurrency_ratio", "RUNESCAPE_2007"]


@dataclass(frozen=True)
class PopulationStats:
    """A consistent snapshot of the three population measures.

    Parameters
    ----------
    open_accounts:
        Total accounts ever created (and not purged).
    active_players:
        Players active within the last month.
    peak_concurrent:
        Maximum simultaneous players.
    """

    open_accounts: int
    active_players: int
    peak_concurrent: int

    def __post_init__(self) -> None:
        if not 0 < self.peak_concurrent <= self.active_players <= self.open_accounts:
            raise ValueError(
                "expected peak_concurrent <= active_players <= open_accounts, all positive"
            )

    @property
    def activity_rate(self) -> float:
        """Active players as a fraction of open accounts."""
        return self.active_players / self.open_accounts

    @property
    def peak_concurrency_rate(self) -> float:
        """Peak concurrent players as a fraction of active players."""
        return self.peak_concurrent / self.active_players

    def concurrent_from_active(self, active: np.ndarray | float) -> np.ndarray | float:
        """Scale an active-player level to a peak-concurrency level."""
        return np.asarray(active, dtype=np.float64) * self.peak_concurrency_rate


#: The paper's RuneScape 2007 snapshot (Sec. III-B).
RUNESCAPE_2007 = PopulationStats(
    open_accounts=8_000_000,
    active_players=5_000_000,
    peak_concurrent=250_000,
)


def concurrency_ratio(stats: PopulationStats = RUNESCAPE_2007) -> float:
    """Peak-concurrent / active ratio (RuneScape 2007: 250k / 5M = 5 %)."""
    return stats.peak_concurrency_rate

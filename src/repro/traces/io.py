"""Trace persistence: NPZ (exact) and CSV (interchange) round-trips.

NPZ keeps full precision and metadata in one file; CSV writes one file
per region in the same wide layout the RuneScape player-count page
implies (one row per sample, one column per server group).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.datacenter.geography import GeoLocation, LOCATIONS
from repro.traces.model import GameTrace, RegionTrace

__all__ = ["save_npz", "load_npz", "save_csv_dir", "load_csv_dir"]


def save_npz(trace: GameTrace, path: str | Path) -> None:
    """Save a game trace to a single ``.npz`` file."""
    path = Path(path)
    arrays: dict[str, np.ndarray] = {}
    meta = {"name": trace.name, "regions": []}
    for i, region in enumerate(trace.regions):
        arrays[f"region_{i}_loads"] = region.loads
        meta["regions"].append(
            {
                "name": region.name,
                "location": {
                    "name": region.location.name,
                    "latitude": region.location.latitude,
                    "longitude": region.location.longitude,
                    "region": region.location.region,
                },
                "capacity": region.capacity,
                "step_minutes": region.step_minutes,
                "group_names": list(region.group_names),
            }
        )
    arrays["meta_json"] = np.array(json.dumps(meta))
    np.savez_compressed(path, **arrays)


def load_npz(path: str | Path) -> GameTrace:
    """Load a game trace saved by :func:`save_npz`."""
    with np.load(Path(path), allow_pickle=False) as data:
        meta = json.loads(str(data["meta_json"]))
        regions = []
        for i, rmeta in enumerate(meta["regions"]):
            loc_meta = rmeta["location"]
            loc = GeoLocation(
                name=loc_meta["name"],
                latitude=loc_meta["latitude"],
                longitude=loc_meta["longitude"],
                region=loc_meta["region"],
            )
            regions.append(
                RegionTrace(
                    name=rmeta["name"],
                    location=loc,
                    loads=data[f"region_{i}_loads"],
                    capacity=rmeta["capacity"],
                    step_minutes=rmeta["step_minutes"],
                    group_names=tuple(rmeta["group_names"]),
                )
            )
    return GameTrace(name=meta["name"], regions=regions)


def save_csv_dir(trace: GameTrace, directory: str | Path) -> None:
    """Save a game trace as one CSV per region plus a manifest.

    Each CSV has a ``step`` column followed by one column per server
    group; the manifest records capacities, locations and sampling.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = {"name": trace.name, "regions": []}
    for region in trace.regions:
        fname = f"{region.name.lower().replace(' ', '_')}.csv"
        with open(directory / fname, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["step", *region.group_names])
            for step in range(region.n_steps):
                writer.writerow([step, *region.loads[step].tolist()])
        manifest["regions"].append(
            {
                "name": region.name,
                "file": fname,
                "location": region.location.name,
                "capacity": region.capacity,
                "step_minutes": region.step_minutes,
            }
        )
    with open(directory / "manifest.json", "w") as fh:
        json.dump(manifest, fh, indent=2)


def load_csv_dir(directory: str | Path) -> GameTrace:
    """Load a game trace saved by :func:`save_csv_dir`."""
    directory = Path(directory)
    with open(directory / "manifest.json") as fh:
        manifest = json.load(fh)
    regions = []
    for rmeta in manifest["regions"]:
        with open(directory / rmeta["file"], newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader)
            group_names = tuple(header[1:])
            rows = [[int(v) for v in row[1:]] for row in reader]
        loc = LOCATIONS.get(rmeta["location"])
        if loc is None:
            raise KeyError(f"manifest references unknown location {rmeta['location']!r}")
        regions.append(
            RegionTrace(
                name=rmeta["name"],
                location=loc,
                loads=np.array(rows, dtype=np.int64),
                capacity=rmeta["capacity"],
                step_minutes=rmeta["step_minutes"],
                group_names=group_names,
            )
        )
    return GameTrace(name=manifest["name"], regions=regions)

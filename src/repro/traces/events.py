"""Population events: the discrete shocks that drive MMOG demand.

Section III-B documents three kinds of shocks in the RuneScape trace:

* a **mass quit** after an unpopular game-design decision — the number
  of active concurrent players dropped by a quarter *in less than one
  day*, then recovered to only ~95 % of its previous value once the
  change was amended;
* **content releases** — about one week of ~50 % elevated concurrency
  after each release;
* **outages** — short-lived server-group failures that zero the load of
  a group ("these outages are few and short-lived").

Each event is a multiplicative modifier applied to the baseline
population level; the synthesizer composes all active modifiers per step.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = ["PopulationEvent", "MassQuit", "ContentRelease", "Outage"]


class PopulationEvent(abc.ABC):
    """A time-localized multiplicative modifier of the player population."""

    @abc.abstractmethod
    def multiplier(self, step_days: np.ndarray) -> np.ndarray:
        """Population multiplier per step.

        Parameters
        ----------
        step_days:
            Simulation time of each step, in (fractional) days since the
            trace start.

        Returns
        -------
        numpy.ndarray
            A positive multiplier per step; ``1.0`` where the event has
            no effect.
        """


@dataclass(frozen=True)
class MassQuit(PopulationEvent):
    """An unpopular decision: sharp drop, later partial recovery.

    Parameters
    ----------
    start_day:
        When the unpopular decision lands.
    drop_fraction:
        Fraction of concurrent players lost (the paper observed ~0.25).
    drop_days:
        How long the decline takes (paper: "less than one day").
    amend_day:
        When the operators amend the change and recovery starts.
    recovery_days:
        Duration of the recovery ramp.
    recovery_level:
        Final population relative to the pre-event level (paper: ~0.95).
    """

    start_day: float
    drop_fraction: float = 0.25
    drop_days: float = 0.75
    amend_day: float | None = None
    recovery_days: float = 5.0
    recovery_level: float = 0.95

    def __post_init__(self) -> None:
        if not 0.0 < self.drop_fraction < 1.0:
            raise ValueError("drop_fraction must be in (0, 1)")
        if not 0.0 < self.recovery_level <= 1.0:
            raise ValueError("recovery_level must be in (0, 1]")

    def multiplier(self, step_days: np.ndarray) -> np.ndarray:
        """Population multiplier per step (see the ABC)."""
        t = np.asarray(step_days, dtype=np.float64)
        amend = self.amend_day if self.amend_day is not None else self.start_day + 3.0
        low = 1.0 - self.drop_fraction
        out = np.ones_like(t)
        # Declining phase: linear crash over drop_days.
        declining = (t >= self.start_day) & (t < self.start_day + self.drop_days)
        frac = (t[declining] - self.start_day) / self.drop_days
        out[declining] = 1.0 - self.drop_fraction * frac
        # Trough: hold at the low level until the amendment.
        trough = (t >= self.start_day + self.drop_days) & (t < amend)
        out[trough] = low
        # Recovery: ramp from the trough to recovery_level.
        recovering = (t >= amend) & (t < amend + self.recovery_days)
        frac = (t[recovering] - amend) / self.recovery_days
        out[recovering] = low + (self.recovery_level - low) * frac
        # Aftermath: permanently at recovery_level.
        out[t >= amend + self.recovery_days] = self.recovery_level
        return out


@dataclass(frozen=True)
class ContentRelease(PopulationEvent):
    """A content release: a surge that decays over about a week.

    Parameters
    ----------
    day:
        Release date, in days since trace start.
    surge_fraction:
        Peak relative concurrency increase (paper: ~0.5).
    ramp_days:
        Time to reach the surge peak.
    duration_days:
        Length of the elevated period before decaying back (paper: about
        one week).
    """

    day: float
    surge_fraction: float = 0.5
    ramp_days: float = 0.5
    duration_days: float = 7.0

    def __post_init__(self) -> None:
        if self.surge_fraction <= 0:
            raise ValueError("surge_fraction must be positive")

    def multiplier(self, step_days: np.ndarray) -> np.ndarray:
        """Population multiplier per step (see the ABC)."""
        t = np.asarray(step_days, dtype=np.float64)
        out = np.ones_like(t)
        peak = 1.0 + self.surge_fraction
        # Ramp up.
        ramp = (t >= self.day) & (t < self.day + self.ramp_days)
        frac = (t[ramp] - self.day) / self.ramp_days
        out[ramp] = 1.0 + self.surge_fraction * frac
        # Elevated plateau with linear decay back to baseline.
        hot = (t >= self.day + self.ramp_days) & (t < self.day + self.duration_days)
        frac = (t[hot] - self.day - self.ramp_days) / max(
            self.duration_days - self.ramp_days, 1e-9
        )
        out[hot] = peak - self.surge_fraction * frac
        return out


@dataclass(frozen=True)
class Outage(PopulationEvent):
    """A short server outage: load drops to zero for a brief window.

    Outages are applied per server group by the synthesizer (an outage
    takes one group down, not the game); as a population event the
    multiplier is 0 inside the window.
    """

    start_day: float
    duration_minutes: float = 10.0

    def __post_init__(self) -> None:
        if self.duration_minutes <= 0:
            raise ValueError("duration must be positive")

    @property
    def end_day(self) -> float:
        """The end of the outage window, in days."""
        return self.start_day + self.duration_minutes / (24.0 * 60.0)

    def multiplier(self, step_days: np.ndarray) -> np.ndarray:
        """Population multiplier per step (see the ABC)."""
        t = np.asarray(step_days, dtype=np.float64)
        out = np.ones_like(t)
        out[(t >= self.start_day) & (t < self.end_day)] = 0.0
        return out


def compose_multipliers(
    events: list[PopulationEvent], step_days: np.ndarray
) -> np.ndarray:
    """Product of all event multipliers per step."""
    out = np.ones_like(np.asarray(step_days, dtype=np.float64))
    for event in events:
        out *= event.multiplier(step_days)
    return out

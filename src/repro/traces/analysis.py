"""Workload-trace analysis: the Sec. III / Fig. 3 statistics.

Three analyses characterize a region's workload in the paper:

1. **load bands** — per-step minimum, median and maximum load across
   the region's server groups (Fig. 3, top);
2. **interquartile range** — per-step IQR of group loads, showing the
   diurnal cycle of between-group variability (Fig. 3, middle);
3. **autocorrelation** — per-group autocorrelation function of the load
   series, exposing the 24 h cycle as a positive peak near lag 720
   (720 × 2 min) and a negative peak near lag 360 (Fig. 3, bottom).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traces.model import RegionTrace

__all__ = [
    "LoadBands",
    "load_bands",
    "interquartile_range",
    "autocorrelation",
    "autocorrelation_matrix",
    "dominant_period_steps",
    "fraction_always_full",
    "weekend_effect_ratio",
]


@dataclass(frozen=True)
class LoadBands:
    """Per-step min / median / max load across a region's server groups."""

    minimum: np.ndarray
    median: np.ndarray
    maximum: np.ndarray

    def peak_median(self) -> float:
        """The largest per-step median (players)."""
        return float(self.median.max())

    def median_over_minimum_at_peak(self) -> float:
        """Ratio median/min at the step where the median peaks.

        The paper reports the peak-hour median being about 50 % higher
        than the minimum; this statistic quantifies that claim.
        """
        idx = int(np.argmax(self.median))
        lo = max(float(self.minimum[idx]), 1.0)
        return float(self.median[idx]) / lo


def load_bands(region: RegionTrace) -> LoadBands:
    """Min / median / max load per step across server groups (Fig. 3 top)."""
    loads = region.loads
    return LoadBands(
        minimum=loads.min(axis=1),
        median=np.median(loads, axis=1),
        maximum=loads.max(axis=1),
    )


def interquartile_range(region: RegionTrace) -> np.ndarray:
    """Per-step IQR of server-group loads (Fig. 3 middle)."""
    q75, q25 = np.percentile(region.loads, [75, 25], axis=1)
    return q75 - q25


def autocorrelation(series: np.ndarray, max_lag: int) -> np.ndarray:
    """Sample autocorrelation function of a 1-D series for lags 0..max_lag.

    Uses the standard biased estimator (normalizing by the full-series
    variance), which is what statistical packages plot by default and
    what the paper's Fig. 3 shows.  ``acf[0]`` is always 1 for a
    non-constant series; constant series return an all-zero ACF (their
    autocovariance is undefined).
    """
    x = np.asarray(series, dtype=np.float64)
    n = x.size
    if max_lag < 0:
        raise ValueError("max_lag must be non-negative")
    if max_lag >= n:
        raise ValueError("max_lag must be smaller than the series length")
    x = x - x.mean()
    denom = float(np.dot(x, x))
    if denom <= 0:
        return np.zeros(max_lag + 1)
    # FFT-based autocovariance: O(n log n) instead of O(n * max_lag).
    nfft = int(2 ** np.ceil(np.log2(2 * n - 1)))
    fx = np.fft.rfft(x, nfft)
    acov = np.fft.irfft(fx * np.conjugate(fx), nfft)[: max_lag + 1]
    return acov / denom


def autocorrelation_matrix(region: RegionTrace, max_lag: int) -> np.ndarray:
    """ACF of every server group: shape ``(max_lag + 1, n_groups)``."""
    return np.column_stack(
        [autocorrelation(region.loads[:, g], max_lag) for g in range(region.n_groups)]
    )


def dominant_period_steps(series: np.ndarray, *, min_lag: int = 2) -> int:
    """Lag of the largest positive autocorrelation peak beyond ``min_lag``.

    For a diurnal trace sampled every 2 minutes this lands near 720
    (24 hours).  The search skips the trivial lag-0/short-lag region and
    only considers local maxima of the ACF.
    """
    n = np.asarray(series).size
    max_lag = min(n - 1, int(n * 0.75))
    acf = autocorrelation(series, max_lag)
    if max_lag <= min_lag + 1:
        return min_lag
    interior = acf[min_lag : max_lag - 1]
    # Local maxima: greater than both neighbours.
    left = acf[min_lag - 1 : max_lag - 2]
    right = acf[min_lag + 1 : max_lag]
    peaks = np.where((interior > left) & (interior >= right))[0]
    if peaks.size == 0:
        return int(np.argmax(acf[min_lag:]) + min_lag)
    best = peaks[np.argmax(interior[peaks])]
    return int(best + min_lag)


def fraction_always_full(
    region: RegionTrace, *, level: float = 0.90, tolerance: float = 0.05
) -> float:
    """Fraction of groups whose load is ~always above ``level`` capacity.

    A group counts as "always full" when at least ``1 - tolerance`` of
    its samples exceed ``level`` of capacity — the tolerance absorbs the
    short outages the paper notes as the exception.
    """
    util = region.utilization()
    frac_above = (util >= level).mean(axis=0)
    return float((frac_above >= 1.0 - tolerance).mean())


def weekend_effect_ratio(region: RegionTrace) -> float:
    """Mean weekend load over mean weekday load (1.0 = no weekend effect).

    Day 0 of the trace is taken as a Monday, matching the synthesizer.
    """
    steps_per_day = int(round(24 * 60 / region.step_minutes))
    day_index = np.arange(region.n_steps) // steps_per_day
    weekday = day_index % 7
    total = region.total_players().astype(np.float64)
    weekend = total[weekday >= 5]
    week = total[weekday < 5]
    if weekend.size == 0 or week.size == 0:
        return 1.0
    return float(weekend.mean() / week.mean())

"""Trace containers: server groups, regions, whole games.

The structure mirrors the RuneScape deployment the paper traced: a game
is served by *server groups* ("worlds"), each group capped at about
2,000 simultaneous clients, and groups are placed in geographic
*regions* (Europe, US East Coast, ...).  The official player-count page
reports, every two minutes, the number of players on each group; the
paper's traces — and ours — are exactly that matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.datacenter.geography import GeoLocation

__all__ = ["ServerGroupTrace", "RegionTrace", "GameTrace", "DEFAULT_SERVER_CAPACITY"]

#: Default client capacity of one fully loaded game server (Sec. V-A).
DEFAULT_SERVER_CAPACITY = 2000


@dataclass
class ServerGroupTrace:
    """Player counts over time for one server group.

    Attributes
    ----------
    name:
        Server-group identifier, e.g. ``"eu-grp-07"``.
    players:
        1-D integer array of concurrent player counts, one entry per
        sampling step.
    capacity:
        Maximum simultaneous clients of the group.
    """

    name: str
    players: np.ndarray
    capacity: int = DEFAULT_SERVER_CAPACITY

    def __post_init__(self) -> None:
        self.players = np.asarray(self.players)
        if self.players.ndim != 1:
            raise ValueError("players must be a 1-D series")
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        if self.players.size and (self.players.min() < 0 or self.players.max() > self.capacity):
            raise ValueError("player counts must lie in [0, capacity]")

    @property
    def n_steps(self) -> int:
        """Number of samples in the trace."""
        return int(self.players.size)

    def utilization(self) -> np.ndarray:
        """Load as a fraction of capacity, per step (float array)."""
        return self.players / float(self.capacity)


@dataclass
class RegionTrace:
    """All server groups of one geographic region.

    Attributes
    ----------
    name:
        Region label, e.g. ``"Europe"`` (the paper's "region 0").
    location:
        Representative population centre of the region's players, used
        by the matching mechanism for distance computations.
    loads:
        2-D integer array of shape ``(n_steps, n_groups)``: concurrent
        players per step and server group.
    capacity:
        Per-group client capacity.
    step_minutes:
        Sampling interval (the paper's traces use 2 minutes).
    """

    name: str
    location: GeoLocation
    loads: np.ndarray
    capacity: int = DEFAULT_SERVER_CAPACITY
    step_minutes: float = 2.0
    group_names: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.loads = np.asarray(self.loads)
        if self.loads.ndim != 2:
            raise ValueError("loads must be 2-D: (n_steps, n_groups)")
        if not self.group_names:
            self.group_names = tuple(
                f"{self.name.lower().replace(' ', '-')}-grp-{i:02d}"
                for i in range(self.loads.shape[1])
            )
        if len(self.group_names) != self.loads.shape[1]:
            raise ValueError("group_names length must match number of groups")

    @property
    def n_steps(self) -> int:
        """Number of samples."""
        return int(self.loads.shape[0])

    @property
    def n_groups(self) -> int:
        """Number of server groups."""
        return int(self.loads.shape[1])

    def group(self, index: int) -> ServerGroupTrace:
        """Extract one server group as a standalone trace."""
        return ServerGroupTrace(
            name=self.group_names[index],
            players=self.loads[:, index].copy(),
            capacity=self.capacity,
        )

    def groups(self) -> Iterator[ServerGroupTrace]:
        """Iterate over all server groups."""
        for i in range(self.n_groups):
            yield self.group(i)

    def total_players(self) -> np.ndarray:
        """Region-wide concurrent players per step."""
        return self.loads.sum(axis=1)

    def utilization(self) -> np.ndarray:
        """Per-group load fraction, shape ``(n_steps, n_groups)``."""
        return self.loads / float(self.capacity)

    def slice_steps(self, start: int, stop: int) -> "RegionTrace":
        """A new region trace restricted to ``[start, stop)`` steps."""
        return RegionTrace(
            name=self.name,
            location=self.location,
            loads=self.loads[start:stop].copy(),
            capacity=self.capacity,
            step_minutes=self.step_minutes,
            group_names=self.group_names,
        )


@dataclass
class GameTrace:
    """A full game trace: one region trace per geographic region.

    The paper's RuneScape traces cover five regions; experiments select
    subsets (e.g. region 0 / Europe for Fig. 3, North America for
    Figs. 13-14).
    """

    name: str
    regions: list[RegionTrace] = field(default_factory=list)

    def __post_init__(self) -> None:
        steps = {r.n_steps for r in self.regions}
        if len(steps) > 1:
            raise ValueError(f"regions have inconsistent lengths: {sorted(steps)}")
        mins = {r.step_minutes for r in self.regions}
        if len(mins) > 1:
            raise ValueError("regions have inconsistent sampling intervals")

    @property
    def n_steps(self) -> int:
        """Number of samples (0 for an empty trace)."""
        return self.regions[0].n_steps if self.regions else 0

    @property
    def step_minutes(self) -> float:
        """Sampling interval in minutes."""
        return self.regions[0].step_minutes if self.regions else 2.0

    def region(self, name: str) -> RegionTrace:
        """Look up a region by name.

        Raises ``KeyError`` for unknown names: this *is* a mapping
        lookup (documented contract, relied on by callers and tests),
        not an accidental escape.
        """
        for r in self.regions:
            if r.name == name:
                return r
        raise KeyError(f"no region {name!r} in trace {self.name!r}")  # reprolint: disable=RA007

    def global_players(self) -> np.ndarray:
        """Game-wide concurrent players per step."""
        if not self.regions:
            return np.zeros(0, dtype=np.int64)
        return np.sum([r.total_players() for r in self.regions], axis=0)

    def peak_global_players(self) -> int:
        """Maximum game-wide concurrency over the whole trace."""
        g = self.global_players()
        return int(g.max()) if g.size else 0

    def slice_steps(self, start: int, stop: int) -> "GameTrace":
        """A new game trace restricted to ``[start, stop)`` steps."""
        return GameTrace(
            name=self.name,
            regions=[r.slice_steps(start, stop) for r in self.regions],
        )

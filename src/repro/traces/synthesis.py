"""Parametric synthesis of RuneScape-like workload traces.

The original ten-month RuneScape trace is not publicly archived, so the
experiments are driven by synthetic traces calibrated to every
statistical property Sec. III documents:

* **sampling** — one sample per server group every two minutes;
* **diurnal cycle** — strong 24 h period (autocorrelation peak at
  ~720 lags of 2 min, negative peak at ~360), evening peak hours in each
  region's local time, and a peak-hour median roughly 50 % above the
  off-peak minimum;
* **weekend effects** — present in about two thirds of traces, absent in
  the rest (configurable);
* **always-full servers** — 2-5 % of groups sit at ~95 % load around the
  clock, except for outages;
* **outages** — few, short-lived group failures;
* **population events** — mass quits and content-release surges
  (:mod:`repro.traces.events`);
* **momentum** — short-term load changes are strongly autocorrelated
  (players arrive and leave in smooth session flows, not i.i.d. per
  sample), modelled with momentum-bearing AR(2) noise.

All randomness flows through one :class:`numpy.random.Generator` so a
seed pins the entire trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.signal import lfilter

from repro.datacenter.geography import GeoLocation, location
from repro.traces.events import PopulationEvent, MassQuit, ContentRelease, compose_multipliers
from repro.traces.model import DEFAULT_SERVER_CAPACITY, GameTrace, RegionTrace

__all__ = [
    "RegionSpec",
    "TraceSynthesisConfig",
    "TraceSynthesizer",
    "synthesize_game_trace",
    "synthesize_runescape_like",
    "synthesize_global_population",
]


@dataclass(frozen=True)
class RegionSpec:
    """One geographic region of the synthesized game.

    Parameters
    ----------
    name:
        Region label (also used as the region-trace name).
    location_name:
        Key into :data:`repro.datacenter.geography.LOCATIONS`; the
        region's players are treated as concentrated there for latency
        purposes.
    n_groups:
        Number of server groups hosted for this region.
    utc_offset_hours:
        Local-time offset, so each region peaks in its own evening.
    weight:
        Relative population scale (1.0 = nominal).
    """

    name: str
    location_name: str
    n_groups: int
    utc_offset_hours: float = 0.0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.n_groups <= 0:
            raise ValueError("n_groups must be positive")
        if self.weight <= 0:
            raise ValueError("weight must be positive")

    @property
    def location(self) -> GeoLocation:
        """Resolved geographic location."""
        return location(self.location_name)


#: The five-region layout used throughout the experiments (the paper's
#: trace covers "five different geographical regions: Europe, US East
#: Coast, US West Coast, etc.").  Group counts follow the paper where
#: documented (region 0 / Europe has 40 groups).
DEFAULT_REGIONS: tuple[RegionSpec, ...] = (
    RegionSpec("Europe", "Netherlands", n_groups=40, utc_offset_hours=1.0),
    RegionSpec("US East", "US East", n_groups=25, utc_offset_hours=-5.0),
    RegionSpec("US West", "US West", n_groups=18, utc_offset_hours=-8.0),
    RegionSpec("US Central", "US Central", n_groups=10, utc_offset_hours=-6.0),
    RegionSpec("Australia", "Australia", n_groups=7, utc_offset_hours=10.0),
)


@dataclass(frozen=True)
class TraceSynthesisConfig:
    """Full parameterization of a synthetic game trace.

    The defaults reproduce the documented RuneScape statistics; see the
    module docstring for the mapping.
    """

    name: str = "runescape-like"
    n_days: float = 14.0
    step_minutes: float = 2.0
    regions: tuple[RegionSpec, ...] = DEFAULT_REGIONS
    capacity: int = DEFAULT_SERVER_CAPACITY
    #: Off-peak baseline utilization of an average group.
    base_utilization: float = 0.45
    #: Peak-hour utilization lift added on top of the baseline.
    diurnal_amplitude: float = 0.38
    #: Local hour of the diurnal peak (late afternoon / evening play).
    peak_hour: float = 19.0
    #: Width (hours) of the raised-cosine evening peak.
    peak_width_hours: float = 9.0
    #: Relative weekend population boost (0 disables weekend effects).
    weekend_boost: float = 0.12
    #: Stationary standard deviation of the load noise (utilization
    #: units): how far a group wanders from its diurnal baseline.
    noise_std: float = 0.05
    #: Noise persistence per 2-minute step (how slowly deviations from
    #: the baseline decay).
    noise_rho: float = 0.97
    #: Noise momentum: the lag-1 correlation of the *flow* (net
    #: arrivals per step).  Players join and leave in smooth session
    #: flows, so short-term load changes are themselves persistent --
    #: the structure good predictors exploit.
    noise_momentum: float = 0.85
    #: Fraction of groups that are always (~95 %) full.
    always_full_fraction: float = 0.04
    always_full_level: float = 0.95
    #: Expected outages per group per day (paper: "few and short-lived").
    outage_rate_per_group_day: float = 0.02
    outage_duration_minutes: float = 12.0
    #: Load spikes: sudden region-wide player influxes (game-wide event
    #: broadcasts, minigame schedules, streamers) that hit a fraction of
    #: the region's worlds simultaneously, rise within a sample or two
    #: and drain over tens of minutes.  These short correlated
    #: transients are what defeats even good predictors occasionally,
    #: producing the paper's significant-event counts.
    spike_rate_per_region_day: float = 2.0
    spike_participation_range: tuple[float, float] = (0.3, 0.9)
    spike_magnitude_range: tuple[float, float] = (0.1, 0.4)
    spike_rise_steps: int = 3
    spike_decay_minutes: float = 40.0
    #: Population events applied to every region (multiplicative).
    events: tuple[PopulationEvent, ...] = ()
    #: Utilization ceiling (groups saturate slightly below capacity).
    max_utilization: float = 0.98
    seed: int = 20080

    def __post_init__(self) -> None:
        if self.n_days <= 0:
            raise ValueError("n_days must be positive")
        if self.step_minutes <= 0:
            raise ValueError("step_minutes must be positive")
        if not self.regions:
            raise ValueError("need at least one region")
        if not 0.0 <= self.always_full_fraction < 1.0:
            raise ValueError("always_full_fraction must be in [0, 1)")
        if not 0.0 < self.max_utilization <= 1.0:
            raise ValueError("max_utilization must be in (0, 1]")
        if not 0.0 <= self.noise_rho < 1.0:
            raise ValueError("noise_rho must be in [0, 1)")
        if not 0.0 <= self.noise_momentum < 1.0:
            raise ValueError("noise_momentum must be in [0, 1)")
        if self.noise_std < 0:
            raise ValueError("noise_std must be non-negative")

    @property
    def n_steps(self) -> int:
        """Number of samples in the synthesized trace."""
        return int(round(self.n_days * 24 * 60 / self.step_minutes))


class TraceSynthesizer:
    """Generates :class:`~repro.traces.model.GameTrace` objects from a
    :class:`TraceSynthesisConfig`."""

    def __init__(self, config: TraceSynthesisConfig) -> None:
        self.config = config

    # -- public API ---------------------------------------------------------

    def synthesize(self) -> GameTrace:
        """Build the full game trace (deterministic given the seed)."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        step_days = self._step_days()
        event_mult = compose_multipliers(list(cfg.events), step_days)
        regions = [
            self._synthesize_region(spec, step_days, event_mult, rng)
            for spec in cfg.regions
        ]
        return GameTrace(name=cfg.name, regions=regions)

    # -- internals ------------------------------------------------------------

    def _step_days(self) -> np.ndarray:
        cfg = self.config
        return np.arange(cfg.n_steps) * (cfg.step_minutes / (24.0 * 60.0))

    def _diurnal_shape(self, spec: RegionSpec, step_days: np.ndarray) -> np.ndarray:
        """Raised-cosine evening peak in the region's local time, in [0, 1]."""
        cfg = self.config
        local_hour = (step_days * 24.0 + spec.utc_offset_hours) % 24.0
        # Distance to the peak hour on the circular 24 h clock.
        delta = np.abs(local_hour - cfg.peak_hour)
        delta = np.minimum(delta, 24.0 - delta)
        shape = np.where(
            delta < cfg.peak_width_hours,
            0.5 * (1.0 + np.cos(np.pi * delta / cfg.peak_width_hours)),
            0.0,
        )
        return shape

    def _weekend_multiplier(self, step_days: np.ndarray) -> np.ndarray:
        cfg = self.config
        if cfg.weekend_boost <= 0:
            return np.ones_like(step_days)
        # Day 0 is a Monday; Saturday/Sunday are days 5 and 6 of each week.
        weekday = np.floor(step_days).astype(np.int64) % 7
        return np.where(weekday >= 5, 1.0 + cfg.weekend_boost, 1.0)

    def _flow_noise(self, n_steps: int, n_groups: int, rng: np.random.Generator) -> np.ndarray:
        """Session-flow noise per group: persistent deviations driven by
        a momentum-bearing net-arrival flow.

        The deviation is an AR(2) process with real roots ``noise_rho``
        (persistence of the level) and ``noise_momentum`` (persistence
        of the flow), normalized to the configured stationary standard
        deviation.  Its increments are positively autocorrelated, so a
        capable predictor can extrapolate ongoing rises and drains.
        """
        cfg = self.config
        if cfg.noise_std <= 0:
            return np.zeros((n_steps, n_groups))
        eps = rng.normal(0.0, 1.0, size=(n_steps, n_groups))
        # (1 - rho L)(1 - mom L) dev = eps
        a1 = cfg.noise_rho + cfg.noise_momentum
        a2 = -cfg.noise_rho * cfg.noise_momentum
        noise = lfilter([1.0], [1.0, -a1, -a2], eps, axis=0)
        std = noise.std()
        if std > 0:
            noise *= cfg.noise_std / std
        return noise

    def _synthesize_region(
        self,
        spec: RegionSpec,
        step_days: np.ndarray,
        event_mult: np.ndarray,
        rng: np.random.Generator,
    ) -> RegionTrace:
        cfg = self.config
        n_steps = step_days.size
        n_groups = spec.n_groups

        shape = self._diurnal_shape(spec, step_days)  # (n_steps,)
        weekend = self._weekend_multiplier(step_days)

        # Per-group heterogeneity: population scale and small phase jitter.
        group_scale = rng.uniform(0.62, 1.0, size=n_groups) * spec.weight
        phase_jitter = rng.uniform(-0.5, 0.5, size=n_groups)  # hours
        jitter_steps = (phase_jitter * 60.0 / cfg.step_minutes).astype(int)

        util = np.empty((n_steps, n_groups))
        base_curve = cfg.base_utilization + cfg.diurnal_amplitude * shape
        for g in range(n_groups):
            util[:, g] = np.roll(base_curve, jitter_steps[g]) * group_scale[g]

        util *= (weekend * event_mult)[:, None]
        util += self._flow_noise(n_steps, n_groups, rng)

        # Always-full groups override the diurnal model.
        n_full = int(round(cfg.always_full_fraction * n_groups))
        if n_full > 0:
            full_idx = rng.choice(n_groups, size=n_full, replace=False)
            flat = cfg.always_full_level + rng.normal(0, 0.004, size=(n_steps, n_full))
            util[:, full_idx] = flat

        # Load spikes: fast unpredictable influxes with slow drains.
        self._apply_spikes(util, rng)

        # Outages: zero a group's load for a short window.
        self._apply_outages(util, rng)

        util = np.clip(util, 0.0, cfg.max_utilization)
        loads = np.round(util * cfg.capacity).astype(np.int64)
        return RegionTrace(
            name=spec.name,
            location=spec.location,
            loads=loads,
            capacity=cfg.capacity,
            step_minutes=cfg.step_minutes,
        )

    def _apply_spikes(self, util: np.ndarray, rng: np.random.Generator) -> None:
        cfg = self.config
        if cfg.spike_rate_per_region_day <= 0:
            return
        n_steps, n_groups = util.shape
        decay_steps = max(int(round(cfg.spike_decay_minutes / cfg.step_minutes)), 1)
        # Spike template: linear rise, exponential drain to ~5 %.
        rise = np.linspace(1.0 / cfg.spike_rise_steps, 1.0, cfg.spike_rise_steps)
        drain = np.exp(-3.0 * np.arange(1, decay_steps + 1) / decay_steps)
        template = np.concatenate([rise, drain])
        expected = cfg.spike_rate_per_region_day * cfg.n_days
        part_lo, part_hi = cfg.spike_participation_range
        mag_lo, mag_hi = cfg.spike_magnitude_range
        for _ in range(rng.poisson(expected)):
            start = int(rng.integers(0, max(n_steps - template.size, 1)))
            n_hit = max(int(round(rng.uniform(part_lo, part_hi) * n_groups)), 1)
            hit = rng.choice(n_groups, size=n_hit, replace=False)
            # Groups join the same event with individual intensities.
            magnitudes = rng.uniform(mag_lo, mag_hi, size=n_hit)
            seg = slice(start, start + template.size)
            length = util[seg, hit[0]].shape[0]
            util[seg][:, hit] += magnitudes[None, :] * template[:length, None]

    def _apply_outages(self, util: np.ndarray, rng: np.random.Generator) -> None:
        cfg = self.config
        n_steps, n_groups = util.shape
        outage_steps = max(int(round(cfg.outage_duration_minutes / cfg.step_minutes)), 1)
        expected = cfg.outage_rate_per_group_day * cfg.n_days
        for g in range(n_groups):
            for _ in range(rng.poisson(expected)):
                start = int(rng.integers(0, max(n_steps - outage_steps, 1)))
                util[start : start + outage_steps, g] = 0.0


# -- convenience constructors ------------------------------------------------


def synthesize_game_trace(config: TraceSynthesisConfig) -> GameTrace:
    """Synthesize a game trace from an explicit configuration."""
    return TraceSynthesizer(config).synthesize()


def synthesize_runescape_like(
    *,
    n_days: float = 14.0,
    seed: int = 20080,
    regions: Sequence[RegionSpec] | None = None,
    weekend_boost: float = 0.12,
    events: Sequence[PopulationEvent] = (),
    **overrides,
) -> GameTrace:
    """The standard two-week experimental workload (paper Sec. V-A).

    Returns a five-region trace with the documented RuneScape
    statistics.  Keyword overrides are forwarded to
    :class:`TraceSynthesisConfig`.
    """
    cfg = TraceSynthesisConfig(
        n_days=n_days,
        seed=seed,
        regions=tuple(regions) if regions is not None else DEFAULT_REGIONS,
        weekend_boost=weekend_boost,
        events=tuple(events),
        **overrides,
    )
    return synthesize_game_trace(cfg)


def synthesize_global_population(
    *,
    n_days: float = 60.0,
    seed: int = 20081,
    peak_players: int = 250_000,
) -> tuple[np.ndarray, np.ndarray]:
    """The Fig. 2 scenario: two months of global concurrency with the
    December-2007 mass quit and the two content releases.

    The timeline mirrors the paper: an unpopular decision around day 9
    (10 Dec 2007) causing a ~25 % crash within a day, amendment and
    partial (95 %) recovery, a content release at day 17 (18 Dec) and a
    second one at day 45 (15 Jan), each giving roughly a week of ~50 %
    elevated concurrency.

    Returns
    -------
    (step_days, players):
        Step times in days, and global concurrent players per step.
    """
    events = (
        MassQuit(start_day=9.0, drop_fraction=0.25, drop_days=0.8, amend_day=12.0,
                 recovery_days=4.0, recovery_level=0.95),
        ContentRelease(day=17.0, surge_fraction=0.5, duration_days=7.0),
        ContentRelease(day=45.0, surge_fraction=0.5, duration_days=7.0),
    )
    # Scale regions so the global diurnal peak lands near peak_players.
    cfg = TraceSynthesisConfig(
        name="runescape-global",
        n_days=n_days,
        seed=seed,
        events=events,
        # Leave headroom for the +50 % surges before per-group saturation.
        base_utilization=0.30,
        diurnal_amplitude=0.30,
    )
    trace = synthesize_game_trace(cfg)
    players = trace.global_players().astype(np.float64)
    nominal_peak = np.percentile(players, 99.5)
    scale = peak_players / max(nominal_peak, 1.0)
    players = players * scale
    step_days = np.arange(cfg.n_steps) * (cfg.step_minutes / (24.0 * 60.0))
    return step_days, players

"""Workload traces: RuneScape-like MMOG player-count time series.

The paper's evaluation is driven by ten months of RuneScape traces
(Sec. III): per-server-group player counts sampled every two minutes.
Those traces are not publicly archived, so this package provides

* a **trace data model** (:mod:`repro.traces.model`) matching the paper's
  structure — a game has regions, a region has server groups, a server
  group has a player-count series,
* a **parametric synthesizer** (:mod:`repro.traces.synthesis`) calibrated
  to the statistical properties the paper documents (diurnal cycles with
  ~24 h autocorrelation peaks, ~50 % peak swings, partial weekend effects,
  2-5 % always-full servers, short outages, mass-quit and content-release
  population events), and
* the **analysis toolkit** (:mod:`repro.traces.analysis`) that reproduces
  the paper's Fig. 3 statistics: per-step median/min/max load bands,
  interquartile ranges, and autocorrelation functions.
"""

from repro.traces.model import ServerGroupTrace, RegionTrace, GameTrace
from repro.traces.events import (
    PopulationEvent,
    MassQuit,
    ContentRelease,
    Outage,
)
from repro.traces.synthesis import (
    RegionSpec,
    TraceSynthesisConfig,
    TraceSynthesizer,
    synthesize_game_trace,
    synthesize_runescape_like,
    synthesize_global_population,
)
from repro.traces.analysis import (
    load_bands,
    interquartile_range,
    autocorrelation,
    dominant_period_steps,
    fraction_always_full,
)
from repro.traces.population import PopulationStats, concurrency_ratio

__all__ = [
    "ServerGroupTrace",
    "RegionTrace",
    "GameTrace",
    "PopulationEvent",
    "MassQuit",
    "ContentRelease",
    "Outage",
    "RegionSpec",
    "TraceSynthesisConfig",
    "TraceSynthesizer",
    "synthesize_game_trace",
    "synthesize_runescape_like",
    "synthesize_global_population",
    "load_bands",
    "interquartile_range",
    "autocorrelation",
    "dominant_period_steps",
    "fraction_always_full",
    "PopulationStats",
    "concurrency_ratio",
]

"""Data-center substrate: the hosting platform of the MMOG ecosystem.

This package models the hosting side of the paper's ecosystem (Sec. II-B):
data centers scattered around the world, each a single cluster of machines
owned by one *hoster*, renting four resource types (CPU, memory, external
network in/out) under a *hosting policy* that fixes the minimal resource
bulk and time bulk of any allocation.
"""

from repro.datacenter.resources import (
    ResourceType,
    ResourceVector,
    CPU,
    MEMORY,
    EXTNET_IN,
    EXTNET_OUT,
    RESOURCE_TYPES,
)
from repro.datacenter.policy import HostingPolicy, STANDARD_POLICIES, policy
from repro.datacenter.machine import Machine
from repro.datacenter.center import DataCenter, Lease
from repro.datacenter.geography import (
    GeoLocation,
    LatencyClass,
    haversine_km,
    LOCATIONS,
    location,
)
from repro.datacenter.catalog import build_paper_datacenters, build_north_american_datacenters
from repro.datacenter.latency import (
    rtt_ms,
    latency_class_for_tolerance,
    GenreTolerance,
    GENRE_TOLERANCES,
)

__all__ = [
    "ResourceType",
    "ResourceVector",
    "CPU",
    "MEMORY",
    "EXTNET_IN",
    "EXTNET_OUT",
    "RESOURCE_TYPES",
    "HostingPolicy",
    "STANDARD_POLICIES",
    "policy",
    "Machine",
    "DataCenter",
    "Lease",
    "GeoLocation",
    "LatencyClass",
    "haversine_km",
    "LOCATIONS",
    "location",
    "build_paper_datacenters",
    "build_north_american_datacenters",
    "rtt_ms",
    "latency_class_for_tolerance",
    "GenreTolerance",
    "GENRE_TOLERANCES",
]

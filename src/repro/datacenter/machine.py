"""Machine specifications.

The paper assumes "each machine ... is capable of handling at least one
game server at full load" (Sec. V-A), i.e. at least one CPU resource unit
per machine.  CPU and memory are machine-bound resources; the external
network is a data-center-level pool (Sec. II-B: "input from the external
network *of a data center*").  :class:`Machine` therefore carries the
machine-bound capacities, while the network pool lives on
:class:`repro.datacenter.center.DataCenter`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datacenter.resources import Cpu, Mem

__all__ = ["Machine"]


@dataclass(frozen=True)
class Machine:
    """Capacity specification of one data-center machine.

    Parameters
    ----------
    cpu_capacity:
        CPU capacity in resource units.  One unit hosts one fully loaded
        game server (~2,000 concurrent clients), so the paper's minimum
        is 1.0.
    memory_capacity:
        Memory capacity in resource units.  Table IV rents memory in
        bulks of 2 units, so machines provide at least 2 units each.
    """

    cpu_capacity: Cpu = Cpu(1.0)
    memory_capacity: Mem = Mem(2.0)

    def __post_init__(self) -> None:
        if self.cpu_capacity < 1.0:
            raise ValueError(
                "machines must handle at least one full game server (cpu_capacity >= 1)"
            )
        if self.memory_capacity <= 0:
            raise ValueError("memory_capacity must be positive")

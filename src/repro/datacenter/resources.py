"""Resource types and resource vectors.

The paper's data-center model (Sec. II-B) rents four resource types:

* ``CPU`` — CPU time on data-center machines,
* ``MEMORY`` — memory on data-center machines,
* ``EXTNET_IN`` — input bandwidth from the data center's external network,
* ``EXTNET_OUT`` — output bandwidth to the data center's external network.

All quantities are measured in abstract *resource units* (Sec. V-A): one
unit of a resource is the amount consumed by one fully loaded RuneScape
game server (about 2,000 simultaneous clients; one ExtNet[out] unit is
roughly 3 MB/s of real bandwidth).

:class:`ResourceVector` is a small fixed-length float vector keyed by
resource type.  It is the currency of the whole simulator: game operators
express demand as resource vectors, hosting policies express bulks as
resource vectors, and machines track capacity/allocation as resource
vectors.  It is deliberately backed by a plain ``numpy`` array so that the
inner provisioning loop stays vectorizable.
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator, Mapping, NewType

import numpy as np

__all__ = [
    "ResourceType",
    "CPU",
    "MEMORY",
    "EXTNET_IN",
    "EXTNET_OUT",
    "RESOURCE_TYPES",
    "ResourceVector",
    "Cpu",
    "Mem",
    "NetIn",
    "NetOut",
]

# -- dimensions ----------------------------------------------------------
#
# One ``NewType`` per rentable resource dimension.  All four are plain
# floats at runtime (zero cost in the inner loop); their only job is to
# carry the *dimension* of a scalar quantity through signatures so that
# ``repro analyze`` (pass RA002) can statically reject cross-dimension
# arithmetic, comparison, and argument passing — e.g. handing a memory
# bulk to a ``cpu_bulk`` parameter.  Scalars of unknown dimension stay
# ``float`` and are never flagged.

#: CPU time, in resource units (one unit ≈ one fully loaded game server).
Cpu = NewType("Cpu", float)
#: Memory, in resource units.
Mem = NewType("Mem", float)
#: External-network input bandwidth, in resource units.
NetIn = NewType("NetIn", float)
#: External-network output bandwidth, in resource units (≈ 3 MB/s).
NetOut = NewType("NetOut", float)


class ResourceType(enum.IntEnum):
    """The four rentable resource types of the data-center model."""

    CPU = 0
    MEMORY = 1
    EXTNET_IN = 2
    EXTNET_OUT = 3

    @property
    def label(self) -> str:
        """Human-readable label used in tables (matches the paper's headers)."""
        return _LABELS[self]


_LABELS = {
    ResourceType.CPU: "CPU",
    ResourceType.MEMORY: "Memory",
    ResourceType.EXTNET_IN: "ExtNet[in]",
    ResourceType.EXTNET_OUT: "ExtNet[out]",
}

CPU = ResourceType.CPU
MEMORY = ResourceType.MEMORY
EXTNET_IN = ResourceType.EXTNET_IN
EXTNET_OUT = ResourceType.EXTNET_OUT

#: All resource types in index order.
RESOURCE_TYPES: tuple[ResourceType, ...] = tuple(ResourceType)

N_RESOURCES = len(RESOURCE_TYPES)


class ResourceVector:
    """A fixed-length vector of resource quantities, one entry per type.

    Supports elementwise arithmetic, comparison helpers, and bulk rounding.
    Quantities are expressed in abstract resource units (see module doc).

    Parameters
    ----------
    cpu, memory, extnet_in, extnet_out:
        Per-resource quantities.  Negative values are permitted (they arise
        naturally when computing shortfalls) but most call sites clamp.

    Examples
    --------
    >>> demand = ResourceVector(cpu=1.5, extnet_out=2.0)
    >>> demand[CPU]
    1.5
    >>> (demand + demand)[EXTNET_OUT]
    4.0
    """

    __slots__ = ("_values",)

    def __init__(
        self,
        cpu: float = 0.0,
        memory: float = 0.0,
        extnet_in: float = 0.0,
        extnet_out: float = 0.0,
    ) -> None:
        self._values = np.array([cpu, memory, extnet_in, extnet_out], dtype=np.float64)

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_array(cls, values: np.ndarray | Iterable[float]) -> "ResourceVector":
        """Wrap a length-4 array (copied) as a resource vector."""
        arr = np.asarray(values, dtype=np.float64)
        if arr.shape != (N_RESOURCES,):
            raise ValueError(f"expected shape ({N_RESOURCES},), got {arr.shape}")
        rv = cls.__new__(cls)
        rv._values = arr.copy()
        return rv

    @classmethod
    def from_mapping(cls, mapping: Mapping[ResourceType, float]) -> "ResourceVector":
        """Build a vector from a ``{ResourceType: quantity}`` mapping."""
        arr = np.zeros(N_RESOURCES)
        for rtype, qty in mapping.items():
            arr[int(rtype)] = qty
        return cls.from_array(arr)

    @classmethod
    def uniform(cls, value: float) -> "ResourceVector":
        """A vector with every component equal to ``value``."""
        return cls.from_array(np.full(N_RESOURCES, float(value)))

    @classmethod
    def zeros(cls) -> "ResourceVector":
        """The all-zero vector."""
        return cls.from_array(np.zeros(N_RESOURCES))

    # -- array access ----------------------------------------------------

    def as_array(self) -> np.ndarray:
        """Return a *copy* of the underlying array."""
        return self._values.copy()

    @property
    def values(self) -> np.ndarray:
        """Read-only view of the underlying array (do not mutate)."""
        return self._values

    def __getitem__(self, rtype: ResourceType) -> float:
        return float(self._values[int(rtype)])

    # -- dimension-typed accessors ----------------------------------------

    @property
    def cpu(self) -> Cpu:
        """CPU quantity, tagged with its dimension."""
        return Cpu(float(self._values[0]))

    @property
    def memory(self) -> Mem:
        """Memory quantity, tagged with its dimension."""
        return Mem(float(self._values[1]))

    @property
    def extnet_in(self) -> NetIn:
        """ExtNet[in] quantity, tagged with its dimension."""
        return NetIn(float(self._values[2]))

    @property
    def extnet_out(self) -> NetOut:
        """ExtNet[out] quantity, tagged with its dimension."""
        return NetOut(float(self._values[3]))

    def __iter__(self) -> Iterator[float]:
        return iter(self._values.tolist())

    # -- arithmetic -------------------------------------------------------

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector.from_array(self._values + other._values)

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector.from_array(self._values - other._values)

    def __mul__(self, scalar: float) -> "ResourceVector":
        return ResourceVector.from_array(self._values * float(scalar))

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "ResourceVector":
        return ResourceVector.from_array(self._values / float(scalar))

    def __neg__(self) -> "ResourceVector":
        return ResourceVector.from_array(-self._values)

    # -- comparisons ------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourceVector):
            return NotImplemented
        return bool(np.array_equal(self._values, other._values))

    def __hash__(self) -> int:  # pragma: no cover - vectors are not dict keys in hot paths
        return hash(self._values.tobytes())

    def covers(self, other: "ResourceVector", *, tol: float = 1e-9) -> bool:
        """``True`` iff every component is >= the other's (within ``tol``)."""
        return bool(np.all(self._values + tol >= other._values))

    def dominated_by(self, other: "ResourceVector", *, tol: float = 1e-9) -> bool:
        """``True`` iff every component is <= the other's (within ``tol``)."""
        return other.covers(self, tol=tol)

    def is_zero(self, *, tol: float = 1e-12) -> bool:
        """``True`` iff every component is (numerically) zero."""
        return bool(np.all(np.abs(self._values) <= tol))

    def any_positive(self, *, tol: float = 1e-12) -> bool:
        """``True`` iff at least one component exceeds ``tol``."""
        return bool(np.any(self._values > tol))

    # -- elementwise helpers ----------------------------------------------

    def clamp_min(self, floor: float = 0.0) -> "ResourceVector":
        """Elementwise ``max(component, floor)``."""
        return ResourceVector.from_array(np.maximum(self._values, floor))

    def clamp_max(self, ceiling: "ResourceVector") -> "ResourceVector":
        """Elementwise ``min(component, ceiling component)``."""
        return ResourceVector.from_array(np.minimum(self._values, ceiling._values))

    def maximum(self, other: "ResourceVector") -> "ResourceVector":
        """Elementwise maximum of two vectors."""
        return ResourceVector.from_array(np.maximum(self._values, other._values))

    def minimum(self, other: "ResourceVector") -> "ResourceVector":
        """Elementwise minimum of two vectors."""
        return ResourceVector.from_array(np.minimum(self._values, other._values))

    def round_up_to_bulk(self, bulk: "ResourceVector") -> "ResourceVector":
        """Round each component up to the nearest multiple of its bulk.

        This is the paper's resource-bulk mechanism: data centers only
        allocate resources in integer multiples of the policy's bulk, so a
        request for 0.3 CPU units under a 0.25-unit bulk yields 0.5 units.
        Components whose bulk is zero (``n/a`` in Table IV) pass through
        unchanged — the policy places no granularity constraint on them.

        A tiny relative tolerance absorbs floating-point noise so that a
        request of exactly ``k * bulk`` does not round to ``k + 1`` bulks.
        """
        b = bulk._values
        v = self._values
        out = v.copy()
        mask = b > 0
        ratio = v[mask] / b[mask]
        out[mask] = np.ceil(ratio - 1e-9) * b[mask]
        return ResourceVector.from_array(np.maximum(out, 0.0))

    def total(self) -> float:
        """Sum of all components (rarely meaningful; used for tie-breaking)."""
        return float(self._values.sum())

    # -- misc --------------------------------------------------------------

    def copy(self) -> "ResourceVector":
        """An independent copy."""
        return ResourceVector.from_array(self._values)

    def to_mapping(self) -> dict[ResourceType, float]:
        """Export as a ``{ResourceType: quantity}`` dict."""
        return {rtype: float(self._values[int(rtype)]) for rtype in RESOURCE_TYPES}

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{rtype.label}={self._values[int(rtype)]:.4g}" for rtype in RESOURCE_TYPES
        )
        return f"ResourceVector({parts})"

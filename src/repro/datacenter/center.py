"""Data centers: clusters of machines with a hosting policy and a location.

A :class:`DataCenter` is the paper's *hoster* (Sec. II-B): a single
cluster owned by one resource owner, renting resources to game operators
under a space-time :class:`~repro.datacenter.policy.HostingPolicy`.

Accounting model
----------------
CPU and memory are machine-bound; the external network (in/out) is a
center-wide pool.  Allocations are tracked as :class:`Lease` objects: an
aggregate resource vector spanning one or more machines, with a release
time no earlier than the policy's time bulk ("the allocated resources are
reserved ... for the whole duration of the game operator's request, i.e.,
task preemption or migration are not supported").

The ledger is aggregate (total allocated per resource type) rather than
per-machine: the paper's metrics (Eq. 1-2) only need the totals and the
number of machines participating in a session, and game operators balance
their own load across the machines of a lease.  The number of machines a
lease occupies is the number needed to supply its machine-bound
resources.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.registry import Counter as ObsCounter
    from repro.obs.registry import Histogram, MetricsRegistry

from repro.datacenter.geography import GeoLocation
from repro.datacenter.machine import Machine
from repro.datacenter.policy import HostingPolicy
from repro.datacenter.resources import (
    CPU,
    MEMORY,
    NetIn,
    NetOut,
    ResourceType,
    ResourceVector,
)

__all__ = ["Lease", "DataCenter"]


@dataclass
class Lease:
    """An active resource allocation inside one data center.

    Attributes
    ----------
    lease_id:
        Globally unique identifier.
    operator_id:
        The game operator (tenant) holding the lease.
    game_id:
        The MMOG the lease serves (an operator may run several games).
    region:
        The player region whose demand this lease covers (used by the
        provisioner to reconcile allocations per region).
    resources:
        The allocated resource vector, already rounded up to the
        policy's resource bulks.
    machines:
        Number of machines this lease occupies.
    start_step / earliest_release_step:
        Simulation step bounds: the requested duration ends at
        ``earliest_release_step``, which is never earlier than the
        policy's time bulk.  The lease can neither be released before
        that step (minimum duration) nor kept past it without renewal
        (the request was for a fixed duration).
    """

    lease_id: int
    operator_id: str
    game_id: str
    resources: ResourceVector
    machines: int
    start_step: int
    earliest_release_step: int
    region: str = ""

    @property
    def end_step(self) -> int:
        """The step at which the requested duration ends."""
        return self.earliest_release_step

    def releasable(self, step: int) -> bool:
        """``True`` iff the time bulk has elapsed at ``step``."""
        return step >= self.earliest_release_step

    def expired(self, step: int) -> bool:
        """``True`` iff the requested duration has ended at ``step``."""
        return step >= self.end_step


class DataCenter:
    """A single-cluster hoster with a hosting policy and a location.

    Parameters
    ----------
    name:
        Unique identifier, e.g. ``"US East (1)"``.
    location:
        Geographic site of the cluster.
    n_machines:
        Number of machines in the cluster.
    policy:
        The hosting policy governing allocation bulks.
    machine:
        Per-machine capacity specification.
    extnet_in_per_machine, extnet_out_per_machine:
        Size of the center-wide external network pool, expressed per
        machine.  Defaults are generous enough that network is rarely the
        binding constraint (as in the paper, where CPU is the contended
        resource) while still being finite.
    """

    def __init__(
        self,
        name: str,
        location: GeoLocation,
        n_machines: int,
        policy: HostingPolicy,
        *,
        machine: Machine | None = None,
        extnet_in_per_machine: NetIn = NetIn(8.0),
        extnet_out_per_machine: NetOut = NetOut(2.0),
        lease_ids: Iterator[int] | None = None,
    ) -> None:
        if n_machines <= 0:
            raise ValueError("a data center needs at least one machine")
        self.name = name
        self.location = location
        self.n_machines = int(n_machines)
        self.policy = policy
        self.machine = machine or Machine()
        self.capacity = ResourceVector(
            cpu=self.machine.cpu_capacity * n_machines,
            memory=self.machine.memory_capacity * n_machines,
            extnet_in=extnet_in_per_machine * n_machines,
            extnet_out=extnet_out_per_machine * n_machines,
        )
        self._allocated = ResourceVector.zeros()
        self._leases: dict[int, Lease] = {}
        # Lease ids come from an injectable iterator so allocate() never
        # touches module-global state; fleet builders share one counter
        # across centers to keep ids platform-unique.
        self._lease_ids = lease_ids if lease_ids is not None else itertools.count(1)
        # Observability (off by default; see attach_metrics).
        self._metrics: "MetricsRegistry | None" = None
        self._c_allocations: "ObsCounter | None" = None
        self._c_releases: "ObsCounter | None" = None
        self._c_bulks: "ObsCounter | None" = None
        self._h_waste: "Histogram | None" = None

    def attach_metrics(self, metrics: "MetricsRegistry | None") -> None:
        """Install a :class:`~repro.obs.registry.MetricsRegistry`.

        Binds the ``center.*`` instruments once so the hot paths pay a
        single ``is None`` test when observability is off and a plain
        attribute update when it is on.  Instruments are shared across
        centers (platform-wide series); pass ``None`` to detach.
        """
        self._metrics = metrics
        if metrics is None:
            self._c_allocations = self._c_releases = None
            self._c_bulks = self._h_waste = None
            return
        self._c_allocations = metrics.counter("center.allocations")
        self._c_releases = metrics.counter("center.releases")
        self._c_bulks = metrics.counter("center.bulks_rounded")
        self._h_waste = metrics.histogram("center.rounding_waste_cpu")

    # -- queries -----------------------------------------------------------

    @property
    def allocated(self) -> ResourceVector:
        """Total currently allocated resources (copy)."""
        return self._allocated.copy()

    @property
    def free(self) -> ResourceVector:
        """Remaining free capacity (never negative)."""
        return (self.capacity - self._allocated).clamp_min(0.0)

    @property
    def machines_in_use(self) -> int:
        """Machines needed to carry the current aggregate allocation.

        Fractional allocations share machines (the paper's model allows
        "a virtual machine running on a physical node"), so the machine
        count derives from the aggregate, not from per-lease ceilings.
        """
        return self.machines_needed(self._allocated)

    @property
    def machines_free(self) -> int:
        """Machines whose capacity is entirely unallocated."""
        return self.n_machines - self.machines_in_use

    def leases(self) -> Iterator[Lease]:
        """Iterate over active leases (in insertion order)."""
        return iter(list(self._leases.values()))

    def leases_for(
        self,
        operator_id: str,
        game_id: str | None = None,
        region: str | None = None,
    ) -> list[Lease]:
        """Active leases held by an operator (optionally filtered by
        game and/or region)."""
        return [
            lease
            for lease in self._leases.values()
            if lease.operator_id == operator_id
            and (game_id is None or lease.game_id == game_id)
            and (region is None or lease.region == region)
        ]

    def utilization(self, rtype: ResourceType = CPU) -> float:
        """Fraction of capacity allocated for one resource type (0..1)."""
        cap = self.capacity[rtype]
        if cap <= 0:
            return 0.0
        return self._allocated[rtype] / cap

    # -- machine accounting --------------------------------------------------

    def machines_needed(self, resources: ResourceVector) -> int:
        """Machines required to supply a vector's machine-bound resources."""
        cpu_m = int(np.ceil(resources[CPU] / self.machine.cpu_capacity - 1e-9))
        mem_m = int(np.ceil(resources[MEMORY] / self.machine.memory_capacity - 1e-9))
        return max(cpu_m, mem_m, 1 if resources.any_positive() else 0)

    # -- allocation lifecycle --------------------------------------------------

    def round_to_bulk(self, demand: ResourceVector) -> ResourceVector:
        """Round a demand up to this center's policy bulks."""
        rounded = self.policy.round_request(demand)
        if self._metrics is not None:
            self._c_bulks.inc()
            self._h_waste.observe(rounded[CPU] - demand[CPU])
        return rounded

    def can_allocate(self, rounded: ResourceVector) -> bool:
        """Whether a bulk-rounded request fits the free capacity.

        The machine-bound capacities (CPU, memory) are exactly the
        machine count times per-machine capacity, so fitting the free
        vector is also the machine-count constraint.
        """
        return self.free.covers(rounded)

    def fit_to_capacity(self, demand: ResourceVector) -> ResourceVector:
        """The largest bulk-rounded allocation <= free capacity that moves
        toward satisfying ``demand``.

        Rounds the demand up to bulks, then trims whole bulk multiples
        from any component exceeding the free capacity.  Returns the zero
        vector when nothing can be offered.
        """
        rounded = self.round_to_bulk(demand)
        free = self.free
        vals = rounded.as_array()
        free_vals = free.values
        bulk_vals = self.policy.resource_bulk.values
        for i in range(len(vals)):
            if vals[i] <= free_vals[i] + 1e-9:
                continue
            if bulk_vals[i] > 0:
                # trim down to the largest multiple of the bulk that fits
                vals[i] = np.floor(free_vals[i] / bulk_vals[i] + 1e-9) * bulk_vals[i]
            else:
                vals[i] = free_vals[i]
        return ResourceVector.from_array(np.maximum(vals, 0.0))

    def allocate(
        self,
        operator_id: str,
        game_id: str,
        rounded: ResourceVector,
        step: int,
        *,
        region: str = "",
        step_minutes: float = 2.0,
        duration_steps: int | None = None,
    ) -> Lease:
        """Create a lease for an already bulk-rounded resource vector.

        Operators request resources *for a duration* (Sec. II-B); the
        policy's time bulk is the minimum.  ``duration_steps`` defaults
        to exactly the time bulk — the shortest admissible lease, which
        the matching mechanism favours.

        Raises
        ------
        ValueError
            If the request does not fit the free capacity, is not
            aligned to the policy's bulks, or requests a duration below
            the time bulk.
        """
        if not self._aligned_to_bulk(rounded):
            raise ValueError(
                f"request {rounded!r} is not aligned to policy bulks of {self.policy.name}"
            )
        if not self.can_allocate(rounded):
            raise ValueError(f"request {rounded!r} exceeds free capacity of {self.name}")
        min_steps = self.policy.time_bulk_steps(step_minutes)
        if duration_steps is None:
            duration_steps = min_steps
        elif duration_steps < min_steps:
            raise ValueError(
                f"duration {duration_steps} steps is below the time bulk "
                f"({min_steps} steps) of {self.policy.name}"
            )
        # Informational per-lease footprint; the center's machine count
        # derives from the aggregate (fractions share machines).
        machines = self.machines_needed(rounded)
        lease = Lease(
            lease_id=next(self._lease_ids),
            operator_id=operator_id,
            game_id=game_id,
            resources=rounded.copy(),
            machines=machines,
            start_step=step,
            earliest_release_step=step + duration_steps,
            region=region,
        )
        self._leases[lease.lease_id] = lease
        self._allocated = self._allocated + rounded
        if self._metrics is not None:
            self._c_allocations.inc()
        return lease

    def release(self, lease: Lease, step: int, *, force: bool = False) -> None:
        """Release a lease.  Refuses (raises) before the time bulk unless
        ``force`` is set (used for simulation teardown)."""
        if lease.lease_id not in self._leases:
            # Deliberate fail-fast guard, not a mapping lookup: raise
            # ValueError so the escape is distinguishable from a latent
            # KeyError plumbing bug (RA007).
            raise ValueError(f"lease {lease.lease_id} is not active in {self.name}")
        if not force and not lease.releasable(step):
            raise ValueError(
                f"lease {lease.lease_id} cannot be released before step "
                f"{lease.earliest_release_step} (now {step})"
            )
        del self._leases[lease.lease_id]
        self._allocated = (self._allocated - lease.resources).clamp_min(0.0)
        if self._metrics is not None:
            self._c_releases.inc()

    def release_all(self, *, step: int = 0) -> None:
        """Forcibly release every lease (teardown helper)."""
        for lease in list(self._leases.values()):
            self.release(lease, step, force=True)

    def _aligned_to_bulk(self, vec: ResourceVector) -> bool:
        bulks = self.policy.resource_bulk.values
        vals = vec.values
        for b, v in zip(bulks, vals):
            if b <= 0:
                continue
            ratio = v / b
            if abs(ratio - round(ratio)) > 1e-6:
                return False
        return True

    def __repr__(self) -> str:
        return (
            f"DataCenter({self.name!r}, {self.location.name}, "
            f"{self.n_machines} machines, {self.policy.name})"
        )

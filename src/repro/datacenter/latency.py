"""Network latency estimation and genre tolerances.

The paper treats latency as "exclusively determined by physical
distance" under an idealized network (Sec. V-E) and refers to prior
work (Claypool et al.) for how much latency each game genre tolerates:
roughly 100 ms for first-person shooters, 500 ms for role-playing
games, and 1000 ms for real-time strategy.

This module provides the bridge between those milliseconds and the
paper's distance classes: a simple distance→RTT estimator (speed of
light in fibre plus a fixed processing overhead) and a helper that
picks the widest :class:`~repro.datacenter.geography.LatencyClass` whose
worst-case RTT stays within a genre's tolerance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.datacenter.geography import LatencyClass

__all__ = [
    "rtt_ms",
    "latency_class_for_tolerance",
    "GenreTolerance",
    "GENRE_TOLERANCES",
]

#: Effective one-way propagation speed in fibre, km per ms (about 2/3 c,
#: derated further for routing indirection).
FIBRE_KM_PER_MS = 150.0

#: Fixed overhead per round trip (serialization, queueing, server tick).
BASE_RTT_MS = 15.0


def rtt_ms(distance_km: float) -> float:
    """Estimated round-trip time for a player-server distance.

    ``BASE_RTT_MS`` plus two propagation legs at :data:`FIBRE_KM_PER_MS`.
    """
    if distance_km < 0:
        raise ValueError("distance must be non-negative")
    return BASE_RTT_MS + 2.0 * distance_km / FIBRE_KM_PER_MS


def latency_class_for_tolerance(tolerance_ms: float) -> LatencyClass:
    """The widest distance class whose worst-case RTT fits the tolerance.

    Walks the classes from widest to tightest and returns the first one
    whose maximal admitted distance keeps :func:`rtt_ms` within
    ``tolerance_ms``.  Falls back to ``SAME_LOCATION`` when even local
    play exceeds the tolerance (sub-15 ms budgets).
    """
    if tolerance_ms <= 0:
        raise ValueError("tolerance must be positive")
    ordered = [
        LatencyClass.VERY_FAR,
        LatencyClass.FAR,
        LatencyClass.CLOSE,
        LatencyClass.VERY_CLOSE,
        LatencyClass.SAME_LOCATION,
    ]
    for cls in ordered:
        worst = cls.max_distance_km
        if math.isinf(worst):
            # "Very far" is only safe for effectively unbounded budgets;
            # use half the planet's circumference as the worst case.
            worst = 20_000.0
        if rtt_ms(worst) <= tolerance_ms:
            return cls
    return LatencyClass.SAME_LOCATION


@dataclass(frozen=True)
class GenreTolerance:
    """A game genre's latency budget (from the literature the paper cites)."""

    genre: str
    tolerance_ms: float

    @property
    def latency_class(self) -> LatencyClass:
        """The distance class this genre can afford."""
        return latency_class_for_tolerance(self.tolerance_ms)


#: The classic genre budgets (Claypool & Claypool, CACM 2006).
GENRE_TOLERANCES: dict[str, GenreTolerance] = {
    t.genre: t
    for t in [
        GenreTolerance("first-person shooter", 100.0),
        GenreTolerance("sports / racing", 150.0),
        GenreTolerance("role-playing game", 500.0),
        GenreTolerance("real-time strategy", 1000.0),
        GenreTolerance("turn-based / puzzle", 5000.0),
    ]
}

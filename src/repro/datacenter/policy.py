"""Hosting policies: the space-time granularity of resource rental.

A *hosting policy* (paper Sec. II-B) is the data-center owner's rule for
how coarsely resources are rented out:

* the **resource bulk** — the minimum number of units of each resource
  type that can be allocated in one request (requests are rounded *up* to
  a multiple of the bulk), and
* the **time bulk** — the minimum duration of an allocation, in minutes
  (leases cannot be released earlier).

Table IV of the paper defines eleven concrete policies HP-1..HP-11 used
throughout the evaluation; :data:`STANDARD_POLICIES` reproduces them
verbatim.  ``n/a`` entries in the table mean the policy places no
granularity constraint on that resource; we encode them as a bulk of 0.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datacenter.resources import Cpu, Mem, NetIn, NetOut, ResourceVector

__all__ = ["HostingPolicy", "STANDARD_POLICIES", "policy"]


@dataclass(frozen=True)
class HostingPolicy:
    """An immutable space-time rental policy.

    Parameters
    ----------
    name:
        Identifier, e.g. ``"HP-5"``.
    resource_bulk:
        Minimal allocation quantum per resource type, in resource units.
        A component of 0 means "no constraint" (``n/a`` in Table IV).
    time_bulk_minutes:
        Minimal allocation duration in minutes.
    """

    name: str
    resource_bulk: ResourceVector
    time_bulk_minutes: float

    def __post_init__(self) -> None:
        if self.time_bulk_minutes <= 0:
            raise ValueError("time bulk must be positive")
        if bool((self.resource_bulk.values < 0).any()):
            raise ValueError("resource bulks must be non-negative")

    def round_request(self, demand: ResourceVector) -> ResourceVector:
        """Round a demand vector up to this policy's resource bulks."""
        return demand.round_up_to_bulk(self.resource_bulk)

    def time_bulk_steps(self, step_minutes: float) -> int:
        """The time bulk expressed in simulation steps (rounded up, >= 1)."""
        if step_minutes <= 0:
            raise ValueError("step_minutes must be positive")
        steps = int(-(-self.time_bulk_minutes // step_minutes))  # ceil division
        return max(steps, 1)

    @property
    def grain(self) -> float:
        """A scalar coarseness score used for ranking offers.

        The matching mechanism (Sec. II-C) prefers *finer-grained*
        resources; we summarize a policy's spatial coarseness as the sum
        of its non-zero resource bulks.  Lower is finer.
        """
        vals = self.resource_bulk.values
        return float(vals[vals > 0].sum())

    def __repr__(self) -> str:
        return (
            f"HostingPolicy({self.name!r}, bulk={self.resource_bulk!r}, "
            f"time={self.time_bulk_minutes:g}min)"
        )


def _hp(
    name: str,
    cpu: Cpu,
    memory: Mem,
    extnet_in: NetIn,
    extnet_out: NetOut,
    minutes: float,
) -> HostingPolicy:
    return HostingPolicy(
        name=name,
        resource_bulk=ResourceVector(
            cpu=cpu, memory=memory, extnet_in=extnet_in, extnet_out=extnet_out
        ),
        time_bulk_minutes=minutes,
    )


#: The eleven hosting policies of Table IV.  ``n/a`` table cells are bulks
#: of 0 (no granularity constraint on that resource).
STANDARD_POLICIES: dict[str, HostingPolicy] = {
    p.name: p
    for p in [
        # name     CPU   Mem ExtIn ExtOut  Time[min]
        _hp("HP-1", 0.25, 0.0, 6.0, 0.33, 360),
        _hp("HP-2", 0.25, 0.0, 4.0, 0.50, 360),
        _hp("HP-3", 0.22, 2.0, 0.0, 0.00, 180),
        _hp("HP-4", 0.28, 2.0, 0.0, 0.00, 180),
        _hp("HP-5", 0.37, 2.0, 0.0, 0.00, 180),
        _hp("HP-6", 0.56, 2.0, 0.0, 0.00, 180),
        _hp("HP-7", 1.11, 2.0, 0.0, 0.00, 180),
        _hp("HP-8", 0.37, 2.0, 0.0, 0.00, 360),
        _hp("HP-9", 0.37, 2.0, 0.0, 0.00, 720),
        _hp("HP-10", 0.37, 2.0, 0.0, 0.00, 1440),
        _hp("HP-11", 0.37, 2.0, 0.0, 0.00, 2880),
    ]
}


def policy(name: str) -> HostingPolicy:
    """Look up one of the paper's standard policies by name (e.g. ``"HP-5"``)."""
    try:
        return STANDARD_POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown hosting policy {name!r}; known: {sorted(STANDARD_POLICIES)}"
        ) from None


# Convenience factory for custom sweep policies (Figs. 11-12 vary one knob).
def custom_policy(
    name: str,
    *,
    cpu_bulk: Cpu = Cpu(0.37),
    memory_bulk: Mem = Mem(2.0),
    extnet_in_bulk: NetIn = NetIn(0.0),
    extnet_out_bulk: NetOut = NetOut(0.0),
    time_bulk_minutes: float = 180,
) -> HostingPolicy:
    """Build a one-off policy, defaulting to HP-5's shape."""
    return _hp(name, cpu_bulk, memory_bulk, extnet_in_bulk, extnet_out_bulk, time_bulk_minutes)

"""The experimental data-center inventory of the paper (Table III).

Table III lists 15 data centers on four continents with 166 machines in
total.  :func:`build_paper_datacenters` reconstructs that inventory and
applies hosting policies the way Sec. V-B describes: policies are handed
out round-robin, and *"when two data centers have the same location,
their hosting policies are set one as HP-1 and one as HP-2, and their
number of machines is set to half the number of resources at that
location"*.

For the latency-tolerance experiments (Sec. V-E, Figs. 13-14) the paper
uses only the North American centers, with *"coarse grained [policies]
for the data centers located on the East Coast, ... gradually finer
grained for ... Central and West Coast"*;
:func:`build_north_american_datacenters` reconstructs that setup.
"""

from __future__ import annotations

import itertools
from typing import Callable, Sequence

from repro.datacenter.center import DataCenter
from repro.datacenter.geography import location
from repro.datacenter.policy import HostingPolicy, policy
from repro.datacenter.resources import Cpu

__all__ = [
    "TABLE_III_INVENTORY",
    "build_paper_datacenters",
    "build_north_american_datacenters",
]

#: Table III rows: (location name, number of centers, total machines).
TABLE_III_INVENTORY: tuple[tuple[str, int, int], ...] = (
    ("Finland", 2, 8),
    ("Sweden", 2, 8),
    ("U.K.", 2, 20),
    ("Netherlands", 2, 15),
    ("US West", 2, 35),
    ("Canada West", 1, 15),
    ("US Central", 1, 15),
    ("US East", 2, 32),
    ("Canada East", 1, 10),
    ("Australia", 2, 8),
)


def _split_machines(total: int, n_centers: int) -> list[int]:
    """Split a machine total across centers (larger remainders first)."""
    base, extra = divmod(total, n_centers)
    return [base + (1 if i < extra else 0) for i in range(n_centers)]


def build_paper_datacenters(
    policies: Sequence[HostingPolicy] | None = None,
    *,
    policy_for: Callable[[str, int], HostingPolicy] | None = None,
) -> list[DataCenter]:
    """Build the full Table III inventory.

    Parameters
    ----------
    policies:
        Policies to hand out round-robin across centers at each location
        (the paper's Sec. V-B uses ``[HP-1, HP-2]``).  Defaults to that
        pair.
    policy_for:
        Alternative fine-grained control: a callable
        ``(location_name, index_at_location) -> HostingPolicy`` that
        overrides ``policies`` when given.

    Returns
    -------
    list[DataCenter]
        15 data centers totalling 166 machines, named like
        ``"US East (1)"``.
    """
    if policies is None:
        policies = [policy("HP-1"), policy("HP-2")]
    if not policies and policy_for is None:
        raise ValueError("need at least one hosting policy")

    centers: list[DataCenter] = []
    lease_ids = itertools.count(1)  # platform-unique lease ids
    for loc_name, n_centers, total_machines in TABLE_III_INVENTORY:
        loc = location(loc_name)
        for idx, machines in enumerate(_split_machines(total_machines, n_centers)):
            if policy_for is not None:
                pol = policy_for(loc_name, idx)
            else:
                pol = policies[idx % len(policies)]
            suffix = f" ({idx + 1})" if n_centers > 1 else ""
            centers.append(
                DataCenter(
                    name=f"{loc_name}{suffix}",
                    location=loc,
                    n_machines=machines,
                    policy=pol,
                    lease_ids=lease_ids,
                )
            )
    return centers


#: Policy gradient used for the Sec. V-E North-America experiments:
#: coarse on the East Coast, gradually finer toward the West Coast.
_NA_POLICY_GRADIENT: dict[str, str] = {
    "US East": "HP-11",  # coarsest: large CPU bulk & 48h lease
    "Canada East": "HP-10",
    "US Central": "HP-8",
    "Canada West": "HP-5",
    "US West": "HP-3",  # finest
}

#: CPU-bulk gradient paired with the lease-length gradient above.
_NA_CPU_BULKS: dict[str, float] = {
    "US East": 1.11,
    "Canada East": 0.56,
    "US Central": 0.37,
    "Canada West": 0.28,
    "US West": 0.22,
}


def build_north_american_datacenters() -> list[DataCenter]:
    """Build only the North American Table III centers with the Sec. V-E
    East-coarse → West-fine policy gradient.

    East Coast centers get large CPU bulks *and* long time bulks; West
    Coast centers get the finest of both.  This is the setup under which
    the paper shows the coarse-policy centers being penalized with unused
    resources (Fig. 14).
    """
    from repro.datacenter.policy import custom_policy

    centers: list[DataCenter] = []
    lease_ids = itertools.count(1)  # platform-unique lease ids
    na_rows = [row for row in TABLE_III_INVENTORY if location(row[0]).region == "North America"]
    for loc_name, n_centers, total_machines in na_rows:
        loc = location(loc_name)
        base = policy(_NA_POLICY_GRADIENT[loc_name])
        pol = custom_policy(
            f"{_NA_POLICY_GRADIENT[loc_name]}*",
            cpu_bulk=Cpu(_NA_CPU_BULKS[loc_name]),
            time_bulk_minutes=base.time_bulk_minutes,
        )
        for idx, machines in enumerate(_split_machines(total_machines, n_centers)):
            suffix = f" ({idx + 1})" if n_centers > 1 else ""
            centers.append(
                DataCenter(
                    name=f"{loc_name}{suffix}",
                    location=loc,
                    n_machines=machines,
                    policy=pol,
                    lease_ids=lease_ids,
                )
            )
    return centers

"""Geography: data-center locations, distances and latency classes.

The paper's matching mechanism locates resources "closest to the request"
subject to a game's latency tolerance (Sec. II-C, V-E).  With the paper's
idealized network, latency is determined exclusively by physical distance,
so the latency tolerance of a game maps to a *maximal allocation distance*
between players and servers.  Section V-E defines five distance classes:

========================  =======================================
class                      maximal player-server distance
========================  =======================================
``SAME_LOCATION``          ~0 km (same site)
``VERY_CLOSE``             < 1,000 km
``CLOSE``                  < 2,000 km
``FAR``                    < 4,000 km
``VERY_FAR``               unbounded (any server serves any user)
========================  =======================================
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import NewType

__all__ = [
    "GeoLocation",
    "Km",
    "LatencyClass",
    "haversine_km",
    "LOCATIONS",
    "location",
    "EARTH_RADIUS_KM",
]

#: Great-circle distance in kilometres (a dimension tag checked by RA002,
#: like the resource dimensions in :mod:`repro.datacenter.resources`).
Km = NewType("Km", float)

EARTH_RADIUS_KM = 6371.0


@dataclass(frozen=True)
class GeoLocation:
    """A named point on the globe.

    Coordinates are decimal degrees; ``region`` is a coarse market label
    used to partition workloads (e.g. ``"Europe"``, ``"North America"``).
    """

    name: str
    latitude: float
    longitude: float
    region: str

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude <= 90.0:
            raise ValueError(f"latitude out of range: {self.latitude}")
        if not -180.0 <= self.longitude <= 180.0:
            raise ValueError(f"longitude out of range: {self.longitude}")

    def distance_km(self, other: "GeoLocation") -> Km:
        """Great-circle distance to another location in kilometres."""
        return haversine_km(self.latitude, self.longitude, other.latitude, other.longitude)


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> Km:
    """Great-circle distance between two (lat, lon) points in kilometres.

    Standard haversine formula on a spherical Earth of radius
    :data:`EARTH_RADIUS_KM`.  Accurate to ~0.5% which is ample for the
    coarse distance bands of the latency model.
    """
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlam = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    return Km(2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(a))))


class LatencyClass(enum.Enum):
    """Maximal player-server distance classes of Sec. V-E."""

    SAME_LOCATION = "same location"
    VERY_CLOSE = "very close"
    CLOSE = "close"
    FAR = "far"
    VERY_FAR = "very far"

    @property
    def max_distance_km(self) -> Km:
        """The maximal allocation distance, in km (``inf`` for VERY_FAR)."""
        return _MAX_DISTANCE_KM[self]

    def admits(self, distance_km: Km) -> bool:
        """``True`` iff a player-server pair at this distance is allowed."""
        return distance_km <= self.max_distance_km

    def __str__(self) -> str:
        return self.value


_MAX_DISTANCE_KM: dict[LatencyClass, Km] = {
    # "d ~ 0 km": we allow a small slack so a DC in the same metro counts.
    LatencyClass.SAME_LOCATION: Km(50.0),
    LatencyClass.VERY_CLOSE: Km(1000.0),
    LatencyClass.CLOSE: Km(2000.0),
    LatencyClass.FAR: Km(4000.0),
    LatencyClass.VERY_FAR: Km(math.inf),
}


def _loc(name: str, lat: float, lon: float, region: str) -> GeoLocation:
    return GeoLocation(name=name, latitude=lat, longitude=lon, region=region)


#: Named locations used by the Table III data-center inventory plus the
#: player population centres that generate the workload.  Coordinates are
#: representative metro areas for each Table III row.
LOCATIONS: dict[str, GeoLocation] = {
    loc.name: loc
    for loc in [
        # --- Table III data-center sites -------------------------------
        _loc("Finland", 60.17, 24.94, "Europe"),  # Helsinki
        _loc("Sweden", 59.33, 18.06, "Europe"),  # Stockholm
        _loc("U.K.", 51.51, -0.13, "Europe"),  # London
        _loc("Netherlands", 52.37, 4.90, "Europe"),  # Amsterdam
        _loc("US West", 37.77, -122.42, "North America"),  # San Francisco
        _loc("Canada West", 49.28, -123.12, "North America"),  # Vancouver
        _loc("US Central", 41.88, -87.63, "North America"),  # Chicago
        _loc("US East", 40.71, -74.01, "North America"),  # New York
        _loc("Canada East", 43.65, -79.38, "North America"),  # Toronto
        _loc("Australia", -33.87, 151.21, "Australia"),  # Sydney
        # --- additional population centres -----------------------------
        _loc("Germany", 52.52, 13.40, "Europe"),  # Berlin
        _loc("France", 48.86, 2.35, "Europe"),  # Paris
        _loc("US South", 29.76, -95.37, "North America"),  # Houston
        _loc("Japan", 35.68, 139.69, "Asia"),  # Tokyo
        _loc("Korea", 37.57, 126.98, "Asia"),  # Seoul
    ]
}


def location(name: str) -> GeoLocation:
    """Look up a named location (raises ``KeyError`` with suggestions)."""
    try:
        return LOCATIONS[name]
    except KeyError:
        raise KeyError(f"unknown location {name!r}; known: {sorted(LOCATIONS)}") from None

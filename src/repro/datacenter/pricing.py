"""Resource pricing and operation-cost accounting.

The paper's bottom line is economic: "the dynamic resource provisioning
reduces considerably the MMOG operation costs with a reasonable loss of
performance", and static platforms mean "a large portion of the
resources are unnecessary".  This module prices allocations so that
claim can be quantified:

* a :class:`PriceList` assigns a rate per resource unit-hour (the
  generic "unit" of Sec. V-A: one fully loaded game server's worth);
* :func:`lease_cost` prices one lease for its full duration — leases
  are paid for their whole requested duration whether used or not,
  which is exactly why time bulks matter;
* :func:`timeline_cost` integrates a metric timeline's allocation into
  a total bill, for comparing provisioning strategies on equal terms.

Rates default to a self-consistent set loosely anchored on late-2000s
hosting: a dedicated game-server-class machine at ~$0.50/hour, with
bandwidth dominating the machine cost (3 MB/s sustained egress per
ExtNet[out] unit was expensive in 2008).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metrics import MetricsTimeline
from repro.datacenter.center import Lease
from repro.datacenter.resources import ResourceVector

__all__ = ["PriceList", "DEFAULT_PRICES", "lease_cost", "timeline_cost"]


@dataclass(frozen=True)
class PriceList:
    """Dollar rate per resource unit-hour, per resource type."""

    cpu_per_unit_hour: float = 0.50
    memory_per_unit_hour: float = 0.05
    extnet_in_per_unit_hour: float = 0.40
    extnet_out_per_unit_hour: float = 0.40

    def __post_init__(self) -> None:
        for v in (
            self.cpu_per_unit_hour,
            self.memory_per_unit_hour,
            self.extnet_in_per_unit_hour,
            self.extnet_out_per_unit_hour,
        ):
            if v < 0:
                raise ValueError("rates must be non-negative")

    def as_array(self) -> np.ndarray:
        """Rates in :data:`RESOURCE_TYPES` order."""
        return np.array(
            [
                self.cpu_per_unit_hour,
                self.memory_per_unit_hour,
                self.extnet_in_per_unit_hour,
                self.extnet_out_per_unit_hour,
            ]
        )

    def rate(self, vector: ResourceVector) -> float:
        """Dollar cost per hour of holding a resource vector."""
        return float(vector.values @ self.as_array())


#: The default rate card used by the cost experiments.
DEFAULT_PRICES = PriceList()


def lease_cost(
    lease: Lease, *, step_minutes: float = 2.0, prices: PriceList = DEFAULT_PRICES
) -> float:
    """Price of one lease over its full requested duration."""
    hours = (lease.end_step - lease.start_step) * step_minutes / 60.0
    return prices.rate(lease.resources) * hours


def timeline_cost(
    timeline: MetricsTimeline,
    *,
    step_minutes: float = 2.0,
    prices: PriceList = DEFAULT_PRICES,
) -> float:
    """Total bill for a simulation's allocation timeline.

    Integrates the per-step allocated vector at the price-list rates —
    equivalent to summing all lease costs clipped to the evaluation
    window.
    """
    hours_per_step = step_minutes / 60.0
    per_step = timeline.allocated @ prices.as_array()
    return float(per_step.sum() * hours_per_step)

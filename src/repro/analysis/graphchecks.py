"""RA004/RA005 — cheap byproducts of the project graph.

**RA004 (import cycles).**  Statement-level import edges between project
modules are collected (imports guarded by ``if TYPE_CHECKING:`` are
skipped — that guard *is* the sanctioned cycle-breaking idiom) and the
strongly-connected components of the resulting graph are computed.
Any component with more than one module, or a self-import, is a cycle:
import order then depends on which module happens to be imported first,
which is exactly the class of bug that surfaces only in fresh
interpreters (CLI runs) and not under test runners.

**RA005 (dead experiments).**  The CLI's ``EXPERIMENTS`` dict literal is
the single registry mapping experiment names to modules.  An experiment
module that exists on disk but is absent from the registry is
unreachable from ``repro experiment`` — usually a forgotten
registration.  The check only runs when both the CLI module and the
experiments package are part of the analyzed tree, so analyzing a
subpackage never false-positives.
"""

from __future__ import annotations

import ast

from repro.analysis.project import Project, SourceModule
from repro.lint.engine import Violation

__all__ = ["check_import_cycles", "check_dead_experiments"]

CYCLE_RULE_ID = "RA004"
DEAD_EXPERIMENT_RULE_ID = "RA005"

#: Experiment modules that are infrastructure, not runnable experiments.
_EXPERIMENT_EXEMPT = frozenset({"common", "__init__"})


def _is_type_checking_guard(node: ast.stmt) -> bool:
    if not isinstance(node, ast.If):
        return False
    test = node.test
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _runtime_imports(tree: ast.Module) -> list[ast.stmt]:
    """Import statements that execute at module-import time.

    ``if TYPE_CHECKING:`` blocks are skipped (their ``else`` branches
    still count), and so are imports inside function bodies — a
    deferred ``from x import y`` inside a function is the *other*
    sanctioned cycle-breaking idiom and never runs during module init.
    Class bodies do execute at import time, so they are descended into.
    """
    out: list[ast.stmt] = []
    stack: list[ast.stmt] = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            out.append(node)
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if _is_type_checking_guard(node) and isinstance(node, ast.If):
            stack.extend(node.orelse)
            continue
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                stack.append(child)
    return out


def _edge_targets(
    stmt: ast.stmt, module: SourceModule, project: Project
) -> list[str]:
    """Project modules imported by one statement (dotted, resolved)."""
    is_package = module.path.replace("\\", "/").endswith("__init__.py")
    parts = module.name.split(".")
    package_parts = parts if is_package else parts[:-1]
    targets: list[str] = []
    if isinstance(stmt, ast.Import):
        for alias in stmt.names:
            if alias.name in project.modules:
                targets.append(alias.name)
    elif isinstance(stmt, ast.ImportFrom):
        if stmt.level == 0:
            base = stmt.module or ""
        else:
            anchor = package_parts[: len(package_parts) - (stmt.level - 1)]
            base = ".".join(anchor + ([stmt.module] if stmt.module else []))
        if base in project.modules:
            targets.append(base)
        for alias in stmt.names:
            candidate = f"{base}.{alias.name}" if base else alias.name
            if candidate in project.modules:
                targets.append(candidate)
    return targets


def _import_graph(
    project: Project,
) -> tuple[dict[str, set[str]], dict[tuple[str, str], tuple[str, int]]]:
    """``(edges, sites)``: adjacency plus ``(path, line)`` per edge."""
    edges: dict[str, set[str]] = {name: set() for name in project.modules}
    sites: dict[tuple[str, str], tuple[str, int]] = {}
    for module in project.sorted_modules():
        for stmt in _runtime_imports(module.tree):
            for target in _edge_targets(stmt, module, project):
                if target == module.name:
                    continue
                edges[module.name].add(target)
                sites.setdefault(
                    (module.name, target), (module.path, stmt.lineno)
                )
    return edges, sites


def _strongly_connected(edges: dict[str, set[str]]) -> list[list[str]]:
    """Tarjan's SCC algorithm, iterative, deterministic order."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            successors = sorted(edges.get(node, ()))
            for position in range(child_index, len(successors)):
                successor = successors[position]
                if successor not in index:
                    work.append((node, position + 1))
                    work.append((successor, 0))
                    recurse = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if recurse:
                continue
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])

    for name in sorted(edges):
        if name not in index:
            strongconnect(name)
    return components


def check_import_cycles(project: Project) -> list[Violation]:
    """Flag runtime import cycles between project modules."""
    edges, sites = _import_graph(project)
    violations: list[Violation] = []
    for component in _strongly_connected(edges):
        if len(component) < 2:
            continue
        first = component[0]
        cycle = " -> ".join(component + [first])
        # Attribute the finding to the first module's outgoing edge
        # inside the component so the location is a real import line.
        location = None
        for target in sorted(edges[first]):
            if target in component:
                location = sites.get((first, target))
                break
        path, line = location if location else (project.modules[first].path, 1)
        violations.append(
            Violation(
                path=path,
                line=line,
                col=0,
                rule_id=CYCLE_RULE_ID,
                message=f"runtime import cycle: {cycle}",
            )
        )
    violations.sort()
    return violations


def _registry_values(cli_module: SourceModule) -> set[str] | None:
    """Module paths registered in the CLI ``EXPERIMENTS`` dict literal."""
    for stmt in cli_module.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets, value = [stmt.target], stmt.value
        if value is None or not any(
            isinstance(t, ast.Name) and t.id == "EXPERIMENTS" for t in targets
        ):
            continue
        if not isinstance(value, ast.Dict):
            return None
        out: set[str] = set()
        for entry in value.values:
            if isinstance(entry, ast.Constant) and isinstance(entry.value, str):
                out.add(entry.value)
        return out
    return None


def check_dead_experiments(project: Project) -> list[Violation]:
    """Flag experiment modules missing from the CLI registry."""
    cli_module = project.modules.get("repro.cli")
    if cli_module is None:
        return []
    registered = _registry_values(cli_module)
    if registered is None:
        return []
    violations: list[Violation] = []
    for name in sorted(project.modules):
        prefix, _, leaf = name.rpartition(".")
        if prefix != "repro.experiments" or leaf in _EXPERIMENT_EXEMPT:
            continue
        if name not in registered:
            violations.append(
                Violation(
                    path=project.modules[name].path,
                    line=1,
                    col=0,
                    rule_id=DEAD_EXPERIMENT_RULE_ID,
                    message=(
                        f"experiment module {name} is not registered in "
                        "repro.cli EXPERIMENTS and cannot be run from the CLI"
                    ),
                )
            )
    return violations

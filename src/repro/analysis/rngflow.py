"""RA003 — RNG provenance: only seeded, locally-owned generators may
reach simulation code.

RL001 already bans *constructing* unseeded generators file-by-file.
This pass adds what only a whole-program view can check — the flow:

* a **module-level RNG instance** in a simulation package (``core``,
  ``emulator``, ``predictors``, ``traces``) is process-shared state:
  two runs interleave draws differently, so it is flagged where it is
  created;
* an **unseeded RNG** created anywhere (even in glue code where RL001
  is silent) and then **passed as an argument** into a project function
  in a simulation package is flagged at the call site;
* a **module-level RNG** passed into a simulation-package function is
  flagged even when seeded — sharing one stream across callers couples
  their draw sequences.

``repro.experiments.common.experiment_rng`` is the sanctioned seeded
source (it folds the experiment name into the base seed), so values
that come from it — or from any constructor given an explicit seed —
flow freely.  Parameters of unknown provenance are trusted: the pass
only reports provable leaks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.symbols import FunctionInfo, SymbolTable, annotation_to_dotted
from repro.lint.engine import Violation

__all__ = ["SIM_PACKAGE_PREFIXES", "check_rng_flow"]

RULE_ID = "RA003"

#: Packages whose functions constitute "simulation code" for this pass.
SIM_PACKAGE_PREFIXES: tuple[str, ...] = (
    "repro.core",
    "repro.emulator",
    "repro.predictors",
    "repro.traces",
)

#: RNG constructors: canonical dotted name -> needs an explicit seed.
_RNG_CONSTRUCTORS = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
    }
)

#: Sanctioned always-seeded factory (derives the stream from the
#: experiment name + base seed; see experiments/common.py).
_SEEDED_FACTORIES = frozenset({"repro.experiments.common.experiment_rng"})


@dataclass(frozen=True)
class _RngOrigin:
    """Provenance of one RNG value: where and how it was created."""

    seeded: bool
    shared: bool  # module-level (process-wide) instance


def _in_sim_package(module: str) -> bool:
    return any(
        module == p or module.startswith(p + ".") for p in SIM_PACKAGE_PREFIXES
    )


class _ModuleRngChecker:
    """Runs the RNG-flow checks over one module."""

    def __init__(self, symbols: SymbolTable, module: str) -> None:
        self.symbols = symbols
        self.module = module
        self.info = symbols.project.modules[module]
        #: module-level names bound to RNG instances (name -> origin).
        self.module_rngs: dict[str, _RngOrigin] = {}

    def _resolve(self, expr: ast.expr) -> str | None:
        dotted = annotation_to_dotted(expr)
        if dotted is None:
            return None
        return self.symbols.canonicalize(self.symbols.resolve(self.module, dotted))

    def _rng_creation(self, expr: ast.expr) -> _RngOrigin | None:
        """Origin when ``expr`` directly constructs an RNG, else None."""
        if not isinstance(expr, ast.Call):
            return None
        resolved = self._resolve(expr.func)
        if resolved in _SEEDED_FACTORIES:
            return _RngOrigin(seeded=True, shared=False)
        if resolved in _RNG_CONSTRUCTORS:
            seeded = bool(expr.args or expr.keywords)
            return _RngOrigin(seeded=seeded, shared=False)
        return None

    def _violation(self, node: ast.AST, message: str) -> Violation:
        return Violation(
            path=self.info.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            rule_id=RULE_ID,
            message=message,
        )

    def check(self) -> list[Violation]:
        out: list[Violation] = []
        for stmt in self.info.tree.body:
            if isinstance(stmt, ast.Assign):
                origin = self._rng_creation(stmt.value)
                if origin is None:
                    continue
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.module_rngs[target.id] = _RngOrigin(
                            seeded=origin.seeded, shared=True
                        )
                        if _in_sim_package(self.module):
                            out.append(
                                self._violation(
                                    stmt,
                                    f"module-level RNG {target.id!r} in "
                                    "simulation package: one process-wide "
                                    "stream couples all callers; inject a "
                                    "seeded generator instead",
                                )
                            )
        for qualname in sorted(self.symbols.functions):
            fn = self.symbols.functions[qualname]
            if fn.module == self.module:
                out.extend(self._check_function(fn))
        return out

    def _local_origins(
        self, fn_node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> dict[str, _RngOrigin]:
        origins: dict[str, _RngOrigin] = {}
        for stmt in ast.walk(fn_node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    origin = self._rng_creation(stmt.value)
                    if origin is not None:
                        origins[target.id] = origin
                    elif target.id in origins:
                        del origins[target.id]  # rebound to non-RNG
        return origins

    def _arg_origin(
        self, arg: ast.expr, local_origins: dict[str, _RngOrigin]
    ) -> _RngOrigin | None:
        direct = self._rng_creation(arg)
        if direct is not None:
            return direct
        if isinstance(arg, ast.Name):
            if arg.id in local_origins:
                return local_origins[arg.id]
            return self.module_rngs.get(arg.id)
        return None

    def _check_function(self, fn: FunctionInfo) -> list[Violation]:
        out: list[Violation] = []
        local_origins = self._local_origins(fn.node)
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            resolved = self._resolve(node.func)
            if resolved is None:
                continue
            callee_fn = self.symbols.functions.get(resolved)
            callee_cls = self.symbols.classes.get(resolved)
            if callee_fn is not None:
                callee_module = callee_fn.module
                callee_label = callee_fn.qualname
            elif callee_cls is not None:
                callee_module = callee_cls.module
                callee_label = callee_cls.qualname
            else:
                continue
            if not _in_sim_package(callee_module):
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                origin = self._arg_origin(arg, local_origins)
                if origin is None:
                    continue
                if not origin.seeded:
                    out.append(
                        self._violation(
                            arg,
                            f"unseeded RNG flows into simulation code "
                            f"({callee_label}); seed it at creation",
                        )
                    )
                elif origin.shared:
                    out.append(
                        self._violation(
                            arg,
                            f"module-level RNG shared into simulation code "
                            f"({callee_label}); create a per-use generator",
                        )
                    )
        return out


def check_rng_flow(symbols: SymbolTable) -> list[Violation]:
    """Run the RNG-flow checks over every module in the project."""
    violations: list[Violation] = []
    for name in sorted(symbols.project.modules):
        violations.extend(_ModuleRngChecker(symbols, name).check())
    violations.sort()
    return violations

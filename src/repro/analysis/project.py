"""Project loading for the whole-program analyzer.

A :class:`Project` is the parsed universe the interprocedural passes
reason about: every module's source, AST, and dotted module name.  Two
constructors mirror the lint engine's dual real/fixture API:

* :meth:`Project.from_paths` walks real directories, deriving module
  names from the package structure (the nearest ancestor directory
  *without* an ``__init__.py`` is the import root, so
  ``src/repro/core/matching.py`` becomes ``repro.core.matching``);
* :meth:`Project.from_sources` builds a project from in-memory strings
  keyed by virtual path, which is how the fixture tests seed
  violations without touching the real tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping

from repro.lint.engine import iter_python_files, parse_cached

__all__ = ["SourceModule", "Project", "module_name_for_path"]


@dataclass(frozen=True)
class SourceModule:
    """One parsed module: dotted name, display path, source, and AST."""

    name: str
    path: str
    source: str
    tree: ast.Module


def module_name_for_path(file_path: Path) -> str:
    """Dotted module name implied by package structure on disk.

    Walks parent directories while they contain ``__init__.py``; the
    first directory without one is outside the package (e.g. ``src``).
    A bare script with no package parent is its own top-level module.
    """
    parts = [file_path.stem]
    parent = file_path.parent
    while (parent / "__init__.py").is_file():
        parts.append(parent.name)
        next_parent = parent.parent
        if next_parent == parent:  # filesystem root
            break
        parent = next_parent
    parts.reverse()
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _load_module(payload: tuple[str, str]) -> tuple[SourceModule | None, str | None]:
    """Read + parse one file: ``(module, None)`` or ``(None, error)``.

    Module-level (not a closure) and fed plain string payloads so it
    can cross the ``spawn_map`` multiprocessing boundary when
    ``Project.from_paths`` runs with ``jobs > 1`` — AST trees pickle
    back to the parent intact, and parsing is read-only, so fanning the
    per-file work out cannot change the loaded project.
    """
    display, resolved = payload
    path = Path(resolved)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        return None, f"{display}: unreadable: {exc}"
    try:
        tree = parse_cached(source, display)
    except SyntaxError as exc:
        return None, f"{display}:{exc.lineno or 0}: syntax error: {exc.msg}"
    return (
        SourceModule(
            name=module_name_for_path(path),
            path=display,
            source=source,
            tree=tree,
        ),
        None,
    )


def _module_name_for_virtual(virtual_path: str) -> str:
    """Module name for an in-memory fixture path.

    Fixture paths follow the repo layout (``src/repro/core/x.py``), so
    the rule is positional: strip a leading ``src`` component, drop the
    extension, and treat every directory as a package.
    """
    posix = virtual_path.replace("\\", "/")
    parts = [p for p in posix.split("/") if p and p != "."]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


class Project:
    """The parsed module universe handed to the analysis passes."""

    def __init__(self, modules: Iterable[SourceModule]) -> None:
        self.modules: dict[str, SourceModule] = {}
        for module in modules:
            # Last writer wins; from_paths sorts inputs so this is
            # deterministic, and duplicate dotted names only arise when
            # two source roots are analyzed at once.
            self.modules[module.name] = module

    def __contains__(self, name: str) -> bool:
        return name in self.modules

    def __len__(self) -> int:
        return len(self.modules)

    def sorted_modules(self) -> list[SourceModule]:
        """Modules in deterministic (name) order."""
        return [self.modules[name] for name in sorted(self.modules)]

    @classmethod
    def from_sources(cls, sources: Mapping[str, str]) -> "Project":
        """Build a project from ``{virtual_path: source}`` (fixtures).

        Raises :class:`SyntaxError` on unparseable fixture source — a
        fixture bug, not an analysis finding.
        """
        modules = []
        for virtual_path in sorted(sources):
            source = sources[virtual_path]
            tree = parse_cached(source, virtual_path)
            modules.append(
                SourceModule(
                    name=_module_name_for_virtual(virtual_path),
                    path=virtual_path,
                    source=source,
                    tree=tree,
                )
            )
        return cls(modules)

    @classmethod
    def from_paths(
        cls,
        paths: Iterable[str | Path],
        *,
        root: Path | None = None,
        jobs: int = 1,
    ) -> tuple["Project", list[str]]:
        """Load every ``*.py`` file under ``paths``.

        Returns ``(project, errors)``; unreadable or unparseable files
        become error strings (CI exit code 2) rather than exceptions so
        one bad file cannot hide the rest of the report.

        ``jobs > 1`` fans the per-file read+parse across spawn workers
        via :func:`repro.perf.parallel.spawn_map`; results return in
        submission order, so the loaded project — and therefore every
        downstream report — is byte-identical to a serial run.
        """
        base = (root or Path.cwd()).resolve()
        work: list[tuple[str, str]] = []
        for file_path in iter_python_files(paths):
            resolved = file_path.resolve()
            try:
                display = str(resolved.relative_to(base))
            except ValueError:
                display = str(file_path)
            work.append((display.replace("\\", "/"), str(resolved)))

        if jobs > 1:
            from repro.perf.parallel import spawn_map

            results = spawn_map(_load_module, work, workers=jobs)
        else:
            results = [_load_module(item) for item in work]

        modules: list[SourceModule] = []
        errors: list[str] = []
        for loaded, error in results:  # type: ignore[misc]
            if error is not None:
                errors.append(error)
            elif loaded is not None:
                modules.append(loaded)
        return cls(modules), errors

"""Command-line front end for the whole-program analyzer.

Exposed two ways with identical behaviour:

* ``repro analyze [paths ...]`` — subcommand of the main CLI;
* ``python -m repro.analysis [paths ...]`` — standalone, for CI and
  pre-commit hooks.

Exit-code contract (same as ``repro lint``): 0 clean, 1 findings,
2 engine/usage errors.

``--changed-only`` keeps the *analysis* whole-program (reachability and
dimensions are meaningless on a file subset) but reports only findings
located in files touched per ``git status``/``git diff`` — the
pre-commit sweet spot: full rigor, focused output.
"""

from __future__ import annotations

import argparse
import subprocess
from pathlib import Path
from typing import Sequence

from repro.analysis.engine import PASS_SUMMARIES, analyze_paths
from repro.lint.engine import LintReport
from repro.lint.output import render_report

__all__ = ["add_analyze_arguments", "build_parser", "run_from_args", "main"]


def add_analyze_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the shared ``analyze`` options on ``parser``."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: ./src/repro or ./src)",
    )
    parser.add_argument(
        "--passes",
        metavar="IDS",
        default=None,
        help="comma-separated pass ids to run (default: all of RA001-RA021)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default="human",
        help="output format (default: human; sarif for CI annotation)",
    )
    parser.add_argument(
        "--list-passes",
        action="store_true",
        help="print the pass table and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="alias for --list-passes (matches `repro lint --list-rules`)",
    )
    parser.add_argument(
        "--explain",
        metavar="PASS",
        default=None,
        help="print one pass's summary, defect class, and a minimal "
        "flagged example, then exit (e.g. --explain RA017)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="JSON report from a previous --format json run; findings "
        "already recorded there are filtered out (ratchet mode)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="record the current findings to FILE (for later --baseline "
        "runs) and exit 0",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="analyze the whole program but report only findings in "
        "files changed per git (for pre-commit)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the per-file parse fan-out (spawn "
        "semantics, order-preserving; default: 1 = serial, and the "
        "report is byte-identical at any N)",
    )


def build_parser(prog: str = "repro analyze") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="whole-program analyzer: phase purity, dimensional "
        "analysis, RNG flow, import cycles, dead experiments, the "
        "dataflow passes (intervals, exception flow, hot-path cost), "
        "the array-aware passes (shape/dtype, hidden allocations, "
        "RNG-stream symmetry, parallel safety), the async-safety "
        "passes (event-loop blocking, task lifecycle, cross-task "
        "sharing, tick restartability), and the config-flow passes "
        "(knob reachability, scenario values, default drift, seed "
        "routing), plus span instrumentation coverage (RA001-RA021)",
    )
    add_analyze_arguments(parser)
    return parser


def _default_paths() -> list[str]:
    for candidate in ("src/repro", "src"):
        if Path(candidate).is_dir():
            return [candidate]
    return []


def _git_changed_files() -> set[str] | None:
    """Repo-relative paths of files changed vs HEAD (staged, unstaged,
    and untracked), or ``None`` when git is unavailable."""
    changed: set[str] = set()
    commands = (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    )
    for command in commands:
        try:
            proc = subprocess.run(
                command, capture_output=True, text=True, timeout=30, check=False
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            return None
        changed.update(line.strip() for line in proc.stdout.splitlines() if line.strip())
    return changed


def _filter_changed_only(report: LintReport) -> str | None:
    """Drop findings outside git-changed files; returns a warning when
    git state is unavailable (then nothing is filtered)."""
    changed = _git_changed_files()
    if changed is None:
        return "warning: --changed-only ignored (git state unavailable)"
    report.violations[:] = [
        v for v in report.violations if v.path.replace("\\", "/") in changed
    ]
    return None


def run_from_args(args: argparse.Namespace) -> int:
    """Execute an analyze run from parsed arguments; returns exit code."""
    if args.explain is not None:
        from repro.lint.explain import explain, render_explanation

        rule_id = args.explain.upper()
        if rule_id not in PASS_SUMMARIES:
            if explain(rule_id) is not None:
                print(
                    f"error: {rule_id} is a lint rule; "
                    f"use `repro lint --explain {rule_id}`"
                )
            else:
                print(f"error: unknown pass id {args.explain!r}")
            return 2
        print(render_explanation(rule_id, PASS_SUMMARIES[rule_id]))
        return 0
    if args.list_passes or args.list_rules:
        for rule_id in sorted(PASS_SUMMARIES):
            print(f"{rule_id}  {PASS_SUMMARIES[rule_id]}")
        print("\nuse --explain PASS for the defect class and a minimal example")
        return 0

    passes: list[str] | None = None
    if args.passes is not None:
        passes = [part.strip() for part in args.passes.split(",") if part.strip()]

    paths = args.paths or _default_paths()
    if not paths:
        print("error: no paths given and no ./src directory found")
        return 2

    if args.baseline is not None and args.write_baseline is not None:
        print("error: --baseline and --write-baseline are mutually exclusive")
        return 2
    if args.jobs < 1:
        print("error: --jobs must be >= 1")
        return 2

    report = analyze_paths(paths, passes=passes, jobs=args.jobs)
    if args.write_baseline is not None:
        from repro.lint.baseline import write_baseline

        write_baseline(report, args.write_baseline)
        print(
            f"wrote baseline with {len(report.violations)} finding(s) "
            f"to {args.write_baseline}"
        )
        return 0
    if args.baseline is not None:
        from repro.lint.baseline import BaselineError, apply_baseline, load_baseline

        try:
            apply_baseline(report, load_baseline(args.baseline))
        except BaselineError as exc:
            print(f"error: {exc}")
            return 2
    if args.changed_only:
        warning = _filter_changed_only(report)
        if warning is not None:
            print(warning)
    rendered = render_report(
        report, args.format, tool_name="repro-analyze",
        rule_descriptions=PASS_SUMMARIES,
    )
    if rendered:
        print(rendered)
    return report.exit_code


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point; returns the process exit code."""
    return run_from_args(build_parser().parse_args(argv))

"""RA018 — scenario-value checking: static analysis of config values.

Evaluates concrete scenario values against the schema's unit, bound,
dimension, and divisor declarations — the RA002/RA006 contracts lifted
from code to configuration.  Three value sources are checked:

* the schema's own ``default`` for every knob (a default that violates
  its own declaration is a schema bug);
* literal keyword arguments of ``Scenario(...)`` constructor calls
  anywhere in the project (tests, experiments, fixtures), with simple
  constant arithmetic folded into a point interval first;
* weight groups (``group=``) at those call sites — the given/default
  values of one group must sum to 1.0 when they are all literal.

Concrete YAML/JSON *documents* go through the identical value oracle
(:func:`repro.scenario.schema.validate_value`) via
``repro scenario lint`` — one oracle, two front ends, so code and data
can never drift apart.
"""

from __future__ import annotations

import ast

from repro.analysis.intervals import Interval
from repro.analysis.knobs import SCENARIO_CLASS, KnobDecl, collect_knobs
from repro.analysis.symbols import SymbolTable, annotation_to_dotted
from repro.lint.engine import Violation
from repro.scenario.schema import validate_value

__all__ = ["check_scenario_values", "fold_constant"]

#: Tolerance for weight groups that must sum to one.
_GROUP_SUM_TOLERANCE = 1e-6


def fold_constant(node: ast.expr) -> int | float | str | None:
    """Constant-fold a literal expression to a point value.

    Handles numeric/string constants, unary ``+``/``-``, and binary
    ``+ - * /`` over folded operands — enough to see through idioms
    like ``45 / 100`` or ``-0.5``.  Anything else is ``None`` (unknown,
    never flagged).
    """
    if isinstance(node, ast.Constant):
        value = node.value
        if isinstance(value, bool) or not isinstance(value, (int, float, str)):
            return None
        return value
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.UAdd, ast.USub)
    ):
        inner = fold_constant(node.operand)
        if isinstance(inner, (int, float)):
            return -inner if isinstance(node.op, ast.USub) else inner
        return None
    if isinstance(node, ast.BinOp):
        left = fold_constant(node.left)
        right = fold_constant(node.right)
        if not isinstance(left, (int, float)) or not isinstance(
            right, (int, float)
        ):
            return None
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        if isinstance(node.op, ast.Mult):
            return left * right
        if isinstance(node.op, ast.Div):
            return left / right if right != 0 else None
    return None


def _point(value: int | float) -> Interval:
    return Interval.point(float(value))


def _bounds_violations(declaration: KnobDecl, value: object) -> list[str]:
    """The shared oracle, driven through the interval domain for
    numeric values (a point interval met against [lo, hi])."""
    problems = validate_value(declaration, value)
    if (
        not problems
        and isinstance(value, (int, float))
        and not isinstance(value, bool)
    ):
        lo = declaration.lo if declaration.lo is not None else float("-inf")
        hi = declaration.hi if declaration.hi is not None else float("inf")
        if _point(value).meet(Interval(lo, hi)) is None:
            problems.append(
                f"{float(value):g} is outside the declared "
                f"interval [{lo:g}, {hi:g}]"
            )
    return problems


def _scenario_calls(
    symbols: SymbolTable,
) -> list[tuple[str, str, ast.Call]]:
    """Every ``Scenario(...)`` constructor call: ``(module, path, node)``."""
    calls: list[tuple[str, str, ast.Call]] = []
    for module in symbols.project.sorted_modules():
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = annotation_to_dotted(node.func)
            if dotted is None:
                continue
            resolved = symbols.canonicalize(symbols.resolve(module.name, dotted))
            if resolved == SCENARIO_CLASS:
                calls.append((module.name, module.path, node))
    return calls


def _check_call(
    declarations: dict[str, KnobDecl], path: str, call: ast.Call
) -> list[Violation]:
    findings: list[Violation] = []
    literal_values: dict[str, int | float | str] = {}
    for keyword in call.keywords:
        if keyword.arg is None or keyword.arg not in declarations:
            continue
        folded = fold_constant(keyword.value)
        if folded is None:
            continue
        literal_values[keyword.arg] = folded
        declaration = declarations[keyword.arg]
        for problem in _bounds_violations(declaration, folded):
            findings.append(
                Violation(
                    path=path,
                    line=keyword.value.lineno,
                    col=keyword.value.col_offset,
                    rule_id="RA018",
                    message=f"{declaration.path}: {problem}",
                )
            )
    findings.extend(_check_groups(declarations, literal_values, path, call))
    return findings


def _check_groups(
    declarations: dict[str, KnobDecl],
    literal_values: dict[str, int | float | str],
    path: str,
    call: ast.Call,
) -> list[Violation]:
    """Weight groups must sum to 1.0 across given + default values."""
    findings: list[Violation] = []
    given = {keyword.arg for keyword in call.keywords if keyword.arg}
    groups: dict[str, list[tuple[str, float]]] = {}
    for declaration in declarations.values():
        if declaration.group is None:
            continue
        if declaration.name in given:
            value: object = literal_values.get(declaration.name)
            if value is None:
                return []  # a non-literal weight: sum is unknowable
        else:
            value = declaration.default
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return []
        groups.setdefault(declaration.group, []).append(
            (declaration.path, float(value))
        )
    for group, entries in sorted(groups.items()):
        total = sum(weight for _, weight in entries)
        if abs(total - 1.0) > _GROUP_SUM_TOLERANCE:
            keys = ", ".join(key for key, _ in entries)
            findings.append(
                Violation(
                    path=path,
                    line=call.lineno,
                    col=call.col_offset,
                    rule_id="RA018",
                    message=(
                        f"workload mix '{group}' sums to {total:g}, "
                        f"not 1.0 ({keys})"
                    ),
                )
            )
    return findings


def check_scenario_values(symbols: SymbolTable) -> list[Violation]:
    """Run the RA018 checks; empty when no scenario schema exists."""
    knobs = collect_knobs(symbols)
    if not knobs:
        return []
    findings: list[Violation] = []
    declarations = {declaration.name: declaration for declaration in knobs}

    for declaration in knobs:
        if declaration.default is None:
            continue
        for problem in _bounds_violations(declaration, declaration.default):
            findings.append(
                Violation(
                    path=declaration.src_path,
                    line=declaration.line,
                    col=0,
                    rule_id="RA018",
                    message=(
                        f"knob '{declaration.name}' default violates its "
                        f"own declaration: {problem}"
                    ),
                )
            )

    for _, path, call in _scenario_calls(symbols):
        findings.extend(_check_call(declarations, path, call))
    return findings

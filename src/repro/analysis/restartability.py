"""RA016 — the tick loop's state must live in declared checkpoint state.

A long-running ``repro serve`` process must be restartable mid-run: the
paper's 2-minute tick cadence means an operator restart should resume
from the last closed tick, not replay hours of load.  That is only
possible if *everything the tick loop mutates* is either

* part of a **declared checkpointable dataclass** (a class marked with
  :func:`repro.service.state.checkpointable`, e.g.
  :class:`~repro.service.state.ServiceState`), or
* inside the **deterministic simulation core** (``repro.core`` and the
  packages under it), which a restart *reconstructs* from the
  checkpointed inputs rather than serializing.

Mirroring RA001's phase-purity BFS, the pass walks the call graph from
the service tick roots (:data:`SERVICE_TICK_ROOTS`: the per-tick
surface — ``record_report`` and ``advance_tick``; registration and
``start`` are pre-loop lifecycle by design) and flags hidden state a
checkpoint cannot capture:

* module-global mutation (rebinds, ``global``, mutator-method calls,
  subscript/attribute stores into module-level names);
* closure state (``nonlocal`` writes survive only in a live frame);
* instance-attribute stores whose target is neither an attribute of a
  checkpointable class nor typed as one in the symbol table.

Reads are free — consulting configuration is not state.  Construction
(``__init__``/``__post_init__``) is exempt: a freshly built object has
no history to lose.
"""

from __future__ import annotations

import ast
from collections import deque

from repro.analysis.callgraph import CallGraph
from repro.analysis.purity import (
    DEFAULT_BOUNDARY_PREFIXES,
    _MUTATOR_METHODS,
    _format_chain,
    _local_bound_names,
)
from repro.analysis.symbols import FunctionInfo, SymbolTable
from repro.lint.engine import Violation

__all__ = ["SERVICE_TICK_ROOTS", "RESTART_BOUNDARY_PREFIXES", "check_restartability"]

RULE_ID = "RA016"

#: The served tick surface: everything executed once per tick.
SERVICE_TICK_ROOTS: tuple[str, ...] = (
    "repro.service.server.ProvisioningService.record_report",
    "repro.service.server.ProvisioningService.advance_tick",
)

#: Where the restartability obligation ends: the observability boundary
#: (RA001's), plus the deterministic simulation core — a restart
#: rebuilds the stepper/operators/predictors from checkpointed inputs
#: instead of serializing them, so their interior state is out of scope.
RESTART_BOUNDARY_PREFIXES: tuple[str, ...] = DEFAULT_BOUNDARY_PREFIXES + (
    "repro.core",
    "repro.datacenter",
    "repro.predictors",
    "repro.emulator",
    "repro.traces",
)


def _is_checkpointable_class(symbols: SymbolTable, qualname: str) -> bool:
    info = symbols.classes.get(qualname)
    if info is None:
        return False
    for decorator in info.node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name: str | None = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name == "checkpointable":
            return True
    return False


def _self_attr(expr: ast.expr) -> str | None:
    """First attribute off ``self`` in an attribute/subscript chain."""
    current = expr
    attr: str | None = None
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        if isinstance(current, ast.Attribute):
            attr = current.attr
        current = current.value
    if isinstance(current, ast.Name) and current.id == "self":
        return attr
    return None


def _attr_is_sanctioned(symbols: SymbolTable, cls: str | None, attr: str) -> bool:
    """Is ``self.<attr>`` declared checkpoint state?"""
    if cls is None:
        return False
    if _is_checkpointable_class(symbols, cls):
        return True
    info = symbols.classes.get(cls)
    if info is None:
        return False
    attr_type = info.attr_types.get(attr)
    return attr_type is not None and _is_checkpointable_class(symbols, attr_type)


def _hidden_state(
    symbols: SymbolTable, fn: FunctionInfo
) -> list[tuple[ast.AST, str]]:
    """``(node, description)`` for each unrestartable mutation in ``fn``."""
    module_globals = symbols.module_globals.get(fn.module, set())
    shared = module_globals - _local_bound_names(fn.node)
    declared_global: set[str] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)

    found: list[tuple[ast.AST, str]] = []
    in_construction = fn.name in ("__init__", "__post_init__")
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Global):
            found.append(
                (
                    node,
                    f"hidden module state: `global {', '.join(node.names)}` "
                    "rebinds names a checkpoint cannot capture",
                )
            )
        elif isinstance(node, ast.Nonlocal):
            found.append(
                (
                    node,
                    f"hidden closure state: `nonlocal {', '.join(node.names)}` "
                    "lives only in a stack frame and dies with the process",
                )
            )
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name) and target.id in declared_global:
                    found.append(
                        (
                            node,
                            f"hidden module state: rebinds global {target.id!r}",
                        )
                    )
                elif isinstance(target, (ast.Subscript, ast.Attribute)):
                    base = target.value
                    if isinstance(base, ast.Name) and base.id in shared:
                        found.append(
                            (
                                node,
                                "hidden module state: stores into "
                                f"module-level {base.id!r}",
                            )
                        )
                        continue
                    attr = _self_attr(target)
                    if (
                        attr is not None
                        and not in_construction
                        and not _attr_is_sanctioned(symbols, fn.cls, attr)
                    ):
                        found.append(
                            (
                                node,
                                f"tick-loop state outside checkpointable "
                                f"dataclasses: store into self.{attr}",
                            )
                        )
        elif isinstance(node, ast.Call):
            func = node.func
            if not isinstance(func, ast.Attribute) or (
                func.attr not in _MUTATOR_METHODS
            ):
                continue
            receiver = func.value
            if isinstance(receiver, ast.Name) and receiver.id in shared:
                found.append(
                    (
                        node,
                        f"hidden module state: {receiver.id}.{func.attr}() "
                        "mutates module-level state",
                    )
                )
                continue
            attr = _self_attr(receiver)
            if (
                attr is not None
                and not in_construction
                and not _attr_is_sanctioned(symbols, fn.cls, attr)
            ):
                found.append(
                    (
                        node,
                        f"tick-loop state outside checkpointable dataclasses: "
                        f"self.{attr}.{func.attr}() mutates undeclared state",
                    )
                )
    return found


def check_restartability(
    symbols: SymbolTable,
    graph: CallGraph,
    *,
    roots: tuple[str, ...] = SERVICE_TICK_ROOTS,
    boundary_prefixes: tuple[str, ...] = RESTART_BOUNDARY_PREFIXES,
) -> list[Violation]:
    """Prove the tick-reachable closure free of hidden run state."""

    def in_boundary(module: str) -> bool:
        return any(
            module == p or module.startswith(p + ".") for p in boundary_prefixes
        )

    parents: dict[str, str | None] = {}
    queue: deque[str] = deque()
    for root in roots:
        if root in symbols.functions and root not in parents:
            parents[root] = None
            queue.append(root)

    violations: list[Violation] = []
    while queue:
        qualname = queue.popleft()
        fn = symbols.functions[qualname]
        if in_boundary(fn.module):
            continue  # reconstructed, not checkpointed: out of scope
        for node, description in _hidden_state(symbols, fn):
            violations.append(
                Violation(
                    path=fn.path,
                    line=getattr(node, "lineno", fn.lineno),
                    col=getattr(node, "col_offset", 0),
                    rule_id=RULE_ID,
                    message=(
                        f"{description} in tick-reachable {qualname} "
                        f"[chain: {_format_chain(parents, qualname)}]; declare "
                        "run state on a @checkpointable dataclass"
                    ),
                )
            )
        for site in graph.callees(qualname):
            if site.callee not in parents and site.callee in symbols.functions:
                parents[site.callee] = qualname
                queue.append(site.callee)
    violations.sort()
    return violations

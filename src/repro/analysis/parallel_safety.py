"""RA012 — parallel safety: what crosses a process boundary must survive it.

ROADMAP item 2 shards the simulation across worker processes, and the
``repro experiments --parallel N`` runner is the first consumer.  A
``multiprocessing`` boundary has two failure classes that type checkers
and the other RA passes cannot see:

* **pickle hazards** — the worker callable and every payload type must
  survive a round-trip through ``pickle``.  Lambdas, nested functions,
  and bound methods are not picklable by reference; payload classes
  whose attribute graph reaches a ``numpy.random.Generator`` *are*
  picklable but wrong — the copy duplicates the parent's stream, so
  two workers draw identical "random" numbers; locks, sockets, open
  files, and live iterators simply fail to pickle at dispatch time.
* **shared-mutable-state illusions** — a worker that writes a module
  global (``global`` rebinding, ``CACHE[k] = v``, ``CACHE.clear()``)
  mutates its *own* copy under spawn semantics; the parent never sees
  the write.  Results must travel through return values, which the
  runner merges explicitly (``MetricsRegistry.merge_from``).

The pass finds boundary call sites syntactically — ``pool.map(fn,
items)`` and friends on a ``pool``/``executor`` receiver, and
``Process(target=fn)``/``Executor.submit(fn, ...)`` — resolves the
worker callable through the symbol table, and checks (a) the callable
is a picklable module-level function, (b) no parameter annotation
reaches a hazard type through the class-attribute graph, and (c) the
worker body performs no module-global mutation.  Scope is the worker
function itself, not its transitive callees: per-process caches
*inside* the worker are legitimate (each process warms its own), and
flagging them would teach people to stop reading the reports.
"""

from __future__ import annotations

import ast
from collections import deque

from repro.analysis.symbols import (
    ClassInfo,
    FunctionInfo,
    SymbolTable,
    annotation_to_dotted,
)
from repro.lint.engine import Violation

__all__ = ["HAZARD_TYPES", "check_parallel_safety"]

RULE_ID = "RA012"

#: Canonical dotted type -> why it must not cross a process boundary.
HAZARD_TYPES: dict[str, str] = {
    "numpy.random.Generator": (
        "a pickled Generator duplicates the parent's stream; seed one "
        "per worker instead"
    ),
    "numpy.random.BitGenerator": (
        "a pickled BitGenerator duplicates the parent's stream; seed "
        "one per worker instead"
    ),
    "numpy.random.SeedSequence": (
        "share spawned child seeds, not the parent sequence object"
    ),
    "threading.Lock": "locks do not pickle and cannot guard two processes",
    "threading.RLock": "locks do not pickle and cannot guard two processes",
    "threading.Event": "thread events are invisible to other processes",
    "threading.Condition": "conditions do not pickle",
    "threading.Semaphore": "semaphores do not pickle",
    "typing.IO": "open file handles do not survive pickling",
    "typing.TextIO": "open file handles do not survive pickling",
    "typing.BinaryIO": "open file handles do not survive pickling",
    "io.TextIOWrapper": "open file handles do not survive pickling",
    "io.BufferedReader": "open file handles do not survive pickling",
    "io.BufferedWriter": "open file handles do not survive pickling",
    "socket.socket": "sockets do not survive pickling",
    "subprocess.Popen": "process handles do not survive pickling",
    "typing.Iterator": "a live iterator's position does not pickle",
    "typing.Generator": "a live generator frame does not pickle",
    "collections.abc.Iterator": "a live iterator's position does not pickle",
    "collections.abc.Generator": "a live generator frame does not pickle",
}

#: Fan-out methods on a pool/executor receiver: ``args[0]`` is the
#: worker callable.
_POOL_METHODS = frozenset(
    {
        "map",
        "imap",
        "imap_unordered",
        "starmap",
        "map_async",
        "starmap_async",
        "apply",
        "apply_async",
        "submit",
    }
)

#: Receiver name fragments that mark a process boundary.  ``pool.map``
#: on something called ``pool``/``executor`` is the boundary idiom;
#: ``seq.map`` on arbitrary receivers is not flagged (prove, don't
#: guess).
_BOUNDARY_RECEIVERS = ("pool", "executor")

#: Methods that mutate their receiver in place (module-global check).
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        "setdefault",
        "appendleft",
        "popleft",
        "sort",
    }
)


def _receiver_is_boundary(expr: ast.expr) -> bool:
    path = annotation_to_dotted(expr)
    if path is None:
        return False
    tail = path.rsplit(".", 1)[-1].lower()
    return any(fragment in tail for fragment in _BOUNDARY_RECEIVERS)


def _annotation_dotted_names(node: ast.expr) -> list[str]:
    """Every dotted type name anywhere in an annotation AST.

    ``list[tuple[Lease, np.random.Generator]]`` yields the container
    heads *and* both element types, so hazards hiding inside generics
    are still found.
    """
    names: list[str] = []
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.Name, ast.Attribute)):
            dotted = annotation_to_dotted(
                current if isinstance(current, ast.expr) else None
            )
            if dotted is not None:
                names.append(dotted)
            continue  # Attribute chains are atomic; don't re-walk parts
        if isinstance(current, ast.Constant) and isinstance(current.value, str):
            try:
                parsed = ast.parse(current.value, mode="eval").body
            except SyntaxError:
                continue
            stack.append(parsed)
            continue
        stack.extend(ast.iter_child_nodes(current))
    return names


def _local_bindings(fn_node: ast.AST) -> set[str]:
    """Names bound by plain ``Name`` stores anywhere in the function.

    Python scoping makes such a name local for the *whole* function
    body, so writes through it cannot touch the module global of the
    same name.  Over-approximating across nested scopes only loses
    findings, never invents them — the prove-don't-guess direction.
    """
    bound: set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
    return bound


class _BoundarySite:
    """One fan-out call: where, and what crosses."""

    def __init__(
        self, fn: FunctionInfo, call: ast.Call, payload: ast.expr
    ) -> None:
        self.fn = fn
        self.call = call
        self.payload = payload


def _find_boundary_sites(fn: FunctionInfo) -> list[_BoundarySite]:
    sites: list[_BoundarySite] = []
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _POOL_METHODS
            and _receiver_is_boundary(func.value)
            and node.args
        ):
            sites.append(_BoundarySite(fn, node, node.args[0]))
            continue
        # Process(target=fn, ...) — by name or dotted path.
        callee = annotation_to_dotted(func)
        if callee is not None and callee.rsplit(".", 1)[-1] == "Process":
            for kw in node.keywords:
                if kw.arg == "target":
                    sites.append(_BoundarySite(fn, node, kw.value))
    return sites


class _SiteChecker:
    def __init__(self, symbols: SymbolTable, site: _BoundarySite) -> None:
        self.symbols = symbols
        self.site = site
        self.violations: list[Violation] = []

    def _flag(self, node: ast.AST, message: str) -> None:
        self.violations.append(
            Violation(
                path=self.site.fn.path,
                line=getattr(node, "lineno", self.site.fn.lineno),
                col=getattr(node, "col_offset", 0),
                rule_id=RULE_ID,
                message=f"{message} [boundary in {self.site.fn.qualname}]",
            )
        )

    def check(self) -> list[Violation]:
        payload = self.site.payload
        if isinstance(payload, ast.Lambda):
            self._flag(
                payload,
                "lambda crosses a process boundary: lambdas are not "
                "picklable by reference; use a module-level function",
            )
            return self.violations
        worker = self._resolve_worker(payload)
        if worker is None:
            return self.violations
        self._check_worker_params(worker)
        self._check_worker_globals(worker)
        return self.violations

    def _resolve_worker(self, payload: ast.expr) -> FunctionInfo | None:
        dotted = annotation_to_dotted(payload)
        if dotted is None:
            return None
        # A bare name at a fan-out site inside ``fan`` resolves first in
        # the enclosing function's scope: ``fan.<name>`` defined as a
        # nested def is unpicklable by reference.  Nested functions are
        # not in the symbol table, so look for them syntactically.
        if "." not in dotted:
            for node in ast.walk(self.site.fn.node):
                if (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node is not self.site.fn.node
                    and node.name == dotted
                ):
                    self._flag(
                        payload,
                        f"nested function "
                        f"{self.site.fn.qualname}.{dotted} crosses a "
                        "process boundary: inner functions are not "
                        "picklable by reference",
                    )
                    return None
        resolved = self.symbols.canonicalize(
            self.symbols.resolve(self.site.fn.module, dotted)
        )
        worker = self.symbols.functions.get(resolved)
        if worker is None:
            # ``self._worker`` / ``obj.method``: a bound method drags its
            # receiver through pickle.  Only flag when the head is a
            # known object, not an unresolved module path.
            head = dotted.split(".", 1)[0]
            if "." in dotted and head in ("self", "cls"):
                self._flag(
                    payload,
                    f"bound method {dotted} crosses a process boundary: "
                    "pickling it ships the whole receiver; use a "
                    "module-level function",
                )
            return None
        return worker

    # -- pickle-reachability over parameter annotations --------------------

    def _check_worker_params(self, worker: FunctionInfo) -> None:
        args = worker.node.args
        for a in args.posonlyargs + args.args + args.kwonlyargs:
            if a.annotation is None or a.arg in ("self", "cls"):
                continue
            for dotted in _annotation_dotted_names(a.annotation):
                resolved = self.symbols.canonicalize(
                    self.symbols.resolve(worker.module, dotted)
                )
                reason = HAZARD_TYPES.get(resolved)
                if reason is not None:
                    self._flag(
                        self.site.payload,
                        f"worker {worker.qualname} parameter {a.arg!r} is "
                        f"{resolved}, which must not cross a process "
                        f"boundary ({reason})",
                    )
                    continue
                self._check_class_reachability(worker, a.arg, resolved)

    def _check_class_reachability(
        self, worker: FunctionInfo, param: str, root: str
    ) -> None:
        """BFS the attribute graph of a payload class for hazard types."""
        start = self.symbols.classes.get(root)
        if start is None:
            return
        parents: dict[str, tuple[str, str] | None] = {root: None}
        queue: deque[str] = deque([root])
        while queue:
            qualname = queue.popleft()
            info: ClassInfo | None = self.symbols.classes.get(qualname)
            if info is None:
                continue
            for attr in sorted(info.attr_types):
                attr_type = info.attr_types[attr]
                self._visit_attr_type(
                    worker, param, parents, queue, qualname, attr, attr_type
                )
            for attr in sorted(info.attr_annotations):
                if attr in info.attr_types:
                    continue
                for dotted in _annotation_dotted_names(
                    info.attr_annotations[attr]
                ):
                    resolved = self.symbols.canonicalize(
                        self.symbols.resolve(info.module, dotted)
                    )
                    self._visit_attr_type(
                        worker, param, parents, queue, qualname, attr, resolved
                    )

    def _visit_attr_type(
        self,
        worker: FunctionInfo,
        param: str,
        parents: dict[str, tuple[str, str] | None],
        queue: deque[str],
        owner: str,
        attr: str,
        attr_type: str,
    ) -> None:
        reason = HAZARD_TYPES.get(attr_type)
        if reason is not None:
            chain = self._attr_chain(parents, owner) + [attr]
            self._flag(
                self.site.payload,
                f"worker {worker.qualname} payload {param!r} reaches "
                f"{attr_type} via .{'.'.join(chain)} ({reason})",
            )
            return
        if attr_type in self.symbols.classes and attr_type not in parents:
            parents[attr_type] = (owner, attr)
            queue.append(attr_type)

    def _attr_chain(
        self, parents: dict[str, tuple[str, str] | None], qualname: str
    ) -> list[str]:
        chain: list[str] = []
        current: str | None = qualname
        while current is not None:
            step = parents.get(current)
            if step is None:
                break
            owner, attr = step
            chain.append(attr)
            current = owner
        chain.reverse()
        return chain

    # -- module-global mutation inside the worker --------------------------

    def _check_worker_globals(self, worker: FunctionInfo) -> None:
        module_names = self.symbols.module_globals.get(worker.module, set())
        # A plain rebinding inside the worker makes the name local for
        # the whole function (unless declared ``global``), so writes
        # through it touch worker-private state, which is fine.
        shadowed = _local_bindings(worker.node)
        declared_global: set[str] = set()
        for node in ast.walk(worker.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        module_names = (module_names - shadowed) | (
            module_names & declared_global
        )
        for node in ast.walk(worker.node):
            if isinstance(node, ast.Global):
                self._flag(
                    self.site.payload,
                    f"worker {worker.qualname} rebinds module global(s) "
                    f"{', '.join(sorted(node.names))}: under spawn each "
                    "process mutates its own copy; return results instead",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    base = self._store_base(target)
                    if base is not None and base in module_names:
                        self._flag(
                            self.site.payload,
                            f"worker {worker.qualname} writes module "
                            f"global {base!r}: the parent process never "
                            "sees the write; return results instead",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATOR_METHODS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in module_names
                ):
                    self._flag(
                        self.site.payload,
                        f"worker {worker.qualname} mutates module global "
                        f"{func.value.id!r} via .{func.attr}(): the "
                        "parent process never sees the write",
                    )

    def _store_base(self, target: ast.expr) -> str | None:
        """Module-global name a subscript/attribute store lands on."""
        current: ast.expr = target
        while isinstance(current, (ast.Subscript, ast.Attribute)):
            current = current.value
        if isinstance(current, ast.Name) and not isinstance(
            current.ctx, ast.Load
        ):
            return None  # plain rebinding makes a local, not a global
        return current.id if isinstance(current, ast.Name) else None


def check_parallel_safety(symbols: SymbolTable) -> list[Violation]:
    """Check every multiprocessing fan-out site in the project."""
    violations: list[Violation] = []
    for qualname in sorted(symbols.functions):
        fn = symbols.functions[qualname]
        for site in _find_boundary_sites(fn):
            violations.extend(_SiteChecker(symbols, site).check())
    violations.sort()
    return violations

"""RA017 — dead-knob / config-reachability analysis.

The scenario schema (``repro.scenario.schema``) declares every tunable
as a literal ``Knob(...)`` entry.  This pass proves the declaration and
the implementation agree, in both directions:

* **schema <-> Scenario coherence** — every knob names a ``Scenario``
  dataclass field and vice versa (``events`` is the one structured
  non-knob field);
* **dead knob** — every knob is *consumed*: some function reachable
  from the scenario-run roots reads it as an attribute of a
  ``Scenario``-typed receiver.  A knob nobody reads is config the
  simulator silently ignores — the exact failure mode that invalidates
  scenario sweeps without failing a test;
* **unaddressable pin** — conversely, every literal keyword the
  scenario layer passes into the simulation packages must be
  schema-addressable: either some knob ``binds`` that parameter, or
  the pin is blessed in the schema's ``PINNED`` frozenset.

This module also hosts the shared *static* schema extraction
(:func:`collect_knobs` & friends) used by RA018/RA019/RA020 — the
schema is read from the AST, never imported, so the passes work on
fixture projects exactly like the real tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.callgraph import CallGraph
from repro.analysis.symbols import FunctionInfo, SymbolTable, annotation_to_dotted
from repro.lint.engine import Violation

__all__ = [
    "SCHEMA_MODULE",
    "SCENARIO_CLASS",
    "SCENARIO_PACKAGE",
    "SCENARIO_ROOTS",
    "SIM_PACKAGE_PREFIXES",
    "NON_KNOB_FIELDS",
    "KnobDecl",
    "collect_knobs",
    "collect_pinned",
    "scenario_field_lines",
    "reachable_functions",
    "binds_tail",
    "check_knobs",
]

#: Where the schema lives (module path, class, package, run roots).
SCHEMA_MODULE = "repro.scenario.schema"
SCENARIO_CLASS = "repro.scenario.schema.Scenario"
SCENARIO_PACKAGE = "repro.scenario"
SCENARIO_ROOTS: tuple[str, ...] = (
    "repro.scenario.runner.run_scenario",
    "repro.scenario.loader.materialize",
    "repro.scenario.cli.run_from_args",
)

#: Calls from scenario code into these packages are the simulator
#: boundary the unaddressable-pin check patrols.
SIM_PACKAGE_PREFIXES: tuple[str, ...] = (
    "repro.core",
    "repro.datacenter",
    "repro.emulator",
    "repro.experiments",
    "repro.predictors",
    "repro.traces",
)

#: Scenario fields that are structured sections, not scalar knobs.
NON_KNOB_FIELDS = frozenset({"events"})


@dataclass(frozen=True)
class KnobDecl:
    """One ``Knob(...)`` entry, extracted statically from the schema AST.

    Attribute names match :class:`repro.scenario.schema.Knob` so the
    runtime value oracle (``validate_value``) accepts either form.
    """

    name: str
    path: str
    kind: str
    default: object
    unit: str | None
    dim: str | None
    lo: float | None
    hi: float | None
    choices: tuple[str, ...] | None
    binds: str | None
    override: bool
    divisor: bool
    group: str | None
    required: bool
    src_path: str
    line: int


def _literal(node: ast.expr) -> tuple[bool, object]:
    """Evaluate a literal AST node; ``(False, None)`` when not literal."""
    try:
        return True, ast.literal_eval(node)
    except (ValueError, SyntaxError):
        return False, None


def _schema_tree(symbols: SymbolTable) -> tuple[str, ast.Module] | None:
    module = symbols.project.modules.get(SCHEMA_MODULE)
    if module is None:
        return None
    return module.path, module.tree


def _assigned_value(tree: ast.Module, name: str) -> ast.expr | None:
    """The top-level value bound to ``name`` (Assign or AnnAssign)."""
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == name:
                return stmt.value
    return None


def collect_knobs(symbols: SymbolTable) -> list[KnobDecl]:
    """Statically extract ``SCENARIO_KNOBS`` from the schema module.

    Returns ``[]`` when the project has no schema module (all four
    config-flow passes then stay silent by design).  Non-literal knob
    entries are skipped here and flagged by :func:`check_knobs`.
    """
    located = _schema_tree(symbols)
    if located is None:
        return []
    src_path, tree = located
    value = _assigned_value(tree, "SCENARIO_KNOBS")
    if not isinstance(value, ast.Tuple):
        return []
    declarations: list[KnobDecl] = []
    for element in value.elts:
        declaration = _knob_from_call(element, src_path)
        if declaration is not None:
            declarations.append(declaration)
    return declarations


def _knob_from_call(node: ast.expr, src_path: str) -> KnobDecl | None:
    if not isinstance(node, ast.Call):
        return None
    func = annotation_to_dotted(node.func)
    if func is None or func.rsplit(".", 1)[-1] != "Knob":
        return None
    fields: dict[str, object] = {}
    for keyword in node.keywords:
        if keyword.arg is None:
            continue
        ok, value = _literal(keyword.value)
        if ok:
            fields[keyword.arg] = value
    name = fields.get("name")
    path = fields.get("path")
    kind = fields.get("kind")
    if (
        not isinstance(name, str)
        or not isinstance(path, str)
        or not isinstance(kind, str)
    ):
        return None
    choices = fields.get("choices")
    return KnobDecl(
        name=name,
        path=path,
        kind=kind,
        default=fields.get("default"),
        unit=_opt_str(fields.get("unit")),
        dim=_opt_str(fields.get("dim")),
        lo=_opt_float(fields.get("lo")),
        hi=_opt_float(fields.get("hi")),
        choices=tuple(map(str, choices)) if isinstance(choices, tuple) else None,
        binds=_opt_str(fields.get("binds")),
        override=bool(fields.get("override", False)),
        divisor=bool(fields.get("divisor", False)),
        group=_opt_str(fields.get("group")),
        required=bool(fields.get("required", False)),
        src_path=src_path,
        line=node.lineno,
    )


def _opt_str(value: object) -> str | None:
    return value if isinstance(value, str) else None


def _opt_float(value: object) -> float | None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def collect_pinned(symbols: SymbolTable) -> frozenset[str]:
    """The schema's ``PINNED`` allowlist (``Callee.param`` tails)."""
    located = _schema_tree(symbols)
    if located is None:
        return frozenset()
    value = _assigned_value(located[1], "PINNED")
    if isinstance(value, ast.Call) and value.args:
        value = value.args[0]
    if value is None:
        return frozenset()
    ok, literal = _literal(value)
    if not ok or not isinstance(literal, (set, frozenset, tuple, list)):
        return frozenset()
    return frozenset(str(entry) for entry in literal)


def scenario_field_lines(symbols: SymbolTable) -> dict[str, int]:
    """``{field: line}`` of the ``Scenario`` dataclass, or ``{}``."""
    info = symbols.classes.get(SCENARIO_CLASS)
    if info is None:
        return {}
    fields: dict[str, int] = {}
    for stmt in info.node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            fields[stmt.target.id] = stmt.lineno
    return fields


def binds_tail(binds: str) -> str:
    """``Callee.param`` form of a binds target (its last two parts)."""
    parts = binds.rsplit(".", 2)
    return ".".join(parts[-2:])


def reachable_functions(
    symbols: SymbolTable, graph: CallGraph, roots: tuple[str, ...]
) -> set[str]:
    """Qualnames reachable from ``roots`` over the call graph (BFS)."""
    queue = [root for root in roots if root in symbols.functions]
    seen = set(queue)
    while queue:
        current = queue.pop()
        for site in graph.callees(current):
            if site.callee in symbols.functions and site.callee not in seen:
                seen.add(site.callee)
                queue.append(site.callee)
    return seen


def _scenario_typed_names(symbols: SymbolTable, fn: FunctionInfo) -> set[str]:
    """Names in ``fn`` that hold a ``Scenario`` value.

    A name qualifies via an explicit annotation (parameter or
    ``AnnAssign``), or via assignment from a ``.scenario`` attribute
    read (the wrapper-field convention) or from a call to a project
    function whose return annotation resolves to ``Scenario``."""
    names: set[str] = set()
    args = fn.node.args
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        if _is_scenario_type(symbols, fn.module, arg.annotation):
            names.add(arg.arg)
    for stmt in ast.walk(fn.node):
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(stmt, ast.AnnAssign):
            if _is_scenario_type(symbols, fn.module, stmt.annotation):
                target = stmt.target
                value = None
                if isinstance(target, ast.Name):
                    names.add(target.id)
            continue
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.NamedExpr):
            target, value = stmt.target, stmt.value
        if not isinstance(target, ast.Name) or value is None:
            continue
        if isinstance(value, ast.Attribute) and value.attr == "scenario":
            names.add(target.id)
        elif isinstance(value, ast.Call) and _returns_scenario(
            symbols, fn.module, value
        ):
            names.add(target.id)
    return names


def _returns_scenario(
    symbols: SymbolTable, module: str, call: ast.Call
) -> bool:
    """Does ``call`` target a function annotated ``-> Scenario``?"""
    dotted = annotation_to_dotted(call.func)
    if dotted is None:
        return False
    resolved = symbols.canonicalize(symbols.resolve(module, dotted))
    target = symbols.functions.get(resolved)
    if target is None:
        return False
    return _is_scenario_type(symbols, target.module, target.node.returns)


def _is_scenario_type(
    symbols: SymbolTable, module: str, annotation: ast.expr | None
) -> bool:
    dotted = annotation_to_dotted(annotation)
    if dotted is None:
        return False
    return symbols.canonicalize(symbols.resolve(module, dotted)) == SCENARIO_CLASS


def _consumed_knobs(
    symbols: SymbolTable,
    graph: CallGraph,
    roots: tuple[str, ...],
    knob_names: frozenset[str],
) -> tuple[set[str], set[str]]:
    """``(consumed knob names, reachable scenario functions)``."""
    reachable = reachable_functions(symbols, graph, roots)
    consumed: set[str] = set()
    for qualname in sorted(reachable):
        fn = symbols.functions[qualname]
        if not fn.module.startswith(SCENARIO_PACKAGE):
            continue
        typed = _scenario_typed_names(symbols, fn)
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Attribute) or node.attr not in knob_names:
                continue
            receiver = node.value
            if isinstance(receiver, ast.Name) and receiver.id in typed:
                consumed.add(node.attr)
            elif isinstance(receiver, ast.Attribute) and receiver.attr == "scenario":
                # ``lowered.scenario.<knob>`` — the conventional
                # wrapper-field name counts as a Scenario receiver.
                consumed.add(node.attr)
    return consumed, reachable


def _check_pins(
    symbols: SymbolTable,
    reachable: set[str],
    addressable: frozenset[str],
) -> list[Violation]:
    """Flag literal keyword pins into the sim packages that no knob
    binds and ``PINNED`` does not bless."""
    findings: list[Violation] = []
    for qualname in sorted(reachable):
        fn = symbols.functions[qualname]
        if not fn.module.startswith(SCENARIO_PACKAGE):
            continue
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            callee = _sim_callee(symbols, fn.module, node)
            if callee is None:
                continue
            for keyword in node.keywords:
                if keyword.arg is None:
                    continue
                value = keyword.value
                if not isinstance(value, ast.Constant):
                    continue
                if value.value is None or isinstance(value.value, bool):
                    continue
                tail = f"{callee.rsplit('.', 1)[-1]}.{keyword.arg}"
                if tail in addressable:
                    continue
                findings.append(
                    Violation(
                        path=fn.path,
                        line=value.lineno,
                        col=value.col_offset,
                        rule_id="RA017",
                        message=(
                            f"literal {value.value!r} pinned for "
                            f"{tail} is not schema-addressable: no knob "
                            f"binds it and it is not in PINNED"
                        ),
                    )
                )
    return findings


def _sim_callee(
    symbols: SymbolTable, module: str, call: ast.Call
) -> str | None:
    """Canonical callee qualname when it targets a sim package."""
    dotted = annotation_to_dotted(call.func)
    if dotted is None:
        return None
    resolved = symbols.canonicalize(symbols.resolve(module, dotted))
    info = symbols.functions.get(resolved) or symbols.classes.get(resolved)
    if info is None:
        return None
    if info.module.startswith(SCENARIO_PACKAGE):
        return None
    if not info.module.startswith(SIM_PACKAGE_PREFIXES):
        return None
    return resolved


def check_knobs(
    symbols: SymbolTable,
    graph: CallGraph,
    *,
    roots: tuple[str, ...] = SCENARIO_ROOTS,
) -> list[Violation]:
    """Run the RA017 checks; empty when no scenario schema exists."""
    knobs = collect_knobs(symbols)
    if not knobs:
        return []
    findings: list[Violation] = []
    fields = scenario_field_lines(symbols)
    knob_names = frozenset(declaration.name for declaration in knobs)

    located = _schema_tree(symbols)
    assert located is not None  # collect_knobs already found it
    schema_path = located[0]

    for declaration in knobs:
        if fields and declaration.name not in fields:
            findings.append(
                Violation(
                    path=declaration.src_path,
                    line=declaration.line,
                    col=0,
                    rule_id="RA017",
                    message=(
                        f"knob '{declaration.name}' has no matching "
                        f"Scenario field"
                    ),
                )
            )
    for field_name, line in sorted(fields.items()):
        if field_name not in knob_names and field_name not in NON_KNOB_FIELDS:
            findings.append(
                Violation(
                    path=schema_path,
                    line=line,
                    col=0,
                    rule_id="RA017",
                    message=(
                        f"Scenario field '{field_name}' has no knob "
                        f"declaration (undocumented, unlintable tunable)"
                    ),
                )
            )

    consumed, reachable = _consumed_knobs(symbols, graph, roots, knob_names)
    for declaration in knobs:
        if declaration.name not in consumed:
            findings.append(
                Violation(
                    path=declaration.src_path,
                    line=declaration.line,
                    col=0,
                    rule_id="RA017",
                    message=(
                        f"dead knob '{declaration.name}': no function "
                        f"reachable from the scenario roots reads "
                        f"scenario.{declaration.name}"
                    ),
                )
            )

    addressable = frozenset(
        binds_tail(declaration.binds)
        for declaration in knobs
        if declaration.binds is not None
    ) | collect_pinned(symbols)
    findings.extend(_check_pins(symbols, reachable, addressable))
    return findings

"""RA002 — dimensional analysis over the resource ``NewType`` lattice.

``datacenter/resources.py`` defines ``Cpu``, ``Mem``, ``NetIn`` and
``NetOut`` (plus ``Km`` for geography) as ``NewType`` wrappers over
``float``.  mypy enforces them at call boundaries where it can; this
pass closes the gaps mypy leaves in a numpy-heavy codebase by walking
every function and statically rejecting

* cross-dimension addition/subtraction (``cpu + mem``),
* cross-dimension comparison (``cpu < net_in``),
* passing a value of one dimension to a parameter annotated with
  another (including ``Cpu(mem_value)`` re-tagging), and
* returning a value whose dimension contradicts the declared return.

Multiplication and division are deliberately unchecked: products and
ratios are *derived* quantities (utilization, machine counts, bulk
round-ups), and the ``NewType`` pattern erases to ``float`` under
arithmetic anyway.  Unknown dimensions never flag — the pass is tuned
to report only provable mixes.
"""

from __future__ import annotations

import ast

from repro.analysis.symbols import FunctionInfo, SymbolTable, annotation_to_dotted
from repro.lint.engine import Violation

__all__ = ["DIMENSIONS", "check_dimensions"]

RULE_ID = "RA002"

#: Recognized dimension type names (the final component of the resolved
#: annotation).  Matching on the final component keeps the pass honest
#: under aliasing and re-export while staying fixture-friendly.
DIMENSIONS = frozenset({"Cpu", "Mem", "NetIn", "NetOut", "Km"})

_COMPARISONS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


def _dim_of_dotted(dotted: str | None) -> str | None:
    if dotted is None:
        return None
    tail = dotted.rsplit(".", 1)[-1]
    return tail if tail in DIMENSIONS else None


def _annotation_dim_in(
    symbols: SymbolTable, module: str, annotation: ast.expr | None
) -> str | None:
    dotted = annotation_to_dotted(annotation)
    if dotted is None:
        return None
    return _dim_of_dotted(symbols.canonicalize(symbols.resolve(module, dotted)))


class _FunctionDimChecker:
    """Checks one function body against the dimension lattice."""

    def __init__(self, symbols: SymbolTable, fn: FunctionInfo) -> None:
        self.symbols = symbols
        self.fn = fn
        self.module = fn.module
        self.env: dict[str, str] = {}
        self.receiver_classes: dict[str, str] = {}
        self._build_env()

    # -- environment -------------------------------------------------------

    def _resolve(self, dotted: str | None) -> str | None:
        if dotted is None:
            return None
        return self.symbols.canonicalize(self.symbols.resolve(self.module, dotted))

    def _annotation_dim(self, annotation: ast.expr | None) -> str | None:
        return _dim_of_dotted(self._resolve(annotation_to_dotted(annotation)))

    def _annotation_class(self, annotation: ast.expr | None) -> str | None:
        resolved = self._resolve(annotation_to_dotted(annotation))
        return resolved if resolved in self.symbols.classes else None

    def _build_env(self) -> None:
        args = self.fn.node.args
        for a in args.posonlyargs + args.args + args.kwonlyargs:
            dim = self._annotation_dim(a.annotation)
            if dim is not None:
                self.env[a.arg] = dim
            cls = self._annotation_class(a.annotation)
            if cls is not None:
                self.receiver_classes[a.arg] = cls
        if self.fn.cls is not None:
            self.receiver_classes["self"] = self.fn.cls
        for stmt in ast.walk(self.fn.node):
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                dim = self._annotation_dim(stmt.annotation)
                if dim is not None:
                    self.env[stmt.target.id] = dim
                cls = self._annotation_class(stmt.annotation)
                if cls is not None:
                    self.receiver_classes[stmt.target.id] = cls
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
                if isinstance(target, ast.Name) and isinstance(value, ast.Call):
                    dim = self._call_dim(value)
                    if dim is not None:
                        self.env[target.id] = dim
                    resolved = self._resolve(annotation_to_dotted(value.func))
                    if resolved in self.symbols.classes:
                        self.receiver_classes[target.id] = resolved

    # -- expression dimensions ---------------------------------------------

    def _call_dim(self, node: ast.Call) -> str | None:
        dotted = annotation_to_dotted(node.func)
        if dotted is None:
            return None
        ctor_dim = _dim_of_dotted(self._resolve(dotted))
        if ctor_dim is not None:
            return ctor_dim
        resolved = self._resolve(dotted)
        fn = self.symbols.functions.get(resolved) if resolved else None
        if fn is None and resolved in self.symbols.classes:
            return None
        if fn is None and isinstance(node.func, ast.Attribute):
            receiver = self._receiver_class(node.func.value)
            if receiver is not None:
                fn = self.symbols.lookup_method(receiver, node.func.attr)
        if fn is not None:
            return self._annotation_dim(fn.node.returns)
        return None

    def _receiver_class(self, expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Name):
            return self.receiver_classes.get(expr.id)
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id in self.receiver_classes
        ):
            owner = self.symbols.classes.get(self.receiver_classes[expr.value.id])
            if owner is not None:
                attr_type = owner.attr_types.get(expr.attr)
                if attr_type in self.symbols.classes:
                    return attr_type
        return None

    def dim_of(self, expr: ast.expr) -> str | None:
        """Dimension of an expression, or None when unknown."""
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            receiver = self._receiver_class(expr.value)
            if receiver is not None:
                owner = self.symbols.classes.get(receiver)
                if owner is not None:
                    return _dim_of_dotted(owner.attr_types.get(expr.attr))
            return None
        if isinstance(expr, ast.Call):
            return self._call_dim(expr)
        if isinstance(expr, ast.UnaryOp):
            return self.dim_of(expr.operand)
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, (ast.Add, ast.Sub)):
            left, right = self.dim_of(expr.left), self.dim_of(expr.right)
            return left if left == right else None
        if isinstance(expr, ast.IfExp):
            body, orelse = self.dim_of(expr.body), self.dim_of(expr.orelse)
            return body if body == orelse else None
        return None

    # -- checks ------------------------------------------------------------

    def _violation(self, node: ast.AST, message: str) -> Violation:
        return Violation(
            path=self.fn.path,
            line=getattr(node, "lineno", self.fn.lineno),
            col=getattr(node, "col_offset", 0),
            rule_id=RULE_ID,
            message=f"{message} (in {self.fn.qualname})",
        )

    def _param_dims(
        self, fn: FunctionInfo
    ) -> tuple[list[tuple[str, str | None]], dict[str, str]]:
        """(positional (name, dim) list, name -> dim map) for ``fn``."""
        args = fn.node.args
        positional = [
            (a.arg, _annotation_dim_in(self.symbols, fn.module, a.annotation))
            for a in args.posonlyargs + args.args
        ]
        by_name = {
            a.arg: dim
            for a in args.posonlyargs + args.args + args.kwonlyargs
            if (dim := _annotation_dim_in(self.symbols, fn.module, a.annotation))
            is not None
        }
        return positional, by_name

    def _check_call_args(self, node: ast.Call, out: list[Violation]) -> None:
        dotted = annotation_to_dotted(node.func)
        if dotted is None:
            return
        resolved = self._resolve(dotted)
        ctor_dim = _dim_of_dotted(resolved)
        if ctor_dim is not None:
            # Dimension constructor: Cpu(x) retags x — reject when x
            # provably carries a *different* dimension already.
            if len(node.args) == 1:
                arg_dim = self.dim_of(node.args[0])
                if arg_dim is not None and arg_dim != ctor_dim:
                    out.append(
                        self._violation(
                            node,
                            f"re-tagging {arg_dim} value as {ctor_dim}",
                        )
                    )
            return
        fn = self.symbols.functions.get(resolved) if resolved else None
        # offset 1 skips the implicit ``self`` slot on bound calls;
        # ``Class.method(inst, ...)`` unbound style resolves to a
        # FunctionInfo directly and keeps offset 0 (self is explicit).
        offset = 0
        if fn is None and resolved in self.symbols.classes:
            fn = self.symbols.lookup_method(resolved, "__init__")
            offset = 1
        elif fn is None and isinstance(node.func, ast.Attribute):
            receiver = self._receiver_class(node.func.value)
            if receiver is not None:
                fn = self.symbols.lookup_method(receiver, node.func.attr)
                offset = 1
        if fn is None:
            return
        positional, by_name = self._param_dims(fn)
        for index, arg in enumerate(node.args):
            slot = index + offset
            if slot >= len(positional):
                break
            param, expected = positional[slot]
            actual = self.dim_of(arg)
            if expected is not None and actual is not None and actual != expected:
                out.append(
                    self._violation(
                        arg,
                        f"passing {actual} value to {expected} parameter "
                        f"{param!r} of {fn.qualname}",
                    )
                )
        for kw in node.keywords:
            if kw.arg is None:
                continue
            expected = by_name.get(kw.arg)
            actual = self.dim_of(kw.value)
            if expected is not None and actual is not None and actual != expected:
                out.append(
                    self._violation(
                        kw.value,
                        f"passing {actual} value to {expected} parameter "
                        f"{kw.arg!r} of {fn.qualname}",
                    )
                )

    def check(self) -> list[Violation]:
        out: list[Violation] = []
        declared_return = self._annotation_dim(self.fn.node.returns)
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                left, right = self.dim_of(node.left), self.dim_of(node.right)
                if left is not None and right is not None and left != right:
                    op = "+" if isinstance(node.op, ast.Add) else "-"
                    out.append(
                        self._violation(
                            node, f"cross-dimension arithmetic: {left} {op} {right}"
                        )
                    )
            elif isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                for index, op in enumerate(node.ops):
                    if not isinstance(op, _COMPARISONS):
                        continue
                    left, right = (
                        self.dim_of(operands[index]),
                        self.dim_of(operands[index + 1]),
                    )
                    if left is not None and right is not None and left != right:
                        out.append(
                            self._violation(
                                node,
                                f"cross-dimension comparison: {left} vs {right}",
                            )
                        )
            elif isinstance(node, ast.Call):
                self._check_call_args(node, out)
            elif isinstance(node, ast.Return) and node.value is not None:
                if declared_return is not None:
                    actual = self.dim_of(node.value)
                    if actual is not None and actual != declared_return:
                        out.append(
                            self._violation(
                                node,
                                f"returning {actual} value from function "
                                f"declared -> {declared_return}",
                            )
                        )
        return out


def check_dimensions(symbols: SymbolTable) -> list[Violation]:
    """Run the dimension checks over every function in the project."""
    violations: list[Violation] = []
    for qualname in sorted(symbols.functions):
        fn = symbols.functions[qualname]
        violations.extend(_FunctionDimChecker(symbols, fn).check())
    violations.sort()
    return violations

"""RA007 — exception-flow: the step loop must not die by accident.

A mid-simulation crash loses the whole run (Sec. IV's 2-minute step
cycle has no checkpointing), so exceptions reaching the step loop must
be *deliberate*: project-defined exception classes and fail-fast
``ValueError``/``RuntimeError`` raises are policy, while "accidental"
builtin types — the mapping/sequence/arithmetic errors Python raises
for plumbing bugs (``KeyError``, ``IndexError``, ``ZeroDivisionError``,
``StopIteration``, ...) — are exactly the signatures of a latent defect.

The pass computes, for every function reachable from the step-loop
roots (reusing :data:`repro.analysis.purity.DEFAULT_ROOTS` and the call
graph), the set of accidental exception types its explicit ``raise``
statements may let escape, then propagates each escape up the BFS call
chain, cancelling it at any call site wrapped in a ``try`` whose
handlers cover the type (builtin hierarchy included: ``except
LookupError`` covers ``KeyError``).  An escape that survives to a root
is reported at the raise site with the full call chain.

Two local checks ride along for step-reachable functions:

* ``except:`` / ``except Exception`` / ``except BaseException`` without
  a bare ``raise`` re-raise — an over-broad handler that would also
  swallow the observability layer's invariant-checker errors;
* a bare ``raise`` inside a handler re-raises the handler's caught
  accidental types, so those propagate like direct raises.

Implicit raises (an unguarded ``d[k]`` may raise ``KeyError``) are out
of scope by design: flagging every subscript would drown the signal.
Explicit raises are where the project states its failure policy, and
that policy is what this pass audits.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.callgraph import CallGraph
from repro.analysis.purity import (
    DEFAULT_BOUNDARY_PREFIXES,
    DEFAULT_ROOTS,
    _format_chain,
)
from repro.analysis.symbols import FunctionInfo, SymbolTable, annotation_to_dotted
from repro.lint.engine import Violation

__all__ = ["check_exceptions"]

RULE_ID = "RA007"

#: Accidental builtin exception types -> their builtin base classes
#: (up to, but excluding, ``Exception``).  Raising one of these on
#: purpose is how latent bugs look; they must not reach the step loop.
_BUILTIN_BASES: dict[str, tuple[str, ...]] = {
    "KeyError": ("LookupError",),
    "IndexError": ("LookupError",),
    "ZeroDivisionError": ("ArithmeticError",),
    "OverflowError": ("ArithmeticError",),
    "FloatingPointError": ("ArithmeticError",),
    "RecursionError": ("RuntimeError",),
    "UnboundLocalError": ("NameError",),
    "StopIteration": (),
    "StopAsyncIteration": (),
    "AttributeError": (),
    "NameError": (),
}

#: The accidental set itself.
ACCIDENTAL = frozenset(_BUILTIN_BASES)

_CATCH_ALL = frozenset({"Exception", "BaseException"})


def _covers(handler_names: frozenset[str], exc: str) -> bool:
    """Does a handler catching ``handler_names`` catch ``exc``?"""
    if handler_names & _CATCH_ALL:
        return True
    if exc in handler_names:
        return True
    return any(base in handler_names for base in _BUILTIN_BASES.get(exc, ()))


@dataclass(frozen=True)
class _Escape:
    """One accidental raise that escapes its own function."""

    exc: str
    line: int
    col: int
    rethrow: bool  # came from a bare ``raise`` in a handler


@dataclass
class _Summary:
    """Exception behaviour of one function, seen from the outside."""

    escapes: list[_Escape] = field(default_factory=list)
    #: call line -> union of exception names guarded at that line.
    call_guards: dict[int, frozenset[str]] = field(default_factory=dict)
    #: (line, col) of over-broad handlers without a bare re-raise.
    broad_handlers: list[tuple[int, int]] = field(default_factory=list)


class _Scanner:
    """Builds the :class:`_Summary` of one function."""

    def __init__(self, symbols: SymbolTable, fn: FunctionInfo) -> None:
        self.symbols = symbols
        self.module = fn.module
        self.fn = fn
        self.summary = _Summary()

    def scan(self) -> _Summary:
        self._suite(self.fn.node.body, frozenset(), frozenset())
        return self.summary

    # -- name resolution ---------------------------------------------------

    def _resolve_tail(self, expr: ast.expr) -> str | None:
        """Final component of the canonical name, unless it is a
        project-defined class (deliberate policy — never accidental)."""
        dotted = annotation_to_dotted(expr)
        if dotted is None:
            return None
        resolved = self.symbols.canonicalize(self.symbols.resolve(self.module, dotted))
        if resolved in self.symbols.classes:
            return None
        return resolved.rsplit(".", 1)[-1]

    def _raised_accidental(self, exc: ast.expr) -> str | None:
        target = exc.func if isinstance(exc, ast.Call) else exc
        tail = self._resolve_tail(target)
        return tail if tail in ACCIDENTAL else None

    def _handler_names(self, type_expr: ast.expr | None) -> frozenset[str]:
        if type_expr is None:
            return frozenset({"BaseException"})
        exprs = type_expr.elts if isinstance(type_expr, ast.Tuple) else [type_expr]
        names: set[str] = set()
        for expr in exprs:
            tail = self._resolve_tail(expr)
            if tail is not None:
                names.add(tail)
        return frozenset(names)

    # -- traversal ---------------------------------------------------------

    def _suite(
        self,
        stmts: list[ast.stmt],
        guards: frozenset[str],
        handler_caught: frozenset[str],
    ) -> None:
        for stmt in stmts:
            self._stmt(stmt, guards, handler_caught)

    def _stmt(
        self,
        stmt: ast.stmt,
        guards: frozenset[str],
        handler_caught: frozenset[str],
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # runs later, analysed as its own symbol if indexed
        if isinstance(stmt, ast.Try):
            self._try(stmt, guards, handler_caught)
            return
        self._record_calls(stmt, guards)
        if isinstance(stmt, ast.Raise):
            self._raise(stmt, guards, handler_caught)
            return
        for name in ("body", "orelse", "finalbody"):
            suite = getattr(stmt, name, None)
            if isinstance(suite, list) and suite and isinstance(suite[0], ast.stmt):
                self._suite(suite, guards, handler_caught)
        if isinstance(stmt, ast.Match):
            for case in stmt.cases:
                self._suite(case.body, guards, handler_caught)

    def _try(
        self,
        stmt: ast.Try,
        guards: frozenset[str],
        handler_caught: frozenset[str],
    ) -> None:
        caught: frozenset[str] = frozenset()
        for handler in stmt.handlers:
            caught = caught | self._handler_names(handler.type)
        self._suite(stmt.body, guards | caught, handler_caught)
        for handler in stmt.handlers:
            names = self._handler_names(handler.type)
            if names & _CATCH_ALL and not _has_bare_reraise(handler):
                self.summary.broad_handlers.append(
                    (handler.lineno, handler.col_offset)
                )
            # Exceptions raised *inside* a handler are only guarded by
            # outer trys; a bare ``raise`` re-raises what was caught.
            self._suite(
                handler.body, guards, frozenset(n for n in names if n in ACCIDENTAL)
            )
        # orelse/finalbody run outside the handlers' protection.
        self._suite(stmt.orelse, guards, handler_caught)
        self._suite(stmt.finalbody, guards, handler_caught)

    def _raise(
        self,
        stmt: ast.Raise,
        guards: frozenset[str],
        handler_caught: frozenset[str],
    ) -> None:
        if stmt.exc is None:
            for exc in sorted(handler_caught):
                if not _covers(guards, exc):
                    self.summary.escapes.append(
                        _Escape(exc, stmt.lineno, stmt.col_offset, rethrow=True)
                    )
            return
        exc_name = self._raised_accidental(stmt.exc)
        if exc_name is not None and not _covers(guards, exc_name):
            self.summary.escapes.append(
                _Escape(exc_name, stmt.lineno, stmt.col_offset, rethrow=False)
            )

    def _record_calls(self, stmt: ast.stmt, guards: frozenset[str]) -> None:
        """Remember the guard set active at each call line in ``stmt``
        (header expressions only for compound statements)."""
        exprs = [
            node for node in ast.iter_child_nodes(stmt) if isinstance(node, ast.expr)
        ]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            exprs = [item.context_expr for item in stmt.items]
        stack: list[ast.AST] = list(exprs)
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Lambda):
                continue
            if isinstance(node, ast.Call):
                previous = self.summary.call_guards.get(node.lineno, frozenset())
                self.summary.call_guards[node.lineno] = previous | guards
            stack.extend(ast.iter_child_nodes(node))


def _has_bare_reraise(handler: ast.ExceptHandler) -> bool:
    return any(
        isinstance(node, ast.Raise) and node.exc is None
        for node in ast.walk(handler)
    )


def check_exceptions(
    symbols: SymbolTable,
    graph: CallGraph,
    *,
    roots: tuple[str, ...] = DEFAULT_ROOTS,
    boundary_prefixes: tuple[str, ...] = DEFAULT_BOUNDARY_PREFIXES,
) -> list[Violation]:
    """Flag accidental exceptions that can escape the step loop."""

    def in_boundary(module: str) -> bool:
        return any(
            module == p or module.startswith(p + ".") for p in boundary_prefixes
        )

    parents: dict[str, str | None] = {}
    edge_lines: dict[tuple[str, str], int] = {}
    queue: deque[str] = deque()
    for root in roots:
        if root in symbols.functions and root not in parents:
            parents[root] = None
            queue.append(root)

    order: list[str] = []
    while queue:
        qualname = queue.popleft()
        fn = symbols.functions[qualname]
        if in_boundary(fn.module):
            continue
        order.append(qualname)
        for site in graph.callees(qualname):
            if site.callee not in parents and site.callee in symbols.functions:
                parents[site.callee] = qualname
                edge_lines[(qualname, site.callee)] = site.line
                queue.append(site.callee)

    summaries: dict[str, _Summary] = {}

    def summary_of(qualname: str) -> _Summary:
        if qualname not in summaries:
            summaries[qualname] = _Scanner(
                symbols, symbols.functions[qualname]
            ).scan()
        return summaries[qualname]

    violations: list[Violation] = []
    for qualname in order:
        fn = symbols.functions[qualname]
        summary = summary_of(qualname)
        for line, col in summary.broad_handlers:
            violations.append(
                Violation(
                    path=fn.path,
                    line=line,
                    col=col,
                    rule_id=RULE_ID,
                    message=(
                        f"over-broad exception handler in step-reachable "
                        f"{qualname} may swallow invariant-checker errors "
                        "(catch specific types or re-raise)"
                    ),
                )
            )
        for escape in summary.escapes:
            if _chain_catches(
                qualname, escape.exc, parents, edge_lines, summary_of
            ):
                continue
            how = "re-raised" if escape.rethrow else "raised"
            violations.append(
                Violation(
                    path=fn.path,
                    line=escape.line,
                    col=escape.col,
                    rule_id=RULE_ID,
                    message=(
                        f"{escape.exc} {how} in {qualname} can escape the "
                        f"step loop uncaught "
                        f"[chain: {_format_chain(parents, qualname)}]"
                    ),
                )
            )
    violations.sort()
    return violations


def _chain_catches(
    qualname: str,
    exc: str,
    parents: dict[str, str | None],
    edge_lines: dict[tuple[str, str], int],
    summary_of: Callable[[str], _Summary],
) -> bool:
    """Walk the BFS discovery chain; is ``exc`` caught on the way up?"""
    node = qualname
    while True:
        parent = parents.get(node)
        if parent is None:
            return False
        line = edge_lines.get((parent, node))
        if line is not None:
            guards = summary_of(parent).call_guards.get(line, frozenset())
            if _covers(guards, exc):
                return True
        node = parent

"""RA013 — nothing blocking may run on the event loop.

The live service (``repro serve``) multiplexes every client connection,
the tick barrier, and the Prometheus listener on one asyncio event
loop.  A single blocking call anywhere in code the loop executes —
a sync ``time.sleep``, file or socket I/O, or one of the CPU-heavy
simulation entry points — stalls *every* connection for its duration,
which in a lockstep tick protocol means the whole ecosystem.

The pass walks the call graph breadth-first from every ``async def``
in the project (each one is loop-executed code, whether it is a
handler, a task body, or an awaited helper) and flags, with the full
call chain:

* **blocking calls** — sync sleeps and file/socket/process I/O
  (``time.sleep``, ``open``, ``subprocess.*``, ``socket.*``, ...)
  resolved through the module's imports exactly like RA001;
* **CPU-heavy simulation entry points** — the step-loop roots
  (:data:`DEFAULT_CPU_HEAVY`: ``TickStepper.step``,
  ``EcosystemSimulator.run``, ``ProvisioningService.advance_tick``,
  the emulator runs, ...) reached by a *direct* call edge.

Dispatching through an executor is free by construction: the call
graph only creates edges at ``ast.Call`` function positions, so
``asyncio.to_thread(service.advance_tick)`` passes the callable as a
value and creates no edge — the sanctioned pattern needs no pragma.
:data:`AWAITABLE_WRAPPERS` additionally allowlists dispatch helpers by
name so a project wrapper around ``run_in_executor`` stays quiet.

``print`` is deliberately *not* in the blocking set (console writes
are RA001's purity concern, and flagging every CLI banner would drown
the signal); the target class is calls that park the loop on a kernel
wait or a simulation tick.
"""

from __future__ import annotations

import ast
from collections import deque

from repro.analysis.callgraph import CallGraph
from repro.analysis.purity import DEFAULT_BOUNDARY_PREFIXES, _format_chain
from repro.analysis.symbols import SymbolTable
from repro.lint.engine import Violation
from repro.lint.rules import ImportMap

__all__ = ["AWAITABLE_WRAPPERS", "DEFAULT_CPU_HEAVY", "check_async_blocking"]

RULE_ID = "RA013"

#: Calls that block the calling thread regardless of arguments.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "open",
        "input",
        "breakpoint",
        "os.system",
        "os.popen",
        "os.wait",
        "os.waitpid",
        "select.select",
        "selectors.DefaultSelector",
        "socket.create_connection",
        "socket.getaddrinfo",
        "socket.gethostbyname",
        "socket.socket",
    }
)

#: Call prefixes that block (any function under these modules).
BLOCKING_PREFIXES = (
    "subprocess.",
    "urllib.",
    "requests.",
    "shutil.",
    "http.client.",
    "ftplib.",
    "smtplib.",
)

#: Async-safe dispatch helpers: calls to these hand work off the loop,
#: so they are never flagged even when a name-match would fire.
AWAITABLE_WRAPPERS = frozenset(
    {
        "asyncio.to_thread",
        "anyio.to_thread.run_sync",
        "trio.to_thread.run_sync",
    }
)

#: Simulation entry points whose single call is a full tick (or run) of
#: CPU work — milliseconds to minutes, never event-loop material.  A
#: direct call edge from async-reachable code is a finding; passing the
#: callable to ``asyncio.to_thread`` creates no edge and is the fix.
DEFAULT_CPU_HEAVY: tuple[str, ...] = (
    "repro.core.ecosystem.EcosystemSimulator.run",
    "repro.core.stepper.TickStepper.prepare",
    "repro.core.stepper.TickStepper.install_static",
    "repro.core.stepper.TickStepper.step",
    "repro.core.stepper.TickStepper.finish",
    "repro.core.matching.match_request",
    "repro.emulator.emulator.GameEmulator.run",
    "repro.emulator.interactions.emulate_with_interactions",
    "repro.service.server.ProvisioningService.advance_tick",
    "repro.service.server.ProvisioningService.finish",
)


def _blocking_calls(
    fn_node: ast.FunctionDef | ast.AsyncFunctionDef, imports: ImportMap
) -> list[tuple[ast.Call, str]]:
    """``(node, canonical_name)`` for each blocking call in the body."""
    found: list[tuple[ast.Call, str]] = []
    for node in ast.walk(fn_node):
        if not isinstance(node, ast.Call):
            continue
        name = imports.canonical(node.func)
        if name is None or name in AWAITABLE_WRAPPERS:
            continue
        if name in BLOCKING_CALLS or name.startswith(BLOCKING_PREFIXES):
            found.append((node, name))
    return found


def check_async_blocking(
    symbols: SymbolTable,
    graph: CallGraph,
    *,
    boundary_prefixes: tuple[str, ...] = DEFAULT_BOUNDARY_PREFIXES,
    cpu_heavy: tuple[str, ...] = DEFAULT_CPU_HEAVY,
) -> list[Violation]:
    """Prove the async-reachable closure free of blocking calls."""
    heavy = frozenset(cpu_heavy)
    import_maps: dict[str, ImportMap] = {}

    def imports_for(module: str) -> ImportMap:
        if module not in import_maps:
            tree = symbols.project.modules[module].tree
            import_maps[module] = ImportMap.from_tree(tree)
        return import_maps[module]

    def in_boundary(module: str) -> bool:
        return any(
            module == p or module.startswith(p + ".") for p in boundary_prefixes
        )

    parents: dict[str, str | None] = {}
    queue: deque[str] = deque()
    for qualname in sorted(symbols.functions):
        fn = symbols.functions[qualname]
        if isinstance(fn.node, ast.AsyncFunctionDef) and not in_boundary(fn.module):
            parents[qualname] = None
            queue.append(qualname)

    violations: list[Violation] = []
    flagged_edges: set[tuple[str, str, int]] = set()
    while queue:
        qualname = queue.popleft()
        fn = symbols.functions[qualname]
        if in_boundary(fn.module):
            continue  # sanctioned boundary: do not inspect or traverse
        for node, name in _blocking_calls(fn.node, imports_for(fn.module)):
            violations.append(
                Violation(
                    path=fn.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule_id=RULE_ID,
                    message=(
                        f"blocking call {name}() runs on the event loop in "
                        f"async-reachable {qualname} "
                        f"[chain: {_format_chain(parents, qualname)}]; await "
                        "an async API or dispatch via asyncio.to_thread"
                    ),
                )
            )
        for site in graph.callees(qualname):
            if site.callee in heavy:
                edge = (qualname, site.callee, site.line)
                if edge not in flagged_edges:
                    flagged_edges.add(edge)
                    violations.append(
                        Violation(
                            path=site.path,
                            line=site.line,
                            col=0,
                            rule_id=RULE_ID,
                            message=(
                                f"CPU-heavy simulation entry point "
                                f"{site.callee} called on the event loop "
                                f"[chain: {_format_chain(parents, qualname)}]; "
                                "dispatch via asyncio.to_thread or an executor"
                            ),
                        )
                    )
                continue  # one finding per edge; do not walk its interior
            if site.callee not in parents and site.callee in symbols.functions:
                parents[site.callee] = qualname
                queue.append(site.callee)
    violations.sort()
    return violations

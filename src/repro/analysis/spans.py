"""RA021 — instrumentation coverage: phase roots must open spans.

The tracing layer (:mod:`repro.obs.trace`) only explains a run when the
span tree actually covers the work.  This pass proves three properties
over the whole-program call graph:

* **coverage** — every function reachable from the span roots (the
  step-loop/purity roots plus the service tick loop, the scenario
  runner, and the predictor-evaluation entry points) that *charges a
  phase* (``timer.lap(...)`` / ``timer.phase(...)``) must also *open a
  span* (``recorder.begin(...)`` or ``with span(...)``), so ``repro
  trace diff`` can attribute every phase's wall time to a span path;
* **no orphans** — a function outside the sanctioned observability
  boundary that opens spans but is not reachable from any span root
  would record spans that never parent under a phase root; flag it so
  the root list and the instrumentation cannot drift apart silently;
* **no spans across await** — a ``with span(...)`` block containing an
  ``await`` would charge suspended time to the span and, worse, end it
  on a different task step than it began; the sanctioned pattern for a
  deliberate cross-await span is manual ``begin``/``end`` on handles
  (see ``TickServer._tick_loop``), which this pass leaves alone.

Traversal stops at the RA001 observability boundary
(``repro.obs``/``repro.perf``): the recorder, the trace CLI, and the
bench harness legitimately open spans on their own authority.
"""

from __future__ import annotations

import ast
from collections import deque

from repro.analysis.callgraph import CallGraph
from repro.analysis.purity import DEFAULT_BOUNDARY_PREFIXES, DEFAULT_ROOTS
from repro.analysis.symbols import FunctionInfo, SymbolTable
from repro.lint.engine import Violation
from repro.lint.rules import ImportMap

__all__ = ["SPAN_ROOTS", "check_spans"]

RULE_ID = "RA021"

#: Everything the step-loop purity roots cover, plus the surfaces the
#: tracing tentpole instruments directly: the live service's tick loop
#: and client dispatch (manual handle spans), the scenario runner, the
#: predictor-evaluation entry points (``predict.*`` spans), and the
#: stepper's prepare/install phases.
SPAN_ROOTS: tuple[str, ...] = DEFAULT_ROOTS + (
    "repro.core.stepper.TickStepper.prepare",
    "repro.core.stepper.TickStepper.install_static",
    "repro.core.stepper.TickStepper.step",
    "repro.predictors.evaluation.one_step_predictions",
    "repro.predictors.evaluation.time_predictor",
    "repro.scenario.runner.run_scenario",
    "repro.service.server.TickServer._tick_loop",
    "repro.service.server.TickServer._dispatch",
)

#: Attribute calls that charge wall time to a phase (the PhaseTimer
#: surface: ``timer.lap("emulate", t0)`` / ``with timer.phase("x")``).
_PHASE_CHARGING_ATTRS = frozenset({"lap", "phase"})

#: Attribute calls that open a span on a recorder handle.
_SPAN_OPENING_ATTRS = frozenset({"begin"})

#: Canonical names of the span context manager.
_SPAN_CONTEXT = frozenset({"repro.obs.trace.span", "span"})


def _is_span_call(node: ast.Call, imports: ImportMap) -> bool:
    """True when ``node`` opens a span (``rec.begin`` or ``span(...)``)."""
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in _SPAN_OPENING_ATTRS:
        return True
    name = imports.canonical(func)
    if name is not None and name in _SPAN_CONTEXT:
        return True
    return isinstance(func, ast.Name) and func.id == "span"


def _charges_phase(fn: FunctionInfo) -> ast.Call | None:
    """First phase-charging call in ``fn`` (skipping nested defs)."""
    for node in _walk_own(fn.node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _PHASE_CHARGING_ATTRS
        ):
            return node
    return None


def _opens_span(fn: FunctionInfo, imports: ImportMap) -> ast.Call | None:
    """First span-opening call in ``fn`` (skipping nested defs)."""
    for node in _walk_own(fn.node):
        if isinstance(node, ast.Call) and _is_span_call(node, imports):
            return node
    return None


def _walk_own(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[ast.AST]:
    """Walk ``fn``'s body without descending into nested ``def``s —
    a nested function's spans/laps belong to *its* call-graph node."""
    out: list[ast.AST] = []
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        out.append(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return out


def _spans_across_await(
    fn: FunctionInfo, imports: ImportMap
) -> list[ast.With | ast.AsyncWith]:
    """``with span(...)`` blocks whose body awaits — the span would end
    on a different task step than it began."""
    bad: list[ast.With | ast.AsyncWith] = []
    for node in _walk_own(fn.node):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        opens = any(
            isinstance(item.context_expr, ast.Call)
            and _is_span_call(item.context_expr, imports)
            for item in node.items
        )
        if not opens:
            continue
        body_nodes: list[ast.AST] = []
        stack: list[ast.AST] = list(node.body)
        while stack:
            inner = stack.pop()
            body_nodes.append(inner)
            if isinstance(
                inner, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.extend(ast.iter_child_nodes(inner))
        if any(isinstance(inner, ast.Await) for inner in body_nodes):
            bad.append(node)
    return bad


def check_spans(
    symbols: SymbolTable,
    graph: CallGraph,
    *,
    roots: tuple[str, ...] = SPAN_ROOTS,
    boundary_prefixes: tuple[str, ...] = DEFAULT_BOUNDARY_PREFIXES,
) -> list[Violation]:
    """Prove instrumentation coverage over the span-root closure."""
    import_maps: dict[str, ImportMap] = {}

    def imports_for(module: str) -> ImportMap:
        if module not in import_maps:
            tree = symbols.project.modules[module].tree
            import_maps[module] = ImportMap.from_tree(tree)
        return import_maps[module]

    def in_boundary(module: str) -> bool:
        return any(
            module == p or module.startswith(p + ".") for p in boundary_prefixes
        )

    reachable: set[str] = set()
    queue: deque[str] = deque()
    for root in roots:
        if root in symbols.functions and root not in reachable:
            reachable.add(root)
            queue.append(root)
    while queue:
        qualname = queue.popleft()
        fn = symbols.functions[qualname]
        if in_boundary(fn.module):
            continue  # sanctioned boundary: the tracing layer itself
        for site in graph.callees(qualname):
            if site.callee not in reachable and site.callee in symbols.functions:
                reachable.add(site.callee)
                queue.append(site.callee)

    violations: list[Violation] = []
    for qualname, fn in symbols.functions.items():
        if in_boundary(fn.module):
            continue
        imports = imports_for(fn.module)
        if qualname in reachable:
            charging = _charges_phase(fn)
            if charging is not None and _opens_span(fn, imports) is None:
                violations.append(
                    Violation(
                        path=fn.path,
                        line=charging.lineno,
                        col=charging.col_offset,
                        rule_id=RULE_ID,
                        message=(
                            f"{qualname} charges a phase but opens no span: "
                            "every phase root reachable from the step-loop/"
                            "service/scenario roots must begin a span so "
                            "`repro trace diff` can attribute its wall time"
                        ),
                    )
                )
        else:
            opening = _opens_span(fn, imports)
            if opening is not None:
                violations.append(
                    Violation(
                        path=fn.path,
                        line=opening.lineno,
                        col=opening.col_offset,
                        rule_id=RULE_ID,
                        message=(
                            f"orphan span in {qualname}: the function opens "
                            "a span but is not reachable from any span root "
                            "— add the entry point to SPAN_ROOTS or drop "
                            "the instrumentation"
                        ),
                    )
                )
        for node in _spans_across_await(fn, imports):
            violations.append(
                Violation(
                    path=fn.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule_id=RULE_ID,
                    message=(
                        f"`with span(...)` in {qualname} contains an await: "
                        "the span would charge suspended time and leak "
                        "across task steps; use manual begin()/end() "
                        "handles for deliberate cross-await spans"
                    ),
                )
            )
    violations.sort()
    return violations

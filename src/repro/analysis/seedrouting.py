"""RA020 — scenario seed-routing: every draw derives from the seed.

The scenario schema declares one master ``seed``; the determinism
contract (`repro scenario run` twice → byte-identical JSONL) only holds
if every stochastic call reachable from the scenario-run roots draws
from a generator derived from it.  This pass extends the RA003/RL001
RNG discipline to the scenario layer; within scenario-package functions
reachable from the roots it flags:

* an RNG constructor (``random.Random``, ``numpy.random.default_rng``,
  ``numpy.random.RandomState``) called with **no arguments** — OS
  entropy, unseeded by definition;
* an RNG constructor whose seed argument does **not** derive from the
  scenario's declared seed (no ``.seed`` attribute read, no
  seed-derived local, no sanctioned ``scenario_rng``/``experiment_rng``
  factory in the argument expression);
* a call into the simulator that **hard-codes** a literal ``seed=`` —
  pinning a number the document cannot address;
* a call into a simulator function that **has** a ``seed`` parameter
  but is invoked without one — the callee's own default would silently
  override the scenario's declared seed.
"""

from __future__ import annotations

import ast

from repro.analysis.callgraph import CallGraph
from repro.analysis.knobs import (
    SCENARIO_PACKAGE,
    SCENARIO_ROOTS,
    collect_knobs,
    reachable_functions,
)
from repro.analysis.symbols import FunctionInfo, SymbolTable, annotation_to_dotted
from repro.lint.engine import Violation

__all__ = ["check_seed_routing"]

#: Constructors that create a generator (the RA003 set).
_RNG_CONSTRUCTORS = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "np.random.default_rng",
        "np.random.RandomState",
    }
)

#: Factories whose result is seed-derived by contract.
_SANCTIONED_FACTORIES = frozenset({"scenario_rng", "experiment_rng"})


def _violation(fn: FunctionInfo, node: ast.AST, message: str) -> Violation:
    return Violation(
        path=fn.path,
        line=getattr(node, "lineno", fn.lineno),
        col=getattr(node, "col_offset", 0),
        rule_id="RA020",
        message=message,
    )


def _seed_derived_locals(fn: FunctionInfo) -> set[str]:
    """Local names whose value derives from a scenario seed.

    Seeds flow through: parameters named ``seed``/``*_seed``, any
    expression containing a ``.seed`` attribute read, a sanctioned
    factory call, or another derived local (one forward pass per
    binding, iterated to a fixpoint)."""
    derived: set[str] = set()
    args = fn.node.args
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        if arg.arg == "seed" or arg.arg.endswith("_seed"):
            derived.add(arg.arg)
    changed = True
    while changed:
        changed = False
        for stmt in ast.walk(fn.node):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                target, value = stmt.target, stmt.value
            elif isinstance(stmt, ast.NamedExpr):
                target, value = stmt.target, stmt.value
            if not isinstance(target, ast.Name) or value is None:
                continue
            if target.id not in derived and _is_seed_derived(value, derived):
                derived.add(target.id)
                changed = True
    return derived


def _is_seed_derived(node: ast.expr, derived: set[str]) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "seed":
            return True
        if isinstance(sub, ast.Name) and (
            sub.id == "seed" or sub.id in derived
        ):
            return True
        if isinstance(sub, ast.Call):
            dotted = annotation_to_dotted(sub.func)
            if (
                dotted is not None
                and dotted.rsplit(".", 1)[-1] in _SANCTIONED_FACTORIES
            ):
                return True
    return False


def _callee_has_seed_param(symbols: SymbolTable, resolved: str) -> bool:
    """Does the (project) callee accept a ``seed`` parameter?"""
    fn = symbols.functions.get(resolved)
    if fn is None:
        info = symbols.classes.get(resolved)
        if info is None:
            return False
        for stmt in info.node.body:
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "seed"
            ):
                return True
        init = info.methods.get("__init__")
        if init is None:
            return False
        fn = init
    args = fn.node.args
    names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    return "seed" in names


def _seed_argument(call: ast.Call) -> ast.expr | None:
    for keyword in call.keywords:
        if keyword.arg == "seed":
            return keyword.value
    return None


def _check_function(
    symbols: SymbolTable, fn: FunctionInfo
) -> list[Violation]:
    findings: list[Violation] = []
    derived = _seed_derived_locals(fn)
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        dotted = annotation_to_dotted(node.func)
        if dotted is None:
            continue
        resolved = symbols.canonicalize(symbols.resolve(fn.module, dotted))
        if resolved in _RNG_CONSTRUCTORS or dotted in _RNG_CONSTRUCTORS:
            seed_args = list(node.args) + [
                keyword.value for keyword in node.keywords
            ]
            if not seed_args:
                findings.append(
                    _violation(
                        fn,
                        node,
                        f"unseeded RNG constructor {dotted}() in "
                        f"scenario-reachable code (draws from OS "
                        f"entropy, unpinned by the scenario seed)",
                    )
                )
            elif not any(
                _is_seed_derived(argument, derived) for argument in seed_args
            ):
                findings.append(
                    _violation(
                        fn,
                        node,
                        f"RNG constructor {dotted}(...) seeded from an "
                        f"expression not derived from the scenario's "
                        f"declared seed",
                    )
                )
            continue
        target = symbols.functions.get(resolved) or symbols.classes.get(resolved)
        if target is None or target.module.startswith(SCENARIO_PACKAGE):
            continue
        if not target.module.startswith("repro."):
            continue
        if not _callee_has_seed_param(symbols, resolved):
            continue
        seed_value = _seed_argument(node)
        short = resolved.rsplit(".", 1)[-1]
        has_star_kwargs = any(keyword.arg is None for keyword in node.keywords)
        if seed_value is None:
            if not has_star_kwargs:
                findings.append(
                    _violation(
                        fn,
                        node,
                        f"call to {short}(...) omits seed=: its own "
                        f"default would silently override the "
                        f"scenario's declared seed",
                    )
                )
        elif isinstance(seed_value, ast.Constant) and isinstance(
            seed_value.value, (int, float)
        ):
            findings.append(
                _violation(
                    fn,
                    seed_value,
                    f"hard-coded seed={seed_value.value!r} passed to "
                    f"{short}(...): the scenario's declared seed "
                    f"cannot address it",
                )
            )
        elif not _is_seed_derived(seed_value, derived):
            findings.append(
                _violation(
                    fn,
                    seed_value,
                    f"seed= argument of {short}(...) is not derived "
                    f"from the scenario's declared seed",
                )
            )
    return findings


def check_seed_routing(
    symbols: SymbolTable,
    graph: CallGraph,
    *,
    roots: tuple[str, ...] = SCENARIO_ROOTS,
) -> list[Violation]:
    """Run the RA020 checks; empty when no scenario schema exists."""
    if not collect_knobs(symbols):
        return []
    findings: list[Violation] = []
    for qualname in sorted(reachable_functions(symbols, graph, roots)):
        fn = symbols.functions[qualname]
        if not fn.module.startswith(SCENARIO_PACKAGE):
            continue
        findings.extend(_check_function(symbols, fn))
    return findings

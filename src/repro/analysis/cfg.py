"""Per-function control-flow graphs for the dataflow passes.

A :class:`CFG` is built once per function from the already-parsed lint
AST and shared by every dataflow client (RA006 intervals today; the
solver in :mod:`repro.analysis.dataflow` is generic over domains).

Design notes
------------
* Blocks hold *straight-line* statements.  Compound statements are
  lowered structurally: ``if``/``while`` tests live on the outgoing
  :class:`Edge` (``cond`` + ``assume`` polarity) so domains can narrow
  on branches; ``for`` and ``with`` headers are kept as the first
  "statement" of their block so domains see the target binding, with
  the convention that a domain's transfer function must **not** recurse
  into the body of a compound header statement — the builder has
  already lowered the body into its own blocks.
* ``try`` is conservative: each handler is entered both from the state
  before the ``try`` and from the state after its body, because the
  raise could have happened anywhere in between.
* ``break``/``continue``/``return``/``raise`` close the current block;
  unreachable trailing statements simply land in a block with no
  incoming edges (the solver never visits it).
* Loop heads are recorded in :attr:`CFG.loop_heads` so the solver knows
  where to widen.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["Block", "Edge", "CFG", "build_cfg"]

#: Statement types whose *body* is lowered by the builder; a domain
#: transfer over one of these must only interpret the header.
HEADER_STATEMENTS = (ast.For, ast.AsyncFor, ast.With, ast.AsyncWith)


@dataclass
class Block:
    """One straight-line run of statements."""

    idx: int
    stmts: list[ast.stmt] = field(default_factory=list)


@dataclass(frozen=True)
class Edge:
    """A control transfer; ``cond``/``assume`` carry branch knowledge.

    ``cond is None`` means an unconditional transfer.  Otherwise the
    edge is taken exactly when ``bool(cond) == assume``, which is what
    a domain's ``assume`` hook refines on.
    """

    src: int
    dst: int
    cond: ast.expr | None = None
    assume: bool = True


class CFG:
    """Control-flow graph of one function body."""

    def __init__(self) -> None:
        self.blocks: list[Block] = []
        self.entry: int = 0
        self.exit: int = 0
        self.loop_heads: set[int] = set()
        self._succs: dict[int, list[Edge]] = {}
        self._preds: dict[int, list[Edge]] = {}

    def new_block(self) -> int:
        block = Block(idx=len(self.blocks))
        self.blocks.append(block)
        return block.idx

    def add_edge(
        self, src: int, dst: int, *, cond: ast.expr | None = None, assume: bool = True
    ) -> None:
        edge = Edge(src=src, dst=dst, cond=cond, assume=assume)
        self._succs.setdefault(src, []).append(edge)
        self._preds.setdefault(dst, []).append(edge)

    def succs(self, idx: int) -> list[Edge]:
        return self._succs.get(idx, [])

    def preds(self, idx: int) -> list[Edge]:
        return self._preds.get(idx, [])


class _Builder:
    """Lowers one statement suite into a :class:`CFG`."""

    def __init__(self) -> None:
        self.cfg = CFG()
        #: (break_target, continue_target) per enclosing loop.
        self._loop_stack: list[tuple[int, int]] = []

    def build(self, body: list[ast.stmt]) -> CFG:
        cfg = self.cfg
        cfg.entry = cfg.new_block()
        cfg.exit = cfg.new_block()
        out = self._lower_suite(body, cfg.entry)
        if out is not None:
            cfg.add_edge(out, cfg.exit)
        return cfg

    # -- suites ------------------------------------------------------------

    def _lower_suite(self, stmts: list[ast.stmt], current: int) -> int | None:
        """Lower ``stmts`` starting in block ``current``.

        Returns the open block a fall-through continues in, or ``None``
        when every path has left the suite (return/raise/break/...).
        """
        open_block: int | None = current
        for stmt in stmts:
            if open_block is None:
                # Unreachable trailing code: park it in an orphan block
                # (no incoming edges, so the solver never visits it).
                open_block = self.cfg.new_block()
            open_block = self._lower_stmt(stmt, open_block)
        return open_block

    # -- statements --------------------------------------------------------

    def _lower_stmt(self, stmt: ast.stmt, current: int) -> int | None:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            return self._lower_if(stmt, current)
        if isinstance(stmt, ast.While):
            return self._lower_while(stmt, current)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._lower_for(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._lower_try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            # Header stays visible (binds optional_vars); body is
            # lowered inline — a ``with`` does not branch.
            cfg.blocks[current].stmts.append(stmt)
            return self._lower_suite(stmt.body, current)
        if isinstance(stmt, ast.Match):
            return self._lower_match(stmt, current)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            cfg.blocks[current].stmts.append(stmt)
            cfg.add_edge(current, cfg.exit)
            return None
        if isinstance(stmt, ast.Break):
            if self._loop_stack:
                cfg.add_edge(current, self._loop_stack[-1][0])
                return None
            return current  # malformed code: treat as no-op
        if isinstance(stmt, ast.Continue):
            if self._loop_stack:
                cfg.add_edge(current, self._loop_stack[-1][1])
                return None
            return current
        cfg.blocks[current].stmts.append(stmt)
        return current

    def _lower_if(self, stmt: ast.If, current: int) -> int | None:
        cfg = self.cfg
        then_entry = cfg.new_block()
        cfg.add_edge(current, then_entry, cond=stmt.test, assume=True)
        then_out = self._lower_suite(stmt.body, then_entry)
        if stmt.orelse:
            else_entry = cfg.new_block()
            cfg.add_edge(current, else_entry, cond=stmt.test, assume=False)
            else_out = self._lower_suite(stmt.orelse, else_entry)
        else:
            else_out = None
        outs = [b for b in (then_out, else_out) if b is not None]
        if not stmt.orelse:
            # Fall-through when the condition is false.
            after = cfg.new_block()
            cfg.add_edge(current, after, cond=stmt.test, assume=False)
            for b in outs:
                cfg.add_edge(b, after)
            return after
        if not outs:
            return None
        after = cfg.new_block()
        for b in outs:
            cfg.add_edge(b, after)
        return after

    def _lower_while(self, stmt: ast.While, current: int) -> int | None:
        cfg = self.cfg
        head = cfg.new_block()
        cfg.loop_heads.add(head)
        cfg.add_edge(current, head)
        body_entry = cfg.new_block()
        after = cfg.new_block()
        cfg.add_edge(head, body_entry, cond=stmt.test, assume=True)
        cfg.add_edge(head, after, cond=stmt.test, assume=False)
        self._loop_stack.append((after, head))
        body_out = self._lower_suite(stmt.body, body_entry)
        self._loop_stack.pop()
        if body_out is not None:
            cfg.add_edge(body_out, head)
        if stmt.orelse:
            # ``while/else`` runs orelse on normal exit; the exit edge
            # above already reaches ``after``, so lower orelse inline.
            return self._lower_suite(stmt.orelse, after)
        return after

    def _lower_for(self, stmt: ast.For | ast.AsyncFor, current: int) -> int | None:
        cfg = self.cfg
        head = cfg.new_block()
        cfg.loop_heads.add(head)
        # The For header is the head's one statement: domains interpret
        # the target binding there (the body is NOT reinterpreted).
        cfg.blocks[head].stmts.append(stmt)
        cfg.add_edge(current, head)
        body_entry = cfg.new_block()
        after = cfg.new_block()
        cfg.add_edge(head, body_entry)
        cfg.add_edge(head, after)
        self._loop_stack.append((after, head))
        body_out = self._lower_suite(stmt.body, body_entry)
        self._loop_stack.pop()
        if body_out is not None:
            cfg.add_edge(body_out, head)
        if stmt.orelse:
            return self._lower_suite(stmt.orelse, after)
        return after

    def _lower_try(self, stmt: ast.Try, current: int) -> int | None:
        cfg = self.cfg
        body_entry = cfg.new_block()
        cfg.add_edge(current, body_entry)
        body_out = self._lower_suite(stmt.body, body_entry)
        outs: list[int] = []
        for handler in stmt.handlers:
            h_entry = cfg.new_block()
            # The raise may fire before or after any body statement ran.
            cfg.add_edge(current, h_entry)
            if body_out is not None:
                cfg.add_edge(body_out, h_entry)
            h_out = self._lower_suite(handler.body, h_entry)
            if h_out is not None:
                outs.append(h_out)
        if body_out is not None:
            if stmt.orelse:
                orelse_entry = cfg.new_block()
                cfg.add_edge(body_out, orelse_entry)
                orelse_out = self._lower_suite(stmt.orelse, orelse_entry)
                if orelse_out is not None:
                    outs.append(orelse_out)
            else:
                outs.append(body_out)
        if not outs:
            if stmt.finalbody:
                final_entry = cfg.new_block()
                # finally still runs on the exceptional path.
                cfg.add_edge(current, final_entry)
                out = self._lower_suite(stmt.finalbody, final_entry)
                if out is not None:
                    cfg.add_edge(out, cfg.exit)
            return None
        after = cfg.new_block()
        for b in outs:
            cfg.add_edge(b, after)
        if stmt.finalbody:
            return self._lower_suite(stmt.finalbody, after)
        return after

    def _lower_match(self, stmt: ast.Match, current: int) -> int | None:
        cfg = self.cfg
        after = cfg.new_block()
        # Conservative: any case may run, or none (no exhaustiveness
        # reasoning); patterns are opaque to the domains.
        cfg.add_edge(current, after)
        for case in stmt.cases:
            case_entry = cfg.new_block()
            cfg.add_edge(current, case_entry)
            case_out = self._lower_suite(case.body, case_entry)
            if case_out is not None:
                cfg.add_edge(case_out, after)
        return after


def build_cfg(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the control-flow graph of one function body."""
    return _Builder().build(fn.body)

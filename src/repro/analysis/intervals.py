"""RA006 — interval analysis over resource quantities.

The paper's Ω/Υ efficiency metrics (Sec. V) are only meaningful when
resource quantities stay in their legal ranges.  This pass runs the
generic worklist solver (:mod:`repro.analysis.dataflow`) over every
function with an *interval domain* seeded from

* the ``Cpu``/``Mem``/``NetIn``/``NetOut``/``Km`` ``NewType``
  annotations (a resource quantity is born in ``[0, +inf)``),
* numeric literals and module-level literal constants, and
* *unit* tags inferred from names: ``*percent``/``*_pct`` is a
  percentage, ``*frac``/``*fraction``/``*ratio`` is a fraction in
  ``[0, 1]`` terms, and a same-dimension ratio produces a fraction.

Branch conditions narrow the intervals (``if cap > 0:`` removes zero
from ``cap``); ``max(x, 0.0)``/``min``/``abs`` are interpreted; loop
heads widen so the fixed point always terminates.  Three defect classes
are reported:

* **possibly negative resource quantity** — a value whose interval
  admits negatives reaching a dimension sink (a ``Cpu(...)``-style
  retag, a dimension-annotated parameter, or a dimension-annotated
  return);
* **division by a zero-able quantity** — a divisor whose interval
  contains zero (capacities are seeded ``[0, +inf)``, so an unguarded
  division by a capacity flags until a ``> 0`` guard narrows it);
* **fraction/percent mixup** — arithmetic, comparison, or argument
  passing that provably mixes the two unit conventions around the
  Ω/Υ threshold computations.

Unknown values never flag: the pass only reports what it can prove
from seeds and literals, mirroring RA002's "provable mixes only"
philosophy.
"""

from __future__ import annotations

# Interval bounds are exact IEEE values (literals, +-inf sentinels,
# meet/widen results), so exact float equality is the correct
# comparison throughout this module, not a tolerance bug.
# reprolint: disable-file=RL003

import ast
import math
from dataclasses import dataclass

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import solve
from repro.analysis.symbols import FunctionInfo, SymbolTable, annotation_to_dotted
from repro.lint.engine import Violation

__all__ = ["Interval", "check_intervals"]

RULE_ID = "RA006"

#: Resource dimension type names (final component of the canonical
#: annotation), shared with RA002.
DIMENSIONS = frozenset({"Cpu", "Mem", "NetIn", "NetOut", "Km"})

#: Builtins that never mutate tracked state and have interval meaning.
_PURE_CALLS = frozenset(
    {
        "max",
        "min",
        "abs",
        "float",
        "int",
        "round",
        "len",
        "sum",
        "bool",
        "sorted",
        "range",
        "enumerate",
        "zip",
        "isinstance",
    }
)

_INF = float("inf")


def _unit_of_name(name: str) -> str | None:
    """Unit convention implied by an identifier, or ``None``."""
    low = name.lower()
    if low.endswith(("percent", "_pct")):
        return "percent"
    if low.endswith(("frac", "fraction", "ratio")):
        return "fraction"
    return None


@dataclass(frozen=True)
class Interval:
    """A closed real interval (``+-inf`` bounds allowed)."""

    lo: float
    hi: float

    @staticmethod
    def top() -> "Interval":
        return Interval(-_INF, _INF)

    @staticmethod
    def point(value: float) -> "Interval":
        return Interval(value, value)

    @property
    def is_top(self) -> bool:
        return self.lo == -_INF and self.hi == _INF

    @property
    def contains_zero(self) -> bool:
        return self.lo <= 0.0 <= self.hi

    @property
    def may_be_negative(self) -> bool:
        return self.lo < 0.0

    @property
    def always_negative(self) -> bool:
        return self.hi < 0.0

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def widen(self, other: "Interval") -> "Interval":
        lo = self.lo if other.lo >= self.lo else -_INF
        hi = self.hi if other.hi <= self.hi else _INF
        return Interval(lo, hi)

    def meet(self, other: "Interval") -> "Interval | None":
        lo, hi = max(self.lo, other.lo), min(self.hi, other.hi)
        return None if lo > hi else Interval(lo, hi)

    def neg(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def add(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def sub(self, other: "Interval") -> "Interval":
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def mul(self, other: "Interval") -> "Interval":
        candidates = [
            _mul_bound(a, b)
            for a in (self.lo, self.hi)
            for b in (other.lo, other.hi)
        ]
        return Interval(min(candidates), max(candidates))

    def div(self, other: "Interval") -> "Interval":
        if other.contains_zero:
            return Interval.top()
        candidates = []
        for a in (self.lo, self.hi):
            for b in (other.lo, other.hi):
                q = _div_bound(a, b)
                if q is None:
                    return Interval.top()
                candidates.append(q)
        return Interval(min(candidates), max(candidates))

    def format(self) -> str:
        return f"[{_fmt_bound(self.lo)}, {_fmt_bound(self.hi)}]"


def _mul_bound(a: float, b: float) -> float:
    if a == 0.0 or b == 0.0:
        return 0.0  # interval convention: 0 * inf contributes 0
    return a * b


def _div_bound(a: float, b: float) -> float | None:
    try:
        q = a / b
    except ZeroDivisionError:  # pragma: no cover - guarded by contains_zero
        return None
    return None if math.isnan(q) else q


def _fmt_bound(x: float) -> str:
    if x == _INF:
        return "inf"
    if x == -_INF:
        return "-inf"
    return f"{x:g}"


@dataclass(frozen=True)
class Value:
    """Abstract value: interval, unit convention, dimension tag.

    ``numeric`` records whether the interval was *derived from actual
    value information* (seeds, literals, arithmetic over them); a
    ``numeric=False`` value carries only a unit tag and never triggers
    the numeric checks.
    """

    interval: Interval
    unit: str | None = None
    dim: str | None = None
    numeric: bool = False

    @property
    def is_unknown(self) -> bool:
        return (
            not self.numeric
            and self.unit is None
            and self.dim is None
            and self.interval.is_top
        )

    def join(self, other: "Value") -> "Value":
        return Value(
            interval=self.interval.join(other.interval),
            unit=self.unit if self.unit == other.unit else None,
            dim=self.dim if self.dim == other.dim else None,
            numeric=self.numeric and other.numeric,
        )

    def widen(self, other: "Value") -> "Value":
        return Value(
            interval=self.interval.widen(other.interval),
            unit=self.unit if self.unit == other.unit else None,
            dim=self.dim if self.dim == other.dim else None,
            numeric=self.numeric and other.numeric,
        )


#: The "know nothing" value stored on kills.
UNKNOWN = Value(Interval.top())

#: State type: access path (``x`` / ``self.machine.cpu_capacity``) ->
#: abstract value.  Missing paths lazily take their seed on read.
State = dict[str, Value]


def _path_of(expr: ast.expr) -> str | None:
    """Dotted access path of a Name/Attribute chain, or ``None``."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        base = _path_of(expr.value)
        return None if base is None else f"{base}.{expr.attr}"
    return None


def _module_constants(symbols: SymbolTable) -> dict[str, Value]:
    """``{canonical_dotted: Value}`` for module-level literal numbers."""
    consts: dict[str, Value] = {}
    for module in symbols.project.sorted_modules():
        for stmt in module.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if (
                value is None
                or not isinstance(value, ast.Constant)
                or isinstance(value.value, bool)
                or not isinstance(value.value, (int, float))
            ):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    consts[f"{module.name}.{target.id}"] = Value(
                        Interval.point(float(value.value)),
                        unit=_unit_of_name(target.id),
                        numeric=True,
                    )
    return consts


class _IntervalDomain:
    """The dataflow domain for one function (see module docstring)."""

    def __init__(
        self,
        symbols: SymbolTable,
        fn: FunctionInfo,
        consts: dict[str, Value],
    ) -> None:
        self.symbols = symbols
        self.fn = fn
        self.module = fn.module
        self.consts = consts
        #: param name -> class qualname (for attribute-path seeding).
        self.param_classes: dict[str, str] = {}
        #: path -> seed value computed once per function.
        self._seed_cache: dict[str, Value | None] = {}
        self._collect_params()

    # -- seeding -----------------------------------------------------------

    def _resolve(self, dotted: str) -> str:
        return self.symbols.canonicalize(self.symbols.resolve(self.module, dotted))

    def _dim_of_annotation(self, annotation: ast.expr | None) -> str | None:
        dotted = annotation_to_dotted(annotation)
        if dotted is None:
            return None
        tail = self._resolve(dotted).rsplit(".", 1)[-1]
        return tail if tail in DIMENSIONS else None

    def _class_of_annotation(self, annotation: ast.expr | None) -> str | None:
        dotted = annotation_to_dotted(annotation)
        if dotted is None:
            return None
        resolved = self._resolve(dotted)
        return resolved if resolved in self.symbols.classes else None

    def _collect_params(self) -> None:
        args = self.fn.node.args
        for a in args.posonlyargs + args.args + args.kwonlyargs:
            cls = self._class_of_annotation(a.annotation)
            if cls is not None:
                self.param_classes[a.arg] = cls
        if self.fn.cls is not None:
            self.param_classes.setdefault("self", self.fn.cls)

    def _seed_annotated(self, name: str, annotation: ast.expr | None) -> Value | None:
        dim = self._dim_of_annotation(annotation)
        unit = _unit_of_name(name)
        if dim is not None:
            return Value(Interval(0.0, _INF), unit=unit, dim=dim, numeric=True)
        if unit is not None:
            return Value(Interval.top(), unit=unit)
        return None

    def seed(self, path: str) -> Value | None:
        """Seed value for an unseen access path, or ``None``."""
        if path not in self._seed_cache:
            self._seed_cache[path] = self._compute_seed(path)
        return self._seed_cache[path]

    def _compute_seed(self, path: str) -> Value | None:
        parts = path.split(".")
        if len(parts) == 1:
            resolved = self._resolve(parts[0])
            return self.consts.get(resolved)
        # Attribute chain rooted at an annotated receiver.
        cls = self.param_classes.get(parts[0])
        if cls is not None:
            current = cls
            for attr in parts[1:-1]:
                info = self.symbols.classes.get(current)
                if info is None:
                    return None
                nxt = info.attr_types.get(attr)
                if nxt is None or nxt not in self.symbols.classes:
                    return None
                current = nxt
            info = self.symbols.classes.get(current)
            if info is None:
                return None
            annotation = info.attr_annotations.get(parts[-1])
            if annotation is not None:
                return self._seed_annotated(parts[-1], annotation)
            return None
        # Module-qualified constant (``metrics.THRESHOLD_PERCENT``).
        return self.consts.get(self._resolve(path))

    def lookup(self, state: State, path: str) -> Value:
        found = state.get(path)
        if found is not None:
            return found
        seeded = self.seed(path)
        return seeded if seeded is not None else UNKNOWN

    # -- Domain protocol ---------------------------------------------------

    def initial(self) -> State:
        state: State = {}
        args = self.fn.node.args
        for a in args.posonlyargs + args.args + args.kwonlyargs:
            seeded = self._seed_annotated(a.arg, a.annotation)
            if seeded is not None:
                state[a.arg] = seeded
        return state

    def join(self, a: State, b: State) -> State:
        out: State = {}
        for key in sorted(set(a) | set(b)):
            out[key] = self.lookup(a, key).join(self.lookup(b, key))
        return out

    def widen(self, a: State, b: State) -> State:
        out: State = {}
        for key in sorted(set(a) | set(b)):
            out[key] = self.lookup(a, key).widen(self.lookup(b, key))
        return out

    def equals(self, a: State, b: State) -> bool:
        keys = set(a) | set(b)
        return all(self.lookup(a, k) == self.lookup(b, k) for k in keys)

    def transfer(self, state: State, stmt: ast.stmt) -> State:
        state = dict(state)
        self._kill_impure_calls(state, stmt)
        if isinstance(stmt, ast.Assign):
            if len(stmt.targets) == 1:
                self._assign(state, stmt.targets[0], stmt.value)
            else:
                for target in stmt.targets:
                    self._kill_target(state, target)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(state, stmt.target, stmt.value)
            else:
                path = _path_of(stmt.target)
                if path is not None:
                    seeded = self._seed_annotated(
                        path.rsplit(".", 1)[-1], stmt.annotation
                    )
                    self._set(state, path, seeded if seeded is not None else UNKNOWN)
        elif isinstance(stmt, ast.AugAssign):
            load = ast.copy_location(
                ast.BinOp(left=stmt.target, op=stmt.op, right=stmt.value), stmt
            )
            value = self.eval(state, load)
            path = _path_of(stmt.target)
            if path is not None:
                self._set(state, path, value if value is not None else UNKNOWN)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._kill_target(state, stmt.target)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._kill_target(state, item.optional_vars)
        elif isinstance(stmt, ast.Assert):
            refined = self.assume(state, stmt.test, True)
            if refined is not None:
                state = refined
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            self._set(state, stmt.name, UNKNOWN)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._kill_target(state, target)
        return state

    def assume(self, state: State, cond: ast.expr, branch: bool) -> State | None:
        if isinstance(cond, ast.Constant):
            if isinstance(cond.value, (bool, int, float, str)):
                return state if bool(cond.value) == branch else None
            return state
        if isinstance(cond, ast.UnaryOp) and isinstance(cond.op, ast.Not):
            return self.assume(state, cond.operand, not branch)
        if isinstance(cond, ast.BoolOp):
            decompose = (isinstance(cond.op, ast.And) and branch) or (
                isinstance(cond.op, ast.Or) and not branch
            )
            if decompose:
                current: State | None = state
                for sub in cond.values:
                    if current is None:
                        return None
                    current = self.assume(current, sub, branch)
                return current
            return state
        if isinstance(cond, ast.Compare) and len(cond.ops) == 1:
            return self._assume_compare(
                state, cond.left, cond.ops[0], cond.comparators[0], branch
            )
        if isinstance(cond, (ast.Name, ast.Attribute)):
            return self._assume_truthiness(state, cond, branch)
        return state

    # -- assignment helpers ------------------------------------------------

    def _set(self, state: State, path: str, value: Value) -> None:
        prefix = path + "."
        for key in [k for k in state if k.startswith(prefix)]:
            del state[key]
        state[path] = value

    def _kill_target(self, state: State, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._kill_target(state, elt)
            return
        if isinstance(target, ast.Starred):
            self._kill_target(state, target.value)
            return
        path = _path_of(target)
        if path is not None:
            self._set(state, path, UNKNOWN)
        elif isinstance(target, ast.Subscript):
            base = _path_of(target.value)
            if base is not None:
                self._set(state, base, UNKNOWN)

    def _assign(self, state: State, target: ast.expr, value_expr: ast.expr) -> None:
        value = self.eval(state, value_expr)
        path = _path_of(target)
        if path is not None:
            self._set(state, path, value if value is not None else UNKNOWN)
        else:
            self._kill_target(state, target)

    def _kill_impure_calls(self, state: State, stmt: ast.stmt) -> None:
        """Kill paths a call in ``stmt`` could mutate behind our back."""
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            dotted = annotation_to_dotted(node.func)
            if dotted in _PURE_CALLS or (
                dotted is not None and dotted.startswith(("math.", "np.", "numpy."))
            ):
                continue
            if isinstance(node.func, ast.Attribute):
                root = _path_of(node.func.value)
                if root is not None:
                    self._set(state, root.split(".", 1)[0], UNKNOWN)
            for arg in node.args:
                root = _path_of(arg)
                if root is not None:
                    self._set(state, root.split(".", 1)[0], UNKNOWN)

    # -- branch refinement -------------------------------------------------

    def _assume_truthiness(
        self, state: State, expr: ast.expr, branch: bool
    ) -> State | None:
        path = _path_of(expr)
        if path is None:
            return state
        value = self.lookup(state, path)
        if not value.numeric:
            return state
        if branch:
            # Truthy: exactly-zero is infeasible for a numeric value.
            if value.interval.lo == 0.0 and value.interval.hi == 0.0:
                return None
            return state
        met = value.interval.meet(Interval.point(0.0))
        if met is None:
            return None
        state = dict(state)
        self._set(
            state, path, Value(met, unit=value.unit, dim=value.dim, numeric=True)
        )
        return state

    def _assume_compare(
        self,
        state: State,
        left: ast.expr,
        op: ast.cmpop,
        right: ast.expr,
        branch: bool,
    ) -> State | None:
        if not branch:
            flipped = _negate_op(op)
            if flipped is None:
                return state
            op = flipped
        refined: State | None = self._narrow(state, left, op, right)
        if refined is None:
            return None
        mirrored = _mirror_op(op)
        if mirrored is not None:
            refined = self._narrow(refined, right, mirrored, left)
        return refined

    def _narrow(
        self, state: State, expr: ast.expr, op: ast.cmpop, bound_expr: ast.expr
    ) -> State | None:
        """Refine ``expr`` knowing ``expr <op> bound_expr`` holds."""
        path = _path_of(expr)
        if path is None:
            return state
        bound = self.eval(state, bound_expr)
        if bound is None or not bound.numeric:
            return state
        current = self.lookup(state, path)
        interval = current.interval
        if isinstance(op, ast.Lt):
            constraint = Interval(-_INF, math.nextafter(bound.interval.hi, -_INF))
        elif isinstance(op, ast.LtE):
            constraint = Interval(-_INF, bound.interval.hi)
        elif isinstance(op, ast.Gt):
            constraint = Interval(math.nextafter(bound.interval.lo, _INF), _INF)
        elif isinstance(op, ast.GtE):
            constraint = Interval(bound.interval.lo, _INF)
        elif isinstance(op, ast.Eq):
            constraint = bound.interval
        elif isinstance(op, ast.NotEq):
            point = (
                interval.lo == interval.hi
                and bound.interval.lo == bound.interval.hi
                and interval.lo == bound.interval.lo
            )
            return None if point else state
        else:
            return state
        met = interval.meet(constraint)
        if met is None:
            return None
        state = dict(state)
        self._set(
            state,
            path,
            Value(met, unit=current.unit, dim=current.dim, numeric=True),
        )
        return state

    # -- expression evaluation ---------------------------------------------

    def eval(self, state: State, expr: ast.expr) -> Value | None:
        """Abstract value of ``expr`` in ``state``; ``None`` = unknown."""
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, bool) or not isinstance(
                expr.value, (int, float)
            ):
                return None
            return Value(Interval.point(float(expr.value)), numeric=True)
        if isinstance(expr, (ast.Name, ast.Attribute)):
            path = _path_of(expr)
            if path is None:
                return None
            value = self.lookup(state, path)
            return None if value.is_unknown else value
        if isinstance(expr, ast.UnaryOp):
            if isinstance(expr.op, ast.USub):
                inner = self.eval(state, expr.operand)
                if inner is None:
                    return None
                return Value(
                    inner.interval.neg(), unit=inner.unit, dim=inner.dim,
                    numeric=inner.numeric,
                )
            if isinstance(expr.op, ast.UAdd):
                return self.eval(state, expr.operand)
            return None
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(state, expr)
        if isinstance(expr, ast.Call):
            return self._eval_call(state, expr)
        if isinstance(expr, ast.IfExp):
            a = self.eval(state, expr.body)
            b = self.eval(state, expr.orelse)
            if a is None or b is None:
                return None
            return a.join(b)
        return None

    def _eval_binop(self, state: State, expr: ast.BinOp) -> Value | None:
        left = self.eval(state, expr.left)
        right = self.eval(state, expr.right)
        if left is None or right is None:
            return None
        numeric = left.numeric and right.numeric
        if isinstance(expr.op, (ast.Add, ast.Sub)):
            iv = (
                left.interval.add(right.interval)
                if isinstance(expr.op, ast.Add)
                else left.interval.sub(right.interval)
            )
            return Value(
                iv if numeric else Interval.top(),
                unit=left.unit if left.unit == right.unit else None,
                dim=left.dim if left.dim == right.dim else None,
                numeric=numeric,
            )
        if isinstance(expr.op, ast.Mult):
            unit = _unit_after_scale(left, right, to_percent=True)
            return Value(
                left.interval.mul(right.interval) if numeric else Interval.top(),
                unit=unit,
                numeric=numeric,
            )
        if isinstance(expr.op, ast.Div):
            unit = _unit_after_scale(left, right, to_percent=False)
            if unit is None and left.dim is not None and left.dim == right.dim:
                unit = "fraction"  # same-dimension ratio
            return Value(
                left.interval.div(right.interval) if numeric else Interval.top(),
                unit=unit,
                numeric=numeric,
            )
        return None

    def _eval_call(self, state: State, call: ast.Call) -> Value | None:
        dotted = annotation_to_dotted(call.func)
        args = [self.eval(state, a) for a in call.args]
        if dotted in ("max", "min") and call.args and not call.keywords:
            known = [a.interval for a in args if a is not None and a.numeric]
            if not known:
                return None
            if dotted == "max":
                lo = max(iv.lo for iv in known)
                hi = _INF if len(known) < len(args) else max(iv.hi for iv in known)
            else:
                hi = min(iv.hi for iv in known)
                lo = -_INF if len(known) < len(args) else min(iv.lo for iv in known)
            return Value(Interval(lo, hi), numeric=True)
        if dotted == "abs" and len(call.args) == 1:
            inner = args[0]
            if inner is None or not inner.numeric:
                return Value(Interval(0.0, _INF), numeric=True)
            iv = inner.interval
            lo = 0.0 if iv.contains_zero else min(abs(iv.lo), abs(iv.hi))
            return Value(
                Interval(lo, max(abs(iv.lo), abs(iv.hi))),
                unit=inner.unit,
                dim=inner.dim,
                numeric=True,
            )
        if dotted in ("float", "int", "round") and len(call.args) == 1:
            return args[0]
        if dotted is not None:
            resolved = self._resolve(dotted)
            tail = resolved.rsplit(".", 1)[-1]
            if tail in DIMENSIONS and len(call.args) == 1:
                inner = args[0]
                iv = (
                    inner.interval
                    if inner is not None and inner.numeric
                    else Interval(0.0, _INF)
                )
                return Value(iv, dim=tail, numeric=True)
            target = self.symbols.functions.get(resolved)
            if target is not None:
                seeded = self._return_seed(target)
                if seeded is not None:
                    return seeded
        return None

    def _return_seed(self, target: FunctionInfo) -> Value | None:
        """Value implied by a callee's return annotation / name."""
        dotted = annotation_to_dotted(target.node.returns)
        dim = None
        if dotted is not None:
            tail = self.symbols.canonicalize(
                self.symbols.resolve(target.module, dotted)
            ).rsplit(".", 1)[-1]
            dim = tail if tail in DIMENSIONS else None
        unit = _unit_of_name(target.name)
        if dim is not None:
            return Value(Interval(0.0, _INF), unit=unit, dim=dim, numeric=True)
        if unit is not None:
            return Value(Interval.top(), unit=unit)
        return None


def _unit_after_scale(left: Value, right: Value, *, to_percent: bool) -> str | None:
    """Unit after ``x * 100`` / ``x / 100`` style rescaling."""
    def is_hundred(v: Value) -> bool:
        return v.interval.lo == v.interval.hi == 100.0

    if to_percent:
        for a, b in ((left, right), (right, left)):
            if is_hundred(b) and a.unit == "fraction":
                return "percent"
        return None
    if is_hundred(right) and left.unit == "percent":
        return "fraction"
    return None


def _negate_op(op: ast.cmpop) -> ast.cmpop | None:
    table: list[tuple[type[ast.cmpop], ast.cmpop]] = [
        (ast.Lt, ast.GtE()),
        (ast.LtE, ast.Gt()),
        (ast.Gt, ast.LtE()),
        (ast.GtE, ast.Lt()),
        (ast.Eq, ast.NotEq()),
        (ast.NotEq, ast.Eq()),
    ]
    for kind, negated in table:
        if isinstance(op, kind):
            return negated
    return None


def _mirror_op(op: ast.cmpop) -> ast.cmpop | None:
    table: list[tuple[type[ast.cmpop], ast.cmpop]] = [
        (ast.Lt, ast.Gt()),
        (ast.LtE, ast.GtE()),
        (ast.Gt, ast.Lt()),
        (ast.GtE, ast.LtE()),
        (ast.Eq, ast.Eq()),
        (ast.NotEq, ast.NotEq()),
    ]
    for kind, mirrored in table:
        if isinstance(op, kind):
            return mirrored
    return None


class _FunctionChecker:
    """Solves one function and reports RA006 findings."""

    def __init__(
        self,
        symbols: SymbolTable,
        fn: FunctionInfo,
        consts: dict[str, Value],
    ) -> None:
        self.symbols = symbols
        self.fn = fn
        self.domain = _IntervalDomain(symbols, fn, consts)
        self.violations: list[Violation] = []

    def check(self) -> list[Violation]:
        cfg = build_cfg(self.fn.node)
        entry_states = solve(cfg, self.domain)
        for idx in sorted(entry_states):
            state = entry_states[idx]
            for stmt in cfg.blocks[idx].stmts:
                self._check_stmt(state, stmt)
                state = self.domain.transfer(state, stmt)
            # Branch tests live on the edges, not in any block.
            seen: set[int] = set()
            for edge in cfg.succs(idx):
                if edge.cond is not None and id(edge.cond) not in seen:
                    seen.add(id(edge.cond))
                    self._check_exprs(state, [edge.cond])
        return self.violations

    # -- reporting ---------------------------------------------------------

    def _flag(self, node: ast.AST, message: str) -> None:
        self.violations.append(
            Violation(
                path=self.fn.path,
                line=getattr(node, "lineno", self.fn.lineno),
                col=getattr(node, "col_offset", 0),
                rule_id=RULE_ID,
                message=f"{message} in {self.fn.qualname}",
            )
        )

    # -- statement walk ----------------------------------------------------

    def _stmt_exprs(self, stmt: ast.stmt) -> list[ast.expr]:
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.iter]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return [item.context_expr for item in stmt.items]
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return []
        return [node for node in ast.iter_child_nodes(stmt) if isinstance(node, ast.expr)]

    def _walk(self, roots: list[ast.expr]) -> list[ast.expr]:
        out: list[ast.expr] = []
        stack: list[ast.AST] = list(roots)
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Lambda):
                continue
            if isinstance(node, ast.expr):
                out.append(node)
            stack.extend(ast.iter_child_nodes(node))
        return out

    def _check_exprs(self, state: State, roots: list[ast.expr]) -> None:
        for expr in self._walk(roots):
            if isinstance(expr, ast.Call):
                self._check_call(state, expr)
            elif isinstance(expr, ast.BinOp):
                self._check_binop(state, expr)
            elif isinstance(expr, ast.Compare):
                self._check_compare(state, expr)

    def _check_stmt(self, state: State, stmt: ast.stmt) -> None:
        self._check_exprs(state, self._stmt_exprs(stmt))
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            dim = self.domain._dim_of_annotation(self.fn.node.returns)
            if dim is not None:
                value = self.domain.eval(state, stmt.value)
                if value is not None and value.numeric:
                    self._describe_negative(
                        stmt, value, f"returned as {dim}"
                    )

    def _describe_negative(self, node: ast.AST, value: Value, sink: str) -> None:
        iv = value.interval
        if iv.always_negative:
            self._flag(node, f"always-negative resource quantity {sink} ({iv.format()})")
        elif iv.may_be_negative:
            self._flag(
                node, f"possibly negative resource quantity {sink} ({iv.format()})"
            )

    def _check_call(self, state: State, call: ast.Call) -> None:
        dotted = annotation_to_dotted(call.func)
        if dotted is None:
            return
        resolved = self.domain._resolve(dotted)
        tail = resolved.rsplit(".", 1)[-1]
        if tail in DIMENSIONS and len(call.args) == 1:
            value = self.domain.eval(state, call.args[0])
            if value is not None and value.numeric:
                self._describe_negative(call, value, f"passed to {tail}()")
            return
        target = self.symbols.functions.get(resolved)
        if target is None:
            return
        params = list(
            target.node.args.posonlyargs + target.node.args.args
        )
        if params and params[0].arg in ("self", "cls") and target.cls is not None:
            params = params[1:]
        pairs: list[tuple[ast.arg, ast.expr]] = list(zip(params, call.args))
        by_name = {p.arg: p for p in params + list(target.node.args.kwonlyargs)}
        for kw in call.keywords:
            if kw.arg is not None and kw.arg in by_name:
                pairs.append((by_name[kw.arg], kw.value))
        for param, arg in pairs:
            value = self.domain.eval(state, arg)
            if value is None:
                continue
            dim = self.domain._dim_of_annotation(param.annotation)
            if dim is not None and value.numeric:
                self._describe_negative(
                    arg, value, f"passed to {target.name}({param.arg}: {dim})"
                )
            param_unit = _unit_of_name(param.arg)
            if (
                param_unit is not None
                and value.unit is not None
                and value.unit != param_unit
            ):
                self._flag(
                    arg,
                    f"fraction/percent mixup: {value.unit} value passed to "
                    f"{param_unit} parameter {target.name}({param.arg})",
                )

    def _check_binop(self, state: State, expr: ast.BinOp) -> None:
        if isinstance(expr.op, (ast.Div, ast.FloorDiv, ast.Mod)):
            divisor = self.domain.eval(state, expr.right)
            if divisor is not None and divisor.numeric:
                iv = divisor.interval
                if iv.lo == 0.0 and iv.hi == 0.0:
                    self._flag(expr, "division by zero")
                elif iv.contains_zero and not iv.is_top:
                    what = _path_of(expr.right) or "divisor"
                    self._flag(
                        expr,
                        f"division by zero-able quantity {what} ({iv.format()}); "
                        "guard with a > 0 check",
                    )
        if isinstance(expr.op, (ast.Add, ast.Sub)):
            left = self.domain.eval(state, expr.left)
            right = self.domain.eval(state, expr.right)
            if (
                left is not None
                and right is not None
                and left.unit is not None
                and right.unit is not None
                and left.unit != right.unit
            ):
                self._flag(
                    expr,
                    f"fraction/percent mixup: {left.unit} combined with "
                    f"{right.unit}",
                )

    def _check_compare(self, state: State, expr: ast.Compare) -> None:
        operands = [expr.left, *expr.comparators]
        for a, b in zip(operands, operands[1:]):
            left = self.domain.eval(state, a)
            right = self.domain.eval(state, b)
            if (
                left is not None
                and right is not None
                and left.unit is not None
                and right.unit is not None
                and left.unit != right.unit
            ):
                self._flag(
                    expr,
                    f"fraction/percent mixup: comparing a {left.unit} value "
                    f"with a {right.unit} value",
                )


def check_intervals(symbols: SymbolTable) -> list[Violation]:
    """Run the RA006 interval pass over every project function."""
    consts = _module_constants(symbols)
    violations: list[Violation] = []
    for qualname in sorted(symbols.functions):
        fn = symbols.functions[qualname]
        violations.extend(_FunctionChecker(symbols, fn, consts).check())
    violations.sort()
    return violations

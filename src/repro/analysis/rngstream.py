"""RA011 — RNG-stream symmetry: the bitwise-equivalence contract.

The vectorized emulator (PR 6) is proven bitwise-identical to the
reference engine by construction: both consume *exactly the same
stream* of ``numpy.random.Generator`` draws, in the same order, with
the same counts and dtypes.  The equivalences it relies on are

* ``world.random_positions(n)`` ≡ ``rng.random(n + n)`` — 2n uniforms,
* ``choice(m, size=k, p=w)`` ≡ ``cdf.searchsorted(rng.random(k))`` —
  inverse-transform sampling consumes k uniforms either way,
* ``normal(0, 1, (n, 2))`` ≡ ``standard_normal(out=buf)`` — same
  gaussian doubles into a preallocated buffer,
* ``uniform(0, w, n)`` ≡ ``w * rng.random(n)`` — same n uniforms.

Those used to be comment-enforced.  This pass machine-checks them: it
walks each *paired* reference/vectorized function in source order,
extracts the sequence of draw events (canonicalized through the
equivalences above, with straight-line alias resolution so
``k = profiles.shape[0]; rng.random(k + k)`` and
``n = profiles.shape[0]; world.random_positions(n)`` compare equal),
and flags any asymmetry in

* **draw kind** (uniform vs gaussian vs integer vs no-replace choice),
* **draw count** — literal counts and same-symbol multiples must match
  (``2·n`` vs ``n`` flags; ``k`` vs ``j`` is unprovable and silent;
  ``out=`` draws are wildcards),
* **guard structure** — a draw conditional on one side but
  unconditional on the other changes the stream on some input,
* **integer bounds** — differing literal ``integers`` bounds, and
* **helper-call order** — calls to paired helpers (``_new_targets``)
  must appear at the same stream positions.

Like every RA pass it reports only what it can *prove*: two opaque
symbolic counts that merely look different (``int(agg.sum())`` vs
``int(counts[_AGGRESSIVE])`` — equal at runtime by construction) never
flag.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.symbols import FunctionInfo, SymbolTable, annotation_to_dotted
from repro.lint.engine import Violation

__all__ = ["DEFAULT_RNG_PAIRS", "DrawEvent", "check_rngstream"]

RULE_ID = "RA011"

#: (reference qualname, vectorized qualname) — functions that must
#: consume identical Generator streams.  The spawn/step/despawn split
#: mirrors the engines' public surface; ``_new_targets`` is the one
#: shared helper both sides route retargeting draws through.
DEFAULT_RNG_PAIRS: tuple[tuple[str, str], ...] = (
    (
        "repro.emulator.entities.EntityPopulation.spawn",
        "repro.emulator.engine.VectorizedPopulation.spawn",
    ),
    (
        "repro.emulator.entities.EntityPopulation.despawn",
        "repro.emulator.engine.VectorizedPopulation.despawn",
    ),
    (
        "repro.emulator.entities.EntityPopulation.step",
        "repro.emulator.engine.VectorizedPopulation.step",
    ),
    (
        "repro.emulator.entities.EntityPopulation._new_targets",
        "repro.emulator.engine.VectorizedPopulation._new_targets",
    ),
)

#: Generator methods drawing uniform doubles (directly or canonically).
_UNIFORM_METHODS = frozenset({"random", "uniform"})

#: Generator methods drawing gaussian doubles.
_GAUSS_METHODS = frozenset({"normal", "standard_normal"})

#: Positional index of the ``size`` argument per draw method.
_SIZE_POSITIONS = {
    "random": 0,
    "standard_normal": 0,
    "integers": 2,
    "uniform": 2,
    "normal": 2,
    "exponential": 1,
}


@dataclass(frozen=True)
class SizeTok:
    """Canonical draw count: ``mult`` × ``sym``.

    ``sym is None`` → a pure literal count of ``mult``;
    ``sym == "*"`` → a wildcard (``out=`` draws, unresolvable counts);
    otherwise a symbolic token (``n``, ``profiles.shape[0]``).
    """

    mult: int
    sym: str | None

    def render(self) -> str:
        if self.sym is None:
            return str(self.mult)
        if self.mult == 1:
            return self.sym
        return f"{self.mult}*{self.sym}"


WILDCARD = SizeTok(1, "*")


def sizes_conflict(a: SizeTok, b: SizeTok) -> bool:
    """True only when the two counts *provably* differ."""
    if a.sym == "*" or b.sym == "*":
        return False
    if a.sym == b.sym:  # both literal (None) or the same symbol
        return a.mult != b.mult
    return False  # different symbols: unprovable, silent


@dataclass(frozen=True)
class DrawEvent:
    """One canonical point in the Generator stream."""

    kind: str  # uniform | gauss | integer | choice-noreplace | call:<name>
    size: SizeTok
    depth: int  # enclosing conditional/loop depth
    line: int
    detail: str = ""  # integer bounds etc., "" when not applicable


class _Env:
    """Straight-line alias environment: local name -> canonical count."""

    def __init__(self) -> None:
        self.names: dict[str, SizeTok] = {}


def _canon_size(expr: ast.expr | None, env: _Env) -> SizeTok:
    if expr is None:
        return SizeTok(1, None)  # a scalar draw consumes one value
    if isinstance(expr, ast.Constant):
        if isinstance(expr.value, int) and not isinstance(expr.value, bool):
            return SizeTok(expr.value, None)
        return WILDCARD
    if isinstance(expr, ast.Name):
        return env.names.get(expr.id, SizeTok(1, expr.id))
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
        left = _canon_size(expr.left, env)
        right = _canon_size(expr.right, env)
        if left.sym == right.sym and left.sym not in (None, "*"):
            return SizeTok(left.mult + right.mult, left.sym)
        if left.sym is None and right.sym is None:
            return SizeTok(left.mult + right.mult, None)
        return _opaque(expr)
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Mult):
        left = _canon_size(expr.left, env)
        right = _canon_size(expr.right, env)
        if left.sym is None and right.sym not in (None, "*"):
            return SizeTok(left.mult * right.mult, right.sym)
        if right.sym is None and left.sym not in (None, "*"):
            return SizeTok(left.mult * right.mult, left.sym)
        if left.sym is None and right.sym is None:
            return SizeTok(left.mult * right.mult, None)
        return _opaque(expr)
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id == "int"
        and len(expr.args) == 1
    ):
        return _canon_size(expr.args[0], env)
    return _opaque(expr)


def _opaque(expr: ast.expr) -> SizeTok:
    try:
        return SizeTok(1, ast.unparse(expr))
    except (ValueError, RecursionError):  # pragma: no cover - malformed AST
        return WILDCARD


def _shape_size(expr: ast.expr | None, env: _Env) -> SizeTok:
    """Total draw count of a ``size=`` argument (tuples multiply out)."""
    if isinstance(expr, (ast.Tuple, ast.List)):
        total = SizeTok(1, None)
        for elt in expr.elts:
            tok = _canon_size(elt, env)
            if tok.sym == "*" or total.sym == "*":
                return WILDCARD
            if tok.sym is None:
                total = SizeTok(total.mult * tok.mult, total.sym)
            elif total.sym is None:
                total = SizeTok(total.mult * tok.mult, tok.sym)
            else:
                return _opaque(expr)  # two symbols: opaque product
        return total
    return _canon_size(expr, env)


def _is_rng_receiver(expr: ast.expr) -> bool:
    path = annotation_to_dotted(expr)
    if path is None:
        return False
    return "rng" in path.rsplit(".", 1)[-1].lower()


def _call_kwarg(call: ast.Call, name: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _bound_token(expr: ast.expr, env: _Env) -> str:
    tok = _canon_size(expr, env)
    return tok.render()


class _StreamWalker:
    """Extracts the ordered draw-event stream of one function."""

    def __init__(self, fn: FunctionInfo, helper_names: frozenset[str]) -> None:
        self.fn = fn
        self.helper_names = helper_names
        self.env = _Env()
        self.events: list[DrawEvent] = []

    def walk(self) -> list[DrawEvent]:
        self._suite(self.fn.node.body, depth=0)
        return self.events

    # -- statements --------------------------------------------------------

    def _suite(self, stmts: list[ast.stmt], depth: int) -> None:
        for stmt in stmts:
            self._stmt(stmt, depth)

    def _stmt(self, stmt: ast.stmt, depth: int) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(stmt, ast.If):
            self._expr(stmt.test, depth)
            self._suite(stmt.body, depth + 1)
            self._suite(stmt.orelse, depth + 1)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expr(stmt.iter, depth)
            self._suite(stmt.body, depth + 1)
            self._suite(stmt.orelse, depth + 1)
            return
        if isinstance(stmt, ast.While):
            self._expr(stmt.test, depth)
            self._suite(stmt.body, depth + 1)
            self._suite(stmt.orelse, depth + 1)
            return
        if isinstance(stmt, ast.Try):
            self._suite(stmt.body, depth + 1)
            for handler in stmt.handlers:
                self._suite(handler.body, depth + 1)
            self._suite(stmt.orelse, depth + 1)
            self._suite(stmt.finalbody, depth)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._expr(item.context_expr, depth)
            self._suite(stmt.body, depth)
            return
        if isinstance(stmt, ast.Assign):
            self._expr(stmt.value, depth)
            if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
                self.env.names[stmt.targets[0].id] = _canon_size(
                    stmt.value, self.env
                )
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._expr(stmt.value, depth)
            if isinstance(stmt.target, ast.Name):
                self.env.names[stmt.target.id] = _canon_size(stmt.value, self.env)
            return
        if isinstance(stmt, ast.AugAssign):
            self._expr(stmt.value, depth)
            if isinstance(stmt.target, ast.Name):
                self.env.names.pop(stmt.target.id, None)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._expr(child, depth)

    # -- expressions (in-order, so draw events keep stream order) ----------

    def _expr(self, expr: ast.expr, depth: int) -> None:
        if isinstance(expr, ast.Lambda):
            return
        if isinstance(expr, ast.Call):
            # Arguments are evaluated before the call: record inner
            # draws first (cdf.searchsorted(rng.random(k)) canonicalizes
            # to the inner uniform draw).
            self._expr(expr.func, depth)
            for arg in expr.args:
                self._expr(arg, depth)
            for kw in expr.keywords:
                self._expr(kw.value, depth)
            self._record_call(expr, depth)
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._expr(child, depth)

    def _record_call(self, call: ast.Call, depth: int) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        method = func.attr
        if method == "random_positions":
            # world.random_positions(n) ≡ rng.random(n + n): 2n uniforms.
            n = _canon_size(call.args[0] if call.args else None, self.env)
            size = (
                SizeTok(2 * n.mult, n.sym)
                if n.sym not in ("*",)
                else WILDCARD
            )
            self._emit("uniform", size, call, depth)
            return
        if method in self.helper_names:
            self._emit("call:" + method, SizeTok(1, None), call, depth)
            return
        if not _is_rng_receiver(func.value):
            return
        if _call_kwarg(call, "out") is not None:
            kind = "gauss" if method in _GAUSS_METHODS else "uniform"
            self._emit(kind, WILDCARD, call, depth)
            return
        size_expr = _call_kwarg(call, "size")
        if size_expr is None:
            pos = _SIZE_POSITIONS.get(method)
            if pos is not None and len(call.args) > pos:
                size_expr = call.args[pos]
        size = _shape_size(size_expr, self.env)
        if method in _UNIFORM_METHODS:
            self._emit("uniform", size, call, depth)
        elif method in _GAUSS_METHODS:
            self._emit("gauss", size, call, depth)
        elif method == "integers":
            low = _bound_token(call.args[0], self.env) if call.args else "?"
            high = (
                _bound_token(call.args[1], self.env)
                if len(call.args) > 1
                else "?"
            )
            self._emit("integer", size, call, depth, detail=f"[{low}, {high})")
        elif method == "choice":
            replace = _call_kwarg(call, "replace")
            has_p = _call_kwarg(call, "p") is not None
            if (
                isinstance(replace, ast.Constant)
                and replace.value is False
                and not has_p
            ):
                self._emit("choice-noreplace", size, call, depth)
            else:
                # choice with p ≡ cdf.searchsorted(random(k)): k uniforms.
                self._emit("uniform", size, call, depth)
        elif method == "exponential":
            self._emit("exponential", size, call, depth)

    def _emit(
        self,
        kind: str,
        size: SizeTok,
        node: ast.AST,
        depth: int,
        detail: str = "",
    ) -> None:
        self.events.append(
            DrawEvent(
                kind=kind,
                size=size,
                depth=depth,
                line=getattr(node, "lineno", self.fn.lineno),
                detail=detail,
            )
        )


def _compare_pair(
    ref: FunctionInfo,
    vec: FunctionInfo,
    ref_events: list[DrawEvent],
    vec_events: list[DrawEvent],
) -> list[Violation]:
    def flag(line: int, message: str) -> Violation:
        return Violation(
            path=vec.path,
            line=line,
            col=0,
            rule_id=RULE_ID,
            message=(
                f"{message} [pair: {ref.qualname} <-> {vec.qualname}]"
            ),
        )

    if len(ref_events) != len(vec_events):
        return [
            flag(
                vec.lineno,
                f"draw-site count mismatch: reference consumes "
                f"{len(ref_events)} stream events, vectorized "
                f"{len(vec_events)} — the Generator streams diverge",
            )
        ]
    violations: list[Violation] = []
    for i, (r, v) in enumerate(zip(ref_events, vec_events)):
        if r.kind != v.kind:
            violations.append(
                flag(
                    v.line,
                    f"stream event {i}: reference draws {r.kind} "
                    f"(entities.py:{r.line}) but vectorized draws "
                    f"{v.kind} — dtype/order asymmetry",
                )
            )
            break  # later events are misaligned; avoid a cascade
        if r.depth != v.depth:
            violations.append(
                flag(
                    v.line,
                    f"stream event {i} ({r.kind}): guarded at depth "
                    f"{r.depth} in the reference (entities.py:{r.line}) "
                    f"but depth {v.depth} in the vectorized engine — "
                    "the streams diverge on some input",
                )
            )
            break
        if sizes_conflict(r.size, v.size):
            violations.append(
                flag(
                    v.line,
                    f"stream event {i} ({r.kind}): reference draws "
                    f"{r.size.render()} values (entities.py:{r.line}) "
                    f"but vectorized draws {v.size.render()}",
                )
            )
            break
        if r.kind == "integer" and r.detail != v.detail and r.detail and v.detail:
            violations.append(
                flag(
                    v.line,
                    f"stream event {i}: integer draw bounds differ — "
                    f"reference {r.detail} (entities.py:{r.line}) vs "
                    f"vectorized {v.detail}",
                )
            )
            break
    return violations


def check_rngstream(
    symbols: SymbolTable,
    *,
    pairs: tuple[tuple[str, str], ...] = DEFAULT_RNG_PAIRS,
) -> list[Violation]:
    """Machine-check the reference↔vectorized RNG-stream contract."""
    helper_names = frozenset(
        qualname.rsplit(".", 1)[-1] for pair in pairs for qualname in pair
    )
    violations: list[Violation] = []
    for ref_name, vec_name in pairs:
        ref = symbols.functions.get(ref_name)
        vec = symbols.functions.get(vec_name)
        if ref is None and vec is None:
            continue  # fixture projects without the emulator: nothing to say
        if ref is None or vec is None:
            present = ref if ref is not None else vec
            missing = ref_name if ref is None else vec_name
            assert present is not None
            violations.append(
                Violation(
                    path=present.path,
                    line=present.lineno,
                    col=0,
                    rule_id=RULE_ID,
                    message=(
                        f"RNG-paired counterpart {missing} is missing: "
                        f"{present.qualname} has no bitwise-equivalence "
                        "partner to check against"
                    ),
                )
            )
            continue
        ref_events = _StreamWalker(ref, helper_names).walk()
        vec_events = _StreamWalker(vec, helper_names).walk()
        violations.extend(_compare_pair(ref, vec, ref_events, vec_events))
    violations.sort()
    return violations

"""RA009 — array shape/dtype inference over the NumPy hot paths.

The vectorized emulator (PR 6) moved the per-tick cost into whole-array
NumPy kernels, which also moved the *failure modes*: a shape that
broadcasts by accident, or an operand pair whose dtypes silently
promote (allocating a widened temporary and, worse, changing the
IEEE-754 arithmetic the bitwise-equivalence contract depends on).
This pass runs the generic worklist solver
(:mod:`repro.analysis.dataflow`) over every function in a
numpy-importing module with an *abstract array domain* tracking

* ``dims`` — a shape tuple whose entries are integer literals or
  symbolic dimensions (the unparsed size expression: ``n``, ``k + k``),
* ``dtype`` — the element type when derivable (``float64`` from
  ``rng.random``, ``int64`` from ``np.empty(..., dtype=np.int64)``,
  rewrites through ``.astype``), and

reports three defect classes:

* **broadcast-incompatible shapes** — elementwise arithmetic between
  arrays whose *literal* trailing dimensions can never broadcast
  (``(n, 2) * (n, 3)``);
* **silent dtype promotion** — arithmetic between same-kind operands of
  different widths (``float32`` meets ``float64``), which allocates and
  upcasts on every evaluation;
* **out= mismatch** — a ufunc whose inferred result shape cannot
  broadcast into its ``out=`` buffer, or whose float result is silently
  truncated into an integer ``out=`` buffer.

Symbolic dimensions compare by name only: ``n`` vs ``n`` is compatible,
``n`` vs ``k`` is *unknown* and never flags — like RA002/RA006 the pass
reports only what it can prove, so rebinding a size variable can lose
precision but cannot create a false positive.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import solve
from repro.analysis.symbols import FunctionInfo, SymbolTable, annotation_to_dotted
from repro.lint.engine import Violation

__all__ = ["ArrayVal", "Dim", "check_arrays", "broadcast_dims", "promote_dtype"]

RULE_ID = "RA009"

#: One abstract dimension: a literal extent or a symbolic size name.
Dim = int | str

#: numpy constructors whose first argument is the shape (canonical
#: names sans the ``numpy.`` prefix, like the ufunc tables below).
_SHAPE_CONSTRUCTORS = frozenset({"empty", "zeros", "ones", "full"})

#: numpy *_like constructors copying their argument's value.
_LIKE_CONSTRUCTORS = frozenset(
    {"empty_like", "zeros_like", "ones_like", "full_like"}
)

#: Binary elementwise ufuncs (canonical numpy names, sans prefix).
_BINARY_UFUNCS = frozenset(
    {
        "add",
        "subtract",
        "multiply",
        "divide",
        "true_divide",
        "floor_divide",
        "power",
        "minimum",
        "maximum",
        "mod",
        "remainder",
        "hypot",
        "arctan2",
        "less",
        "less_equal",
        "greater",
        "greater_equal",
        "equal",
        "not_equal",
    }
)

#: Unary elementwise ufuncs: result shape/dtype follow the operand.
_UNARY_UFUNCS = frozenset(
    {"negative", "absolute", "abs", "sqrt", "exp", "log", "sin", "cos", "tan"}
)

#: Comparison ufuncs produce booleans, not the promoted operand dtype.
_BOOL_UFUNCS = frozenset(
    {"less", "less_equal", "greater", "greater_equal", "equal", "not_equal"}
)

#: Generator methods drawing IEEE doubles.
_RNG_FLOAT_DRAWS = frozenset(
    {"random", "uniform", "normal", "standard_normal", "exponential"}
)

#: dtype spelling -> (kind, width) for the promotion check.
_DTYPE_KINDS: dict[str, tuple[str, int]] = {
    "float16": ("float", 16),
    "float32": ("float", 32),
    "float64": ("float", 64),
    "int8": ("int", 8),
    "int16": ("int", 16),
    "int32": ("int", 32),
    "int64": ("int", 64),
    "uint8": ("uint", 8),
    "uint16": ("uint", 16),
    "uint32": ("uint", 32),
    "uint64": ("uint", 64),
    "bool": ("bool", 1),
    "bool_": ("bool", 1),
}


@dataclass(frozen=True)
class ArrayVal:
    """Abstract array: shape (literal/symbolic dims) plus element dtype.

    ``dims is None`` means the shape is unknown; ``dtype is None`` means
    the element type is unknown.  Both unknown is the domain's top.
    """

    dims: tuple[Dim, ...] | None = None
    dtype: str | None = None

    @property
    def is_unknown(self) -> bool:
        return self.dims is None and self.dtype is None

    def join(self, other: "ArrayVal") -> "ArrayVal":
        """Least upper bound: keep only what both sides agree on."""
        return ArrayVal(
            dims=self.dims if self.dims == other.dims else None,
            dtype=self.dtype if self.dtype == other.dtype else None,
        )


#: The "know nothing" value (domain top).
UNKNOWN = ArrayVal()

#: State: access path (``u2`` / ``self._jit``) -> abstract array value.
State = dict[str, ArrayVal]


def broadcast_dims(
    a: tuple[Dim, ...], b: tuple[Dim, ...]
) -> tuple[tuple[Dim, ...] | None, bool]:
    """Broadcast two abstract shapes; returns ``(result, provably_bad)``.

    Dimensions align from the trailing end.  Two integer literals must
    be equal or include a 1; equal symbols are compatible; an integer
    against a different symbol (or symbol against symbol) is *unknown*
    — the result dimension is dropped to a fresh unknown only if the
    pair could still broadcast, and the whole result collapses to
    ``None`` on any unknown pair.  ``provably_bad`` is True only for a
    literal/literal conflict.
    """
    result: list[Dim] = []
    known = True
    for i in range(max(len(a), len(b))):
        da = a[len(a) - 1 - i] if i < len(a) else 1
        db = b[len(b) - 1 - i] if i < len(b) else 1
        if da == db:
            result.append(da)
        elif da == 1:
            result.append(db)
        elif db == 1:
            result.append(da)
        elif isinstance(da, int) and isinstance(db, int):
            return None, True
        else:
            known = False  # symbol vs literal / foreign symbol: unknown
            result.append(da)
    if not known:
        return None, False
    result.reverse()
    return tuple(result), False


def promote_dtype(a: str | None, b: str | None) -> tuple[str | None, bool]:
    """Promoted dtype of a binary op; returns ``(dtype, silent_widening)``.

    ``silent_widening`` is True for a same-kind width mismatch (the
    "silent dtype promotion" defect: ``float32`` meets ``float64``).
    Cross-kind promotion (int with float) is ordinary NumPy arithmetic
    and does not flag.
    """
    if a is None or b is None:
        return None, False
    if a == b:
        return a, False
    ka = _DTYPE_KINDS.get(a)
    kb = _DTYPE_KINDS.get(b)
    if ka is None or kb is None:
        return None, False
    if ka[0] == kb[0]:
        wider = a if ka[1] >= kb[1] else b
        return wider, True
    if "float" in (ka[0], kb[0]):
        return a if ka[0] == "float" else b, False
    return None, False


def _path_of(expr: ast.expr) -> str | None:
    """Dotted access path of a Name/Attribute chain, or ``None``."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        base = _path_of(expr.value)
        return None if base is None else f"{base}.{expr.attr}"
    return None


def _is_rng_receiver(expr: ast.expr) -> bool:
    """Heuristic: the receiver names a Generator (``rng``/``self._rng``)."""
    path = _path_of(expr)
    if path is None:
        return False
    return "rng" in path.rsplit(".", 1)[-1].lower()


def _dim_of(expr: ast.expr) -> Dim | None:
    """One abstract dimension from a size expression."""
    if isinstance(expr, ast.Constant):
        if isinstance(expr.value, bool) or not isinstance(expr.value, int):
            return None
        return expr.value
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.USub):
        inner = _dim_of(expr.operand)
        return -inner if isinstance(inner, int) else None
    try:
        return ast.unparse(expr)
    except (ValueError, RecursionError):  # pragma: no cover - malformed AST
        return None


def _dims_of_shape(expr: ast.expr) -> tuple[Dim, ...] | None:
    """Abstract shape from a constructor's shape argument."""
    if isinstance(expr, (ast.Tuple, ast.List)):
        dims = [_dim_of(elt) for elt in expr.elts]
        if any(d is None for d in dims):
            return None
        return tuple(d for d in dims if d is not None)
    dim = _dim_of(expr)
    return None if dim is None else (dim,)


def _dtype_of_expr(expr: ast.expr) -> str | None:
    """dtype spelled as ``np.float32``, ``"float32"``, or ``float``/``int``."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value if expr.value in _DTYPE_KINDS else None
    dotted = annotation_to_dotted(expr)
    if dotted is None:
        return None
    tail = dotted.rsplit(".", 1)[-1]
    if tail in _DTYPE_KINDS:
        return "bool" if tail == "bool_" else tail
    if tail == "float":
        return "float64"
    if tail == "int":
        return "int64"
    return None


def _keyword(call: ast.Call, name: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


class _ArrayDomain:
    """The dataflow domain for one function (see module docstring)."""

    def __init__(self, symbols: SymbolTable, fn: FunctionInfo) -> None:
        self.symbols = symbols
        self.fn = fn
        self.module = fn.module

    def _resolve(self, dotted: str) -> str:
        return self.symbols.canonicalize(self.symbols.resolve(self.module, dotted))

    # -- Domain protocol ---------------------------------------------------

    def initial(self) -> State:
        return {}

    def join(self, a: State, b: State) -> State:
        out: State = {}
        for key in sorted(set(a) | set(b)):
            joined = a.get(key, UNKNOWN).join(b.get(key, UNKNOWN))
            if not joined.is_unknown:
                out[key] = joined
        return out

    def widen(self, a: State, b: State) -> State:
        # The lattice is finite per key (known -> unknown), so the join
        # already converges; widening is the join.
        return self.join(a, b)

    def equals(self, a: State, b: State) -> bool:
        keys = set(a) | set(b)
        return all(a.get(k, UNKNOWN) == b.get(k, UNKNOWN) for k in keys)

    def transfer(self, state: State, stmt: ast.stmt) -> State:
        state = dict(state)
        if isinstance(stmt, ast.Assign):
            if len(stmt.targets) == 1:
                self._assign(state, stmt.targets[0], stmt.value)
            else:
                for target in stmt.targets:
                    self._kill_target(state, target)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign(state, stmt.target, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            # In-place ops preserve shape and dtype; nothing to do.
            pass
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._kill_target(state, stmt.target)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._kill_target(state, item.optional_vars)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            state.pop(stmt.name, None)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._kill_target(state, target)
        return state

    def assume(self, state: State, cond: ast.expr, branch: bool) -> State | None:
        return state  # shapes carry no branch information

    # -- assignment helpers ------------------------------------------------

    def _set(self, state: State, path: str, value: ArrayVal) -> None:
        if value.is_unknown:
            state.pop(path, None)
        else:
            state[path] = value

    def _kill_target(self, state: State, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._kill_target(state, elt)
            return
        if isinstance(target, ast.Starred):
            self._kill_target(state, target.value)
            return
        path = _path_of(target)
        if path is not None:
            state.pop(path, None)

    def _assign(self, state: State, target: ast.expr, value_expr: ast.expr) -> None:
        path = _path_of(target)
        if path is None:
            self._kill_target(state, target)
            return
        value = self.eval(state, value_expr)
        self._set(state, path, value if value is not None else UNKNOWN)

    # -- expression evaluation ---------------------------------------------

    def eval(self, state: State, expr: ast.expr) -> ArrayVal | None:
        """Abstract array value of ``expr``; ``None`` = not an array /
        unknown."""
        if isinstance(expr, (ast.Name, ast.Attribute)):
            path = _path_of(expr)
            if path is None:
                return None
            found = state.get(path)
            return None if found is None or found.is_unknown else found
        if isinstance(expr, ast.BinOp):
            result, _bad, _widened = self.eval_binop(state, expr)
            return result
        if isinstance(expr, ast.Call):
            return self._eval_call(state, expr)
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.USub):
            return self.eval(state, expr.operand)
        return None

    def eval_binop(
        self, state: State, expr: ast.BinOp
    ) -> tuple[ArrayVal | None, bool, bool]:
        """``(result, shape_conflict, silent_widening)`` for a binop."""
        if not isinstance(
            expr.op,
            (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow),
        ):
            return None, False, False
        left = self.eval(state, expr.left)
        right = self.eval(state, expr.right)
        if left is None or right is None:
            return None, False, False  # scalar or unknown operand: silent
        dims: tuple[Dim, ...] | None = None
        bad = False
        if left.dims is not None and right.dims is not None:
            dims, bad = broadcast_dims(left.dims, right.dims)
        dtype, widened = promote_dtype(left.dtype, right.dtype)
        return ArrayVal(dims=dims, dtype=dtype), bad, widened

    def _eval_call(self, state: State, call: ast.Call) -> ArrayVal | None:
        func = call.func
        if isinstance(func, ast.Attribute):
            method = func.attr
            if _is_rng_receiver(func.value):
                return self._eval_rng_call(state, call, method)
            receiver = self.eval(state, func.value)
            if method == "astype" and call.args:
                dtype = _dtype_of_expr(call.args[0])
                if receiver is not None:
                    return ArrayVal(dims=receiver.dims, dtype=dtype)
                return ArrayVal(dtype=dtype) if dtype is not None else None
            if method == "copy" and receiver is not None:
                return receiver
            if method == "searchsorted" and call.args:
                probe = self.eval(state, call.args[0])
                return ArrayVal(
                    dims=probe.dims if probe is not None else None, dtype="int64"
                )
        dotted = annotation_to_dotted(func)
        if dotted is None:
            return None
        resolved = self._resolve(dotted)
        if not resolved.startswith("numpy."):
            return None
        tail = resolved[len("numpy."):]
        if tail in _SHAPE_CONSTRUCTORS:
            return self._eval_constructor(call, tail)
        if tail in _LIKE_CONSTRUCTORS and call.args:
            source = self.eval(state, call.args[0])
            dtype_expr = _keyword(call, "dtype")
            dtype = _dtype_of_expr(dtype_expr) if dtype_expr is not None else None
            if source is None:
                return ArrayVal(dtype=dtype) if dtype is not None else None
            return ArrayVal(dims=source.dims, dtype=dtype or source.dtype)
        if tail == "arange" and call.args:
            dims = _dims_of_shape(call.args[0]) if len(call.args) == 1 else None
            return ArrayVal(dims=dims)
        if tail in _BINARY_UFUNCS or tail in _UNARY_UFUNCS:
            return self._eval_ufunc(state, call, tail)
        return None

    def _eval_constructor(self, call: ast.Call, tail: str) -> ArrayVal | None:
        if not call.args:
            return None
        dims = _dims_of_shape(call.args[0])
        dtype_expr = _keyword(call, "dtype")
        dtype: str | None
        if dtype_expr is not None:
            dtype = _dtype_of_expr(dtype_expr)
        elif tail == "full" and len(call.args) >= 2:
            fill = call.args[1]
            if isinstance(fill, ast.Constant) and not isinstance(fill.value, bool):
                dtype = (
                    "float64"
                    if isinstance(fill.value, float)
                    else "int64"
                    if isinstance(fill.value, int)
                    else None
                )
            else:
                dtype = None
        else:
            dtype = "float64"  # numpy's default element type
        if dims is None and dtype is None:
            return None
        return ArrayVal(dims=dims, dtype=dtype)

    def _eval_rng_call(
        self, state: State, call: ast.Call, method: str
    ) -> ArrayVal | None:
        out_expr = _keyword(call, "out")
        if out_expr is not None:
            return self.eval(state, out_expr)
        size_expr = _keyword(call, "size")
        if size_expr is None:
            positional = {
                "random": 0,
                "standard_normal": 0,
                "integers": 2,
                "uniform": 2,
                "normal": 2,
                "exponential": 1,
            }.get(method)
            if positional is not None and len(call.args) > positional:
                size_expr = call.args[positional]
        dims = _dims_of_shape(size_expr) if size_expr is not None else ()
        if method in _RNG_FLOAT_DRAWS:
            return ArrayVal(dims=dims, dtype="float64")
        if method == "integers":
            return ArrayVal(dims=dims, dtype="int64")
        return None

    def _eval_ufunc(
        self, state: State, call: ast.Call, tail: str
    ) -> ArrayVal | None:
        out_expr = _keyword(call, "out")
        if out_expr is not None:
            return self.eval(state, out_expr)
        operands = [self.eval(state, a) for a in call.args[:2]]
        if tail in _UNARY_UFUNCS or len(call.args) < 2:
            src = operands[0] if operands else None
            return src
        left, right = operands[0], operands[1]
        if left is None or right is None:
            return None
        dims: tuple[Dim, ...] | None = None
        if left.dims is not None and right.dims is not None:
            dims, _bad = broadcast_dims(left.dims, right.dims)
        if tail in _BOOL_UFUNCS:
            return ArrayVal(dims=dims, dtype="bool")
        dtype, _widened = promote_dtype(left.dtype, right.dtype)
        return ArrayVal(dims=dims, dtype=dtype)

    def ufunc_result(
        self, state: State, call: ast.Call, tail: str
    ) -> tuple[ArrayVal | None, bool, bool]:
        """Result ignoring ``out=``: ``(value, shape_conflict, widening)``."""
        if tail in _UNARY_UFUNCS or len(call.args) < 2:
            src = self.eval(state, call.args[0]) if call.args else None
            return src, False, False
        left = self.eval(state, call.args[0])
        right = self.eval(state, call.args[1])
        if left is None or right is None:
            return None, False, False
        dims: tuple[Dim, ...] | None = None
        bad = False
        if left.dims is not None and right.dims is not None:
            dims, bad = broadcast_dims(left.dims, right.dims)
        if tail in _BOOL_UFUNCS:
            return ArrayVal(dims=dims, dtype="bool"), bad, False
        dtype, widened = promote_dtype(left.dtype, right.dtype)
        return ArrayVal(dims=dims, dtype=dtype), bad, widened


def _fmt_dims(dims: tuple[Dim, ...]) -> str:
    if len(dims) == 1:
        return f"({dims[0]},)"
    return "(" + ", ".join(str(d) for d in dims) + ")"


class _FunctionChecker:
    """Solves one function and reports RA009 findings."""

    def __init__(self, symbols: SymbolTable, fn: FunctionInfo) -> None:
        self.symbols = symbols
        self.fn = fn
        self.domain = _ArrayDomain(symbols, fn)
        self.violations: list[Violation] = []

    def check(self) -> list[Violation]:
        cfg = build_cfg(self.fn.node)
        entry_states = solve(cfg, self.domain)
        for idx in sorted(entry_states):
            state = entry_states[idx]
            for stmt in cfg.blocks[idx].stmts:
                self._check_stmt(state, stmt)
                state = self.domain.transfer(state, stmt)
        return self.violations

    def _flag(self, node: ast.AST, message: str) -> None:
        self.violations.append(
            Violation(
                path=self.fn.path,
                line=getattr(node, "lineno", self.fn.lineno),
                col=getattr(node, "col_offset", 0),
                rule_id=RULE_ID,
                message=f"{message} in {self.fn.qualname}",
            )
        )

    def _stmt_exprs(self, stmt: ast.stmt) -> list[ast.expr]:
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.iter]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return [item.context_expr for item in stmt.items]
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return []
        return [
            node for node in ast.iter_child_nodes(stmt) if isinstance(node, ast.expr)
        ]

    def _check_stmt(self, state: State, stmt: ast.stmt) -> None:
        stack: list[ast.AST] = list(self._stmt_exprs(stmt))
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Lambda):
                continue
            if isinstance(node, ast.BinOp):
                self._check_binop(state, node)
            elif isinstance(node, ast.Call):
                self._check_call(state, node)
            stack.extend(ast.iter_child_nodes(node))

    def _check_binop(self, state: State, expr: ast.BinOp) -> None:
        _result, bad, widened = self.domain.eval_binop(state, expr)
        if bad:
            left = self.domain.eval(state, expr.left)
            right = self.domain.eval(state, expr.right)
            assert left is not None and right is not None
            assert left.dims is not None and right.dims is not None
            self._flag(
                expr,
                f"broadcast-incompatible shapes {_fmt_dims(left.dims)} and "
                f"{_fmt_dims(right.dims)}",
            )
        if widened:
            left = self.domain.eval(state, expr.left)
            right = self.domain.eval(state, expr.right)
            assert left is not None and right is not None
            self._flag(
                expr,
                f"silent dtype promotion: {left.dtype} combined with "
                f"{right.dtype} allocates a widened temporary",
            )

    def _check_call(self, state: State, call: ast.Call) -> None:
        dotted = annotation_to_dotted(call.func)
        if dotted is None:
            return
        resolved = self.domain._resolve(dotted)
        if not resolved.startswith("numpy."):
            return
        tail = resolved[len("numpy."):]
        if tail not in _BINARY_UFUNCS and tail not in _UNARY_UFUNCS:
            return
        result, bad, widened = self.domain.ufunc_result(state, call, tail)
        if bad and len(call.args) >= 2:
            left = self.domain.eval(state, call.args[0])
            right = self.domain.eval(state, call.args[1])
            assert left is not None and right is not None
            assert left.dims is not None and right.dims is not None
            self._flag(
                call,
                f"broadcast-incompatible shapes {_fmt_dims(left.dims)} and "
                f"{_fmt_dims(right.dims)} in numpy.{tail}",
            )
        if widened and len(call.args) >= 2:
            left = self.domain.eval(state, call.args[0])
            right = self.domain.eval(state, call.args[1])
            assert left is not None and right is not None
            self._flag(
                call,
                f"silent dtype promotion in numpy.{tail}: {left.dtype} "
                f"combined with {right.dtype}",
            )
        out_expr = _keyword(call, "out")
        if out_expr is None or result is None:
            return
        out_val = self.domain.eval(state, out_expr)
        if out_val is None:
            return
        if result.dims is not None and out_val.dims is not None:
            _dims, out_bad = broadcast_dims(result.dims, out_val.dims)
            if out_bad:
                self._flag(
                    call,
                    f"numpy.{tail} result shape {_fmt_dims(result.dims)} "
                    f"cannot broadcast into out= buffer "
                    f"{_fmt_dims(out_val.dims)}",
                )
        if result.dtype is not None and out_val.dtype is not None:
            rk = _DTYPE_KINDS.get(result.dtype)
            ok = _DTYPE_KINDS.get(out_val.dtype)
            if rk is not None and ok is not None and rk[0] == "float" and ok[0] in (
                "int",
                "uint",
            ):
                self._flag(
                    call,
                    f"numpy.{tail} computes {result.dtype} but out= buffer "
                    f"is {out_val.dtype}: silent truncation",
                )


def _imports_numpy(symbols: SymbolTable, module: str) -> bool:
    targets = symbols.imports.get(module, {}).values()
    return any(t == "numpy" or t.startswith("numpy.") for t in targets)


def check_arrays(symbols: SymbolTable) -> list[Violation]:
    """Run the RA009 shape/dtype pass over every numpy-importing module."""
    violations: list[Violation] = []
    for qualname in sorted(symbols.functions):
        fn = symbols.functions[qualname]
        if not _imports_numpy(symbols, fn.module):
            continue
        violations.extend(_FunctionChecker(symbols, fn).check())
    violations.sort()
    return violations

"""RA010 — hidden allocations: the vectorized tick must not allocate.

PR 6's 5.6× emulator speedup rests on ``VectorizedPopulation.step()``
being *zero-allocation*: every kernel writes into preallocated scratch
via ``out=``, so the steady-state tick touches no allocator and no
garbage collector.  That contract was comment-enforced; this pass
machine-checks it.  It walks the functions reachable from the
vectorized step root (same BFS as RA001/RA007/RA008) and flags every
expression that allocates a fresh NumPy array:

* **allocating numpy calls** — any ``numpy.*`` function or
  array-returning method (``take``, ``astype``, ``nonzero``,
  ``searchsorted``, ...) called *without* an ``out=`` buffer;
* **RNG draws without out=** — ``rng.random(k)`` allocates ``k``
  doubles per tick; ``rng.random(out=buf)`` does not;
* **fancy-indexing copies** — a *load* through an array-valued or
  boolean-mask index (``px[camp]``, ``table[:, idx]``) copies, unlike
  basic slicing which views;
* **chained-ufunc temporaries** — elementwise arithmetic whose operand
  is itself a sliced buffer, an allocating call, or a fancy load
  materializes an intermediate the ``out=`` form would avoid.

Setup/teardown functions (RA008's allowlist plus the capacity
machinery ``_allocate``/``_ensure_capacity``) run per spawn burst or
once, not per tick, and are neither scanned nor traversed.  Sites that
are *intentionally* allocating — e.g. the respawn slow path, which runs
only when entities die — carry ``# reprolint: disable=RA010`` pragmas
with justifications, so the allowlist of exceptions is visible in the
diff, reviewed, and ratcheted by ``--baseline``.

The default root set is deliberately narrower than RA008's: only the
vectorized engine promises zero allocation.  The reference engine
(``EntityPopulation``) is the readable spec and allocates freely.
"""

from __future__ import annotations

import ast
from collections import deque

from repro.analysis.callgraph import CallGraph
from repro.analysis.hotpath import DEFAULT_SETUP_NAMES, _is_setup
from repro.analysis.purity import DEFAULT_BOUNDARY_PREFIXES, _format_chain
from repro.analysis.symbols import FunctionInfo, SymbolTable, annotation_to_dotted
from repro.lint.engine import Violation

__all__ = ["DEFAULT_ALLOCATION_ROOTS", "DEFAULT_ALLOCATION_SETUP_NAMES", "check_allocations"]

RULE_ID = "RA010"

#: Only the vectorized engine signs the zero-allocation contract; the
#: reference engine is the readable spec and allocates by design.
DEFAULT_ALLOCATION_ROOTS: tuple[str, ...] = (
    "repro.emulator.engine.VectorizedPopulation.step",
)

#: RA008's setup allowlist plus the SoA capacity machinery: growth is
#: amortized-rare by the doubling policy, so its allocations are not
#: per-tick cost.
DEFAULT_ALLOCATION_SETUP_NAMES: frozenset[str] = DEFAULT_SETUP_NAMES | {
    "_allocate",
    "_ensure_capacity",
}

#: numpy module functions that never allocate an array (bookkeeping,
#: scalar predicates, in-place or context helpers).
_NONALLOCATING_NUMPY = frozenset(
    {
        "numpy.copyto",  # writes into dst in place
        "numpy.errstate",
        "numpy.seterr",
        "numpy.isscalar",
        "numpy.shares_memory",
        "numpy.may_share_memory",
        "numpy.dtype",
        "numpy.isclose",
        "numpy.allclose",
        "numpy.array_equal",
        "numpy.ndim",
        "numpy.size",
        "numpy.result_type",
        "numpy.can_cast",
        "numpy.promote_types",
    }
)

#: Array methods that return a *fresh* array (copies, gathers, scans).
_ALLOCATING_METHODS = frozenset(
    {
        "take",
        "copy",
        "astype",
        "nonzero",
        "cumsum",
        "cumprod",
        "searchsorted",
        "repeat",
        "flatten",
        "compress",
        "choose",
        "clip",
        "round",
        "argsort",
        "argmax",
        "argmin",
    }
)

#: Generator draw methods: allocate unless handed an ``out=`` buffer.
_RNG_DRAWS = frozenset(
    {
        "random",
        "uniform",
        "normal",
        "standard_normal",
        "integers",
        "choice",
        "exponential",
        "shuffle",  # in-place but listed so the except-branch is explicit
        "permutation",
    }
)

#: Draw methods that do NOT allocate (in-place by definition).
_RNG_INPLACE = frozenset({"shuffle"})

_ARITH_OPS = (
    ast.Add,
    ast.Sub,
    ast.Mult,
    ast.Div,
    ast.FloorDiv,
    ast.Mod,
    ast.Pow,
)


def _has_out_kwarg(call: ast.Call) -> bool:
    return any(kw.arg == "out" for kw in call.keywords)


def _is_rng_receiver(expr: ast.expr) -> bool:
    path = annotation_to_dotted(expr)
    if path is None:
        return False
    return "rng" in path.rsplit(".", 1)[-1].lower()


def _is_scalar_int_expr(value: ast.expr) -> bool:
    if isinstance(value, ast.Constant):
        return isinstance(value.value, int) and not isinstance(value.value, bool)
    # ``_AGGRESSIVE = int(AIProfile.AGGRESSIVE)`` / ``_N = len(TABLE)``:
    # module-level scalar derivations are still scalar indices.
    return (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id in ("int", "len")
    )


def _module_int_constants(symbols: SymbolTable, module: str) -> frozenset[str]:
    """Module-level names bound to scalar integers (``_VMIN = 0``)."""
    names: set[str] = set()
    mod = symbols.project.modules.get(module)
    if mod is None:
        return frozenset()
    for stmt in mod.tree.body:
        value: ast.expr | None = None
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            value = stmt.value
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value = stmt.value
            targets = [stmt.target]
        if value is not None and _is_scalar_int_expr(value):
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return frozenset(names)


class _FunctionScanner:
    """Finds allocating expressions inside one step-reachable function."""

    def __init__(self, symbols: SymbolTable, fn: FunctionInfo, chain: str) -> None:
        self.symbols = symbols
        self.fn = fn
        self.chain = chain
        self.violations: list[Violation] = []
        self._int_constants = _module_int_constants(symbols, fn.module)

    def scan(self) -> list[Violation]:
        for stmt in ast.walk(self.fn.node):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if stmt is not self.fn.node:
                    continue
                self._scan_body(stmt)
        return self.violations

    def _scan_body(self, fn_node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        stack: list[ast.AST] = list(fn_node.body)
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
            ):
                continue
            if isinstance(node, ast.Call):
                self._check_call(node)
            elif isinstance(node, ast.Subscript):
                if isinstance(node.ctx, ast.Load) and self._is_fancy_index(node.slice):
                    self._flag(
                        node,
                        "fancy-indexing load copies (basic slices view; "
                        "gather into preallocated scratch with take(out=))",
                    )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, _ARITH_OPS):
                if self._is_array_operand(node.left) or self._is_array_operand(
                    node.right
                ):
                    self._flag(
                        node,
                        "elementwise arithmetic materializes a temporary "
                        "(use the ufunc's out= form)",
                    )
            stack.extend(ast.iter_child_nodes(node))

    # -- classification ----------------------------------------------------

    def _check_call(self, call: ast.Call) -> None:
        func = call.func
        if isinstance(func, ast.Attribute):
            method = func.attr
            if _is_rng_receiver(func.value):
                if method in _RNG_DRAWS and method not in _RNG_INPLACE:
                    if not _has_out_kwarg(call):
                        self._flag(
                            call,
                            f"rng.{method} draw allocates "
                            "(draw into a preallocated buffer with out=)",
                        )
                return
            if method in _ALLOCATING_METHODS and not _has_out_kwarg(call):
                self._flag(
                    call,
                    f".{method}() returns a fresh array "
                    "(use the out= form or preallocated scratch)",
                )
                return
        dotted = annotation_to_dotted(func)
        if dotted is None:
            return
        resolved = self.symbols.canonicalize(
            self.symbols.resolve(self.fn.module, dotted)
        )
        if not resolved.startswith("numpy."):
            return
        if resolved in _NONALLOCATING_NUMPY:
            return
        if resolved.startswith("numpy.random."):
            # Global-RNG draws are RA003's beat; here they also allocate.
            if not _has_out_kwarg(call):
                self._flag(call, f"{resolved} draw allocates")
            return
        if not _has_out_kwarg(call):
            tail = resolved[len("numpy."):]
            self._flag(
                call,
                f"numpy.{tail} without out= allocates a fresh array",
            )

    def _is_fancy_index(self, index: ast.expr) -> bool:
        """True when the subscript is advanced indexing (a copy)."""
        elements = index.elts if isinstance(index, ast.Tuple) else [index]
        return any(not self._is_basic_element(e) for e in elements)

    def _is_basic_element(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Slice):
            return True
        if isinstance(expr, ast.Constant):
            return True
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.operand, ast.Constant):
            return True
        if isinstance(expr, ast.Name):
            # Module-level integer constants (_VMIN, _AGGRESSIVE) are
            # scalar indices; anything else could be an index array.
            return expr.id in self._int_constants
        return False

    def _is_array_operand(self, expr: ast.expr) -> bool:
        """Syntactically array-valued: a sliced/fancy buffer load or an
        allocating call.  Plain names and attributes are *not* counted —
        without dataflow they are as likely scalars, and RA010 reports
        only what it can prove."""
        if isinstance(expr, ast.Subscript) and isinstance(expr.ctx, ast.Load):
            elements = (
                expr.slice.elts if isinstance(expr.slice, ast.Tuple) else [expr.slice]
            )
            return any(not isinstance(e, ast.Constant) for e in elements)
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Attribute):
                if _is_rng_receiver(func.value) and func.attr in _RNG_DRAWS:
                    return not _has_out_kwarg(expr)
                if func.attr in _ALLOCATING_METHODS:
                    return not _has_out_kwarg(expr)
            dotted = annotation_to_dotted(func)
            if dotted is not None:
                resolved = self.symbols.canonicalize(
                    self.symbols.resolve(self.fn.module, dotted)
                )
                return (
                    resolved.startswith("numpy.")
                    and resolved not in _NONALLOCATING_NUMPY
                    and not _has_out_kwarg(expr)
                )
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, _ARITH_OPS):
            return self._is_array_operand(expr.left) or self._is_array_operand(
                expr.right
            )
        return False

    # -- reporting ---------------------------------------------------------

    def _flag(self, node: ast.AST, message: str) -> None:
        self.violations.append(
            Violation(
                path=self.fn.path,
                line=getattr(node, "lineno", self.fn.lineno),
                col=getattr(node, "col_offset", 0),
                rule_id=RULE_ID,
                message=(
                    f"{message} in step-reachable {self.fn.qualname} "
                    f"[chain: {self.chain}]"
                ),
            )
        )


def check_allocations(
    symbols: SymbolTable,
    graph: CallGraph,
    *,
    roots: tuple[str, ...] = DEFAULT_ALLOCATION_ROOTS,
    boundary_prefixes: tuple[str, ...] = DEFAULT_BOUNDARY_PREFIXES,
    setup_names: frozenset[str] = DEFAULT_ALLOCATION_SETUP_NAMES,
) -> list[Violation]:
    """Flag NumPy allocations reachable from the zero-allocation roots."""

    def in_boundary(module: str) -> bool:
        return any(
            module == p or module.startswith(p + ".") for p in boundary_prefixes
        )

    parents: dict[str, str | None] = {}
    queue: deque[str] = deque()
    for root in roots:
        if root in symbols.functions and root not in parents:
            parents[root] = None
            queue.append(root)

    violations: list[Violation] = []
    while queue:
        qualname = queue.popleft()
        fn = symbols.functions[qualname]
        if in_boundary(fn.module):
            continue
        if _is_setup(fn.name, setup_names):
            continue  # capacity growth and setup: amortized, not per-tick
        chain = _format_chain(parents, qualname)
        violations.extend(_FunctionScanner(symbols, fn, chain).scan())
        for site in graph.callees(qualname):
            if site.callee not in parents and site.callee in symbols.functions:
                parents[site.callee] = qualname
                queue.append(site.callee)
    violations.sort()
    return violations

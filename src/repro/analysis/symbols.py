"""Project-wide symbol table: functions, classes, imports, globals.

This is the name-resolution substrate every interprocedural pass shares.
It answers three questions the per-file linter cannot:

* *what does this dotted name mean here?* — :meth:`SymbolTable.resolve`
  maps a local name through the module's imports (including relative
  imports) to a canonical dotted path;
* *where is it actually defined?* — :meth:`SymbolTable.canonicalize`
  follows re-export chains through package ``__init__`` modules until
  it lands on a real definition (or leaves the project);
* *what type is this attribute?* — :class:`ClassInfo` records attribute
  types from dataclass fields, ``self.x = <annotated param>``
  assignments in ``__init__``, and ``@property`` return annotations.

Annotations are read structurally (``Name``/``Attribute``/``"quoted"``
constants, with ``Optional[X]``/``X | None`` stripped); anything fancier
resolves to "unknown", which every pass treats as "do not flag".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.project import Project

__all__ = [
    "AnnRef",
    "FunctionInfo",
    "ClassInfo",
    "SymbolTable",
    "annotation_to_dotted",
    "element_annotation",
    "mapping_annotations",
]


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str
    module: str
    name: str
    path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: str | None = None  # owning class qualname for methods

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass
class ClassInfo:
    """One class definition plus what the passes need to know about it."""

    qualname: str
    module: str
    name: str
    path: str
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)  # canonical dotted names
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    attr_types: dict[str, str] = field(default_factory=dict)  # attr -> canonical type
    #: attr -> raw annotation AST (resolvable in ``module``); keeps the
    #: generic structure (``list[tuple[DataCenter, Lease]]``) that the
    #: dotted form above erases, so the call graph can type loop
    #: variables drawn out of annotated containers.
    attr_annotations: dict[str, ast.expr] = field(default_factory=dict)


@dataclass(frozen=True)
class AnnRef:
    """An annotation AST plus the module whose imports resolve it."""

    node: ast.expr
    module: str


def annotation_to_dotted(node: ast.expr | None) -> str | None:
    """Extract a dotted type name from an annotation AST, or ``None``.

    ``Optional[X]`` and ``X | None`` unwrap to ``X``; string-literal
    (forward-reference) annotations are parsed and recursed into; any
    other shape — unions of two real types, generics, callables — is
    deliberately "unknown" so downstream passes stay silent about it.
    """
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = annotation_to_dotted(node.value)
        return None if base is None else f"{base}.{node.attr}"
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            parsed = ast.parse(node.value, mode="eval")
        except SyntaxError:
            return None
        return annotation_to_dotted(parsed.body)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = annotation_to_dotted(node.left)
        right = annotation_to_dotted(node.right)
        sides = [s for s in (left, right) if s is not None and s != "None"]
        return sides[0] if len(sides) == 1 else None
    if isinstance(node, ast.Subscript):
        head = annotation_to_dotted(node.value)
        if head in ("Optional", "typing.Optional"):
            return annotation_to_dotted(node.slice)
        return None
    return None


#: Subscript heads whose single argument is the iteration element type.
_SEQUENCE_HEADS = frozenset(
    {
        "list",
        "List",
        "set",
        "Set",
        "frozenset",
        "FrozenSet",
        "deque",
        "Deque",
        "Sequence",
        "MutableSequence",
        "Iterable",
        "Iterator",
        "Collection",
        "AbstractSet",
    }
)

#: Subscript heads that behave like ``tuple``.
_TUPLE_HEADS = frozenset({"tuple", "Tuple"})

#: Subscript heads that behave like ``dict`` (iteration yields keys).
_MAPPING_HEADS = frozenset(
    {"dict", "Dict", "Mapping", "MutableMapping", "defaultdict", "OrderedDict"}
)


def _unquote_annotation(node: ast.expr | None) -> ast.expr | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            return ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    return node


def _subscript_head(node: ast.Subscript) -> str | None:
    dotted = annotation_to_dotted(node.value)
    return dotted.rsplit(".", 1)[-1] if dotted else None


def element_annotation(node: ast.expr | None) -> ast.expr | None:
    """Annotation a ``for`` target binds when iterating this type.

    ``list[T]``/``Sequence[T]`` → ``T``; ``tuple[T, ...]`` → ``T``;
    a heterogeneous ``tuple[X, Y]`` returns the ``ast.Tuple`` slice so
    callers can unpack it positionally; ``dict[K, V]`` → ``K``.
    Anything else is unknown (``None``).
    """
    node = _unquote_annotation(node)
    if not isinstance(node, ast.Subscript):
        return None
    head = _subscript_head(node)
    if head is None:
        return None
    inner = node.slice
    if head in _SEQUENCE_HEADS:
        return None if isinstance(inner, ast.Tuple) else inner
    if head in _TUPLE_HEADS:
        if isinstance(inner, ast.Tuple):
            elements = inner.elts
            if (
                len(elements) == 2
                and isinstance(elements[1], ast.Constant)
                and elements[1].value is Ellipsis
            ):
                return elements[0]
            return inner  # heterogeneous: caller unpacks positionally
        return inner
    if head in _MAPPING_HEADS:
        if isinstance(inner, ast.Tuple) and inner.elts:
            return inner.elts[0]
    return None


def mapping_annotations(
    node: ast.expr | None,
) -> tuple[ast.expr, ast.expr] | None:
    """``(key, value)`` annotations of a mapping type, or ``None``."""
    node = _unquote_annotation(node)
    if not isinstance(node, ast.Subscript):
        return None
    head = _subscript_head(node)
    if head not in _MAPPING_HEADS:
        return None
    inner = node.slice
    if isinstance(inner, ast.Tuple) and len(inner.elts) == 2:
        return inner.elts[0], inner.elts[1]
    return None


def _iter_imports(
    tree: ast.Module, module: str, *, is_package: bool
) -> list[tuple[str, str]]:
    """All ``(local_name, canonical_target)`` bindings in ``module``.

    Includes imports under ``if TYPE_CHECKING:`` — they matter for
    annotation resolution even though they never execute (the import
    *graph* pass does its own walk and skips those).
    """
    parts = module.split(".")
    # Level-1 relative imports anchor at the containing package: the
    # module itself when it *is* a package (__init__), its parent
    # otherwise.  Each extra level drops one more component.
    package_parts = parts if is_package else parts[:-1]
    out: list[tuple[str, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    out.append((alias.asname, alias.name))
                else:
                    head = alias.name.split(".", 1)[0]
                    out.append((head, head))
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                anchor = package_parts[: len(package_parts) - (node.level - 1)]
                base = ".".join(anchor + ([node.module] if node.module else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                target = f"{base}.{alias.name}" if base else alias.name
                out.append((alias.asname or alias.name, target))
    return out


class SymbolTable:
    """Definitions and import bindings for every module in a project."""

    def __init__(self, project: "Project") -> None:
        self.project = project
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: module -> local name -> dotted target (imports only).
        self.imports: dict[str, dict[str, str]] = {}
        #: module -> top-level assigned names (constants, NewTypes, ...).
        self.module_globals: dict[str, set[str]] = {}
        #: class qualname -> direct subclass qualnames.
        self.subclasses: dict[str, set[str]] = {}
        self._build()

    # -- construction ------------------------------------------------------

    def _build(self) -> None:
        for mod in self.project.sorted_modules():
            is_package = mod.path.replace("\\", "/").endswith("__init__.py")
            self.imports[mod.name] = dict(
                _iter_imports(mod.tree, mod.name, is_package=is_package)
            )
            self.module_globals[mod.name] = set()
            for stmt in mod.tree.body:
                self._index_toplevel(mod.name, mod.path, stmt)
        self._resolve_bases()
        self._infer_attr_types()

    def _index_toplevel(self, module: str, path: str, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{module}.{stmt.name}"
            self.functions[qualname] = FunctionInfo(
                qualname=qualname, module=module, name=stmt.name, path=path, node=stmt
            )
        elif isinstance(stmt, ast.ClassDef):
            qualname = f"{module}.{stmt.name}"
            info = ClassInfo(
                qualname=qualname,
                module=module,
                name=stmt.name,
                path=path,
                node=stmt,
            )
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    meth_qual = f"{qualname}.{item.name}"
                    fn = FunctionInfo(
                        qualname=meth_qual,
                        module=module,
                        name=item.name,
                        path=path,
                        node=item,
                        cls=qualname,
                    )
                    info.methods[item.name] = fn
                    self.functions[meth_qual] = fn
            self.classes[qualname] = info
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.module_globals[module].add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            self.module_globals[module].add(stmt.target.id)
        elif isinstance(stmt, (ast.If, ast.Try)):
            # Conditional definitions (version guards etc.) still count.
            for inner in ast.iter_child_nodes(stmt):
                if isinstance(inner, ast.stmt):
                    self._index_toplevel(module, path, inner)

    def _resolve_bases(self) -> None:
        for info in self.classes.values():
            for base in info.node.bases:
                dotted = annotation_to_dotted(base)
                if dotted is None:
                    continue
                resolved = self.canonicalize(self.resolve(info.module, dotted))
                info.bases.append(resolved)
                if resolved in self.classes:
                    self.subclasses.setdefault(resolved, set()).add(info.qualname)

    def _infer_attr_types(self) -> None:
        for info in self.classes.values():
            for item in info.node.body:
                if isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    self._record_attr(info, item.target.id, item.annotation)
                elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if any(
                        isinstance(dec, ast.Name) and dec.id == "property"
                        for dec in item.decorator_list
                    ):
                        self._record_attr(info, item.name, item.returns)
            init = info.methods.get("__init__")
            if init is not None:
                self._infer_init_attrs(info, init)

    def _record_attr(
        self, info: ClassInfo, attr: str, annotation: ast.expr | None
    ) -> None:
        if annotation is not None and attr not in info.attr_annotations:
            info.attr_annotations[attr] = annotation
        dotted = annotation_to_dotted(annotation)
        if dotted is None:
            return
        info.attr_types[attr] = self.canonicalize(self.resolve(info.module, dotted))

    def _infer_init_attrs(self, info: ClassInfo, init: FunctionInfo) -> None:
        params: dict[str, ast.expr | None] = {}
        args = init.node.args
        for a in args.posonlyargs + args.args + args.kwonlyargs:
            params[a.arg] = a.annotation
        for stmt in ast.walk(init.node):
            target: ast.expr | None = None
            value: ast.expr | None = None
            annotation: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value, annotation = stmt.target, stmt.value, stmt.annotation
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr = target.attr
            if annotation is not None:
                self._record_attr(info, attr, annotation)
            elif isinstance(value, ast.Name) and value.id in params:
                self._record_attr(info, attr, params[value.id])
            elif isinstance(value, ast.Call):
                # ``self.centers = list(centers)``: identity container
                # wrappers preserve the parameter's element type.
                func_dotted = annotation_to_dotted(value.func)
                if (
                    func_dotted in ("list", "tuple", "sorted")
                    and len(value.args) == 1
                    and isinstance(value.args[0], ast.Name)
                    and value.args[0].id in params
                ):
                    self._record_attr(info, attr, params[value.args[0].id])
                elif func_dotted is not None:
                    resolved = self.canonicalize(self.resolve(info.module, func_dotted))
                    if resolved in self.classes and attr not in info.attr_types:
                        info.attr_types[attr] = resolved

    # -- resolution --------------------------------------------------------

    def resolve(self, module: str, dotted: str) -> str:
        """Resolve a dotted name as written in ``module`` to a canonical
        dotted path (local definitions win over imports; unknown names
        pass through unchanged, mirroring the linter's ImportMap)."""
        head, _, rest = dotted.partition(".")
        local_qual = f"{module}.{head}"
        if (
            local_qual in self.functions
            or local_qual in self.classes
            or head in self.module_globals.get(module, ())
        ):
            return f"{local_qual}.{rest}" if rest else local_qual
        target = self.imports.get(module, {}).get(head)
        if target is not None:
            return f"{target}.{rest}" if rest else target
        return dotted

    def canonicalize(self, dotted: str) -> str:
        """Follow re-export chains until ``dotted`` names a definition.

        ``repro.core.DynamicProvisioner`` (imported from the package
        ``__init__``) canonicalizes to
        ``repro.core.provisioner.DynamicProvisioner``.  External names
        return unchanged; cycles terminate via a visited set.
        """
        seen: set[str] = set()
        current = dotted
        while current not in seen:
            seen.add(current)
            if (
                current in self.functions
                or current in self.classes
                or current in self.project.modules
            ):
                return current
            owner, attr = self._split_on_module(current)
            if owner is None or attr is None:
                return current
            head, _, rest = attr.partition(".")
            if head in self.module_globals.get(owner, ()):
                return current
            target = self.imports.get(owner, {}).get(head)
            if target is None:
                return current
            current = f"{target}.{rest}" if rest else target
        return current

    def _split_on_module(self, dotted: str) -> tuple[str | None, str | None]:
        """Split ``dotted`` as ``(project_module, remainder)`` using the
        longest module prefix, or ``(None, None)``."""
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.project.modules:
                return prefix, ".".join(parts[cut:])
        return None, None

    # -- class queries -----------------------------------------------------

    def lookup_method(self, class_qualname: str, method: str) -> FunctionInfo | None:
        """First definition of ``method`` along the (project-visible)
        inheritance chain, depth-first left-to-right."""
        seen: set[str] = set()
        stack = [class_qualname]
        while stack:
            qual = stack.pop(0)
            if qual in seen:
                continue
            seen.add(qual)
            info = self.classes.get(qual)
            if info is None:
                continue
            if method in info.methods:
                return info.methods[method]
            stack = info.bases + stack
        return None

    def all_subclasses(self, class_qualname: str) -> set[str]:
        """Transitive subclasses of ``class_qualname`` in the project."""
        out: set[str] = set()
        stack = list(self.subclasses.get(class_qualname, ()))
        while stack:
            qual = stack.pop()
            if qual in out:
                continue
            out.add(qual)
            stack.extend(self.subclasses.get(qual, ()))
        return out

"""Orchestration for ``repro analyze``: run the whole-program passes
over a project and aggregate one :class:`~repro.lint.engine.LintReport`.

The report type, exit-code contract (0 clean / 1 findings / 2 engine
errors), output formats, and suppression pragmas are all shared with
``repro.lint`` — ``# reprolint: disable=RA001`` on the offending line
or ``# reprolint: disable-file=RA002`` suppress analyzer findings
exactly like lint findings, and each tool accepts (ignores) the other
tool's rule ids inside pragmas so one comment can serve both.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.analysis.allocations import check_allocations
from repro.analysis.arrays import check_arrays
from repro.analysis.async_blocking import check_async_blocking
from repro.analysis.async_sharing import check_async_sharing
from repro.analysis.async_tasks import check_async_tasks
from repro.analysis.callgraph import CallGraph
from repro.analysis.dimensions import check_dimensions
from repro.analysis.exceptions import check_exceptions
from repro.analysis.graphchecks import check_dead_experiments, check_import_cycles
from repro.analysis.hotpath import check_hotpath
from repro.analysis.defaultdrift import check_default_drift
from repro.analysis.intervals import check_intervals
from repro.analysis.knobs import check_knobs
from repro.analysis.parallel_safety import check_parallel_safety
from repro.analysis.project import Project
from repro.analysis.purity import (
    DEFAULT_BOUNDARY_PREFIXES,
    DEFAULT_ROOTS,
    check_purity,
)
from repro.analysis.restartability import check_restartability
from repro.analysis.rngflow import check_rng_flow
from repro.analysis.rngstream import check_rngstream
from repro.analysis.scenariovalues import check_scenario_values
from repro.analysis.seedrouting import check_seed_routing
from repro.analysis.spans import check_spans
from repro.analysis.symbols import SymbolTable
from repro.lint.engine import (
    ANALYSIS_RULE_IDS,
    LintReport,
    Violation,
    suppression_tables,
)
from repro.lint.rules import all_rules

__all__ = ["PASS_SUMMARIES", "analyze_project", "analyze_paths"]

#: ``{rule_id: summary}`` for ``repro analyze --list-passes``.
PASS_SUMMARIES: dict[str, str] = {
    "RA001": "phase purity: step-loop-reachable functions free of I/O, "
    "wall-clock, env access, and module-global mutation",
    "RA002": "dimensional analysis: no cross-dimension arithmetic, "
    "comparison, argument passing, or returns (Cpu/Mem/NetIn/NetOut)",
    "RA003": "RNG flow: no unseeded or module-level-shared RNG reaching "
    "simulation code",
    "RA004": "import cycles: no runtime import cycles between project modules",
    "RA005": "dead experiments: every experiment module registered in the CLI",
    "RA006": "interval analysis: no provably-negative resource quantities, "
    "divisions by zero-able capacities, or fraction/percent mixups",
    "RA007": "exception flow: no accidental exception types escaping the "
    "step loop uncaught; no over-broad handlers on the hot path",
    "RA008": "hot-path cost: no nested unbounded iteration, per-tick "
    "collection building, or O(n) list membership in step-reachable code",
    "RA009": "array shapes/dtypes: no broadcast-incompatible shapes, silent "
    "dtype promotions, or out= mismatches in numpy-using code",
    "RA010": "hidden allocations: no allocating numpy call (missing out=, "
    "fancy-index copy, ufunc temporary) reachable from the vectorized step",
    "RA011": "RNG-stream symmetry: reference and vectorized engines consume "
    "identical Generator draw sequences (the bitwise-equivalence contract)",
    "RA012": "parallel safety: nothing unpicklable, stream-duplicating, or "
    "share-mutating crosses a multiprocessing boundary",
    "RA013": "async blocking: no sync sleep, file/socket I/O, or CPU-heavy "
    "simulation entry point runs on the event loop (to_thread is free)",
    "RA014": "task lifecycle: no fire-and-forget create_task, unawaited "
    "coroutine, or swallowed CancelledError",
    "RA015": "cross-task sharing: state mutated by concurrent coroutine "
    "roots holds a common asyncio lock; no awaits inside critical sections",
    "RA016": "tick restartability: served tick-loop state lives in declared "
    "@checkpointable dataclasses, never module/closure hiding places",
    "RA017": "config reachability: every declared scenario knob is consumed "
    "by run-reachable code; no undeclared literal pins shadow the schema",
    "RA018": "scenario values: literal Scenario(...) arguments and schema "
    "defaults respect declared units, bounds, dimensions, and mix sums",
    "RA019": "default drift: schema defaults provably agree with the "
    "simulator defaults they bind (or carry an explicit override marker)",
    "RA020": "seed routing: every stochastic draw reachable from the "
    "scenario-run roots derives from the scenario's declared seed",
    "RA021": "instrumentation coverage: every reachable phase root opens a "
    "span; orphan spans and `with span(...)` across await are flagged",
}


def _known_pragma_ids() -> frozenset[str]:
    return ANALYSIS_RULE_IDS | frozenset(r.rule_id for r in all_rules())


def _apply_suppressions(project: Project, report: LintReport) -> None:
    """Filter suppressed violations; record bad pragma ids as errors."""
    known = _known_pragma_ids()
    per_path: dict[str, tuple[dict[int, set[str]], set[str]]] = {}
    seen_paths: set[str] = set()
    for module in project.sorted_modules():
        if module.path in seen_paths:
            continue
        seen_paths.add(module.path)
        per_line, whole_file, bad = suppression_tables(module.source, known)
        per_path[module.path] = (per_line, whole_file)
        for line_no, rule_id in bad:
            report.errors.append(
                f"{module.path}:{line_no}: bad-suppression: "
                f"unknown rule id {rule_id!r}"
            )

    kept: list[Violation] = []
    for violation in report.violations:
        tables = per_path.get(violation.path)
        if tables is not None:
            per_line, whole_file = tables
            if violation.rule_id in whole_file:
                continue
            if violation.rule_id in per_line.get(violation.line, ()):
                continue
        kept.append(violation)
    report.violations[:] = kept


def analyze_project(
    project: Project,
    *,
    passes: Sequence[str] | None = None,
    roots: tuple[str, ...] = DEFAULT_ROOTS,
    boundary_prefixes: tuple[str, ...] = DEFAULT_BOUNDARY_PREFIXES,
) -> LintReport:
    """Run the selected analysis passes (default: all) over ``project``."""
    selected = set(passes) if passes is not None else set(PASS_SUMMARIES)
    unknown = selected - set(PASS_SUMMARIES)
    report = LintReport(files_checked=len(project))
    if unknown:
        report.errors.append(
            f"unknown analysis pass id(s): {', '.join(sorted(unknown))}"
        )
        return report

    symbols = SymbolTable(project)
    graph: CallGraph | None = None
    if selected & {
        "RA001",
        "RA007",
        "RA008",
        "RA010",
        "RA013",
        "RA015",
        "RA016",
        "RA017",
        "RA020",
        "RA021",
    }:
        graph = CallGraph.build(project, symbols)
    if "RA001" in selected and graph is not None:
        report.violations.extend(
            check_purity(
                symbols, graph, roots=roots, boundary_prefixes=boundary_prefixes
            )
        )
    if "RA002" in selected:
        report.violations.extend(check_dimensions(symbols))
    if "RA003" in selected:
        report.violations.extend(check_rng_flow(symbols))
    if "RA004" in selected:
        report.violations.extend(check_import_cycles(project))
    if "RA005" in selected:
        report.violations.extend(check_dead_experiments(project))
    if "RA006" in selected:
        report.violations.extend(check_intervals(symbols))
    if "RA007" in selected and graph is not None:
        report.violations.extend(
            check_exceptions(
                symbols, graph, roots=roots, boundary_prefixes=boundary_prefixes
            )
        )
    if "RA008" in selected and graph is not None:
        report.violations.extend(
            check_hotpath(
                symbols, graph, roots=roots, boundary_prefixes=boundary_prefixes
            )
        )
    if "RA009" in selected:
        report.violations.extend(check_arrays(symbols))
    if "RA010" in selected and graph is not None:
        report.violations.extend(
            check_allocations(symbols, graph, boundary_prefixes=boundary_prefixes)
        )
    if "RA011" in selected:
        report.violations.extend(check_rngstream(symbols))
    if "RA012" in selected:
        report.violations.extend(check_parallel_safety(symbols))
    if "RA013" in selected and graph is not None:
        report.violations.extend(
            check_async_blocking(
                symbols, graph, boundary_prefixes=boundary_prefixes
            )
        )
    if "RA014" in selected:
        report.violations.extend(check_async_tasks(symbols))
    if "RA015" in selected and graph is not None:
        report.violations.extend(
            check_async_sharing(
                symbols, graph, boundary_prefixes=boundary_prefixes
            )
        )
    if "RA016" in selected and graph is not None:
        report.violations.extend(check_restartability(symbols, graph))
    if "RA017" in selected and graph is not None:
        report.violations.extend(check_knobs(symbols, graph))
    if "RA018" in selected:
        report.violations.extend(check_scenario_values(symbols))
    if "RA019" in selected:
        report.violations.extend(check_default_drift(symbols))
    if "RA020" in selected and graph is not None:
        report.violations.extend(check_seed_routing(symbols, graph))
    if "RA021" in selected and graph is not None:
        report.violations.extend(check_spans(symbols, graph))

    _apply_suppressions(project, report)
    report.violations.sort()
    return report


def analyze_paths(
    paths: Sequence[str | Path],
    *,
    root: Path | None = None,
    passes: Sequence[str] | None = None,
    roots: tuple[str, ...] = DEFAULT_ROOTS,
    boundary_prefixes: tuple[str, ...] = DEFAULT_BOUNDARY_PREFIXES,
    jobs: int = 1,
) -> LintReport:
    """Load ``paths`` into a project and analyze it (the CLI entry).

    ``jobs > 1`` fans the per-file read+parse across spawn workers;
    the report is byte-identical to a serial run (order-preserving
    ``spawn_map``, analysis itself stays whole-program in-process).
    """
    project, load_errors = Project.from_paths(paths, root=root, jobs=jobs)
    if not project.modules and not load_errors:
        report = LintReport()
        report.errors.append(
            f"no python files found under: {', '.join(map(str, paths))}"
        )
        return report
    report = analyze_project(
        project, passes=passes, roots=roots, boundary_prefixes=boundary_prefixes
    )
    report.errors.extend(load_errors)
    return report

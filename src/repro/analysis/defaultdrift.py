"""RA019 — default-drift: schema defaults vs the defaults they shadow.

Every knob with a ``binds`` target shadows a simulator default — a
dataclass field, a function parameter, or a module constant.  When the
two sides drift apart, documents that omit the key silently behave
differently from the simulator's own documentation; this pass keeps
them provably in agreement:

* ``binds`` target missing entirely → finding (the simulator side was
  renamed or removed; the knob now points at nothing);
* defaults differ without ``override=True`` → finding (accidental
  drift);
* defaults *match* but the knob carries ``override=True`` → finding
  (a stale marker claiming a divergence that no longer exists).

Defaults are compared structurally: numeric literals by value (seeing
through single-argument wrappers like ``Cpu(0.37)`` and module-constant
indirections like ``capacity: int = DEFAULT_SERVER_CAPACITY``), string
and enum-attribute defaults case-insensitively on their final
component (``LatencyClass.VERY_FAR`` vs ``"very_far"``).  Unresolvable
defaults are skipped, never flagged.
"""

from __future__ import annotations

import ast

from repro.analysis.knobs import KnobDecl, collect_knobs
from repro.analysis.symbols import SymbolTable, annotation_to_dotted
from repro.lint.engine import Violation

__all__ = ["check_default_drift"]

#: Sentinel results of default resolution.
_MISSING = object()
_UNKNOWN = object()


def _resolve_target_default(symbols: SymbolTable, binds: str) -> object:
    """The literal default of a binds target, ``_MISSING`` when the
    target does not exist, ``_UNKNOWN`` when it exists but the default
    cannot be evaluated statically."""
    owner, _, attr = binds.rpartition(".")
    # Class field: ``pkg.mod.Class.field``.
    info = symbols.classes.get(symbols.canonicalize(owner))
    if info is not None:
        return _class_field_default(symbols, info.module, info.node, attr)
    # Function parameter: ``pkg.mod.func.param``.
    fn = symbols.functions.get(symbols.canonicalize(owner))
    if fn is not None:
        return _parameter_default(symbols, fn.module, fn.node, attr)
    # Module constant: ``pkg.mod.CONST``.
    module = symbols.project.modules.get(symbols.canonicalize(owner))
    if module is None:
        # ``binds`` may name a re-exported constant; canonicalize the
        # whole path and split again.
        canonical = symbols.canonicalize(binds)
        owner, _, attr = canonical.rpartition(".")
        module = symbols.project.modules.get(owner)
    if module is None:
        return _MISSING
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == attr:
                    return _fold_default(symbols, module.name, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if (
                isinstance(stmt.target, ast.Name)
                and stmt.target.id == attr
                and stmt.value is not None
            ):
                return _fold_default(symbols, module.name, stmt.value)
    return _MISSING


def _class_field_default(
    symbols: SymbolTable, module: str, node: ast.ClassDef, field: str
) -> object:
    for stmt in node.body:
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == field
        ):
            if stmt.value is None:
                return _UNKNOWN
            return _fold_default(symbols, module, stmt.value)
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == field:
                    return _fold_default(symbols, module, stmt.value)
    init = symbols.classes.get(f"{module}.{node.name}")
    if init is not None and "__init__" in init.methods:
        return _parameter_default(
            symbols, module, init.methods["__init__"].node, field
        )
    return _MISSING


def _parameter_default(
    symbols: SymbolTable,
    module: str,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    param: str,
) -> object:
    args = node.args
    positional = args.posonlyargs + args.args
    defaults: dict[str, ast.expr] = {}
    for arg, default in zip(reversed(positional), reversed(args.defaults)):
        defaults[arg.arg] = default
    for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
        if kw_default is not None:
            defaults[arg.arg] = kw_default
    if param not in {a.arg for a in positional + args.kwonlyargs}:
        return _MISSING
    if param not in defaults:
        return _UNKNOWN  # a required parameter has no default to drift
    return _fold_default(symbols, module, defaults[param])


def _fold_default(
    symbols: SymbolTable, module: str, node: ast.expr
) -> object:
    """Evaluate a default expression to a comparable literal.

    Numeric/string constants fold directly; ``Wrapper(0.37)`` with one
    literal argument folds to the argument (the ``NewType``/dataclass
    wrapper idiom); an attribute or name folds to the module constant
    it resolves to when possible, else to its final dotted component
    (the enum-member case).
    """
    if isinstance(node, ast.Constant):
        value = node.value
        if isinstance(value, (int, float, str)) and not isinstance(value, bool):
            return value
        return _UNKNOWN
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _fold_default(symbols, module, node.operand)
        if isinstance(inner, (int, float)):
            return -inner
        return _UNKNOWN
    if isinstance(node, ast.Call) and len(node.args) == 1 and not node.keywords:
        return _fold_default(symbols, module, node.args[0])
    if isinstance(node, (ast.Name, ast.Attribute)):
        dotted = annotation_to_dotted(node)
        if dotted is None:
            return _UNKNOWN
        resolved = symbols.canonicalize(symbols.resolve(module, dotted))
        constant = _module_constant(symbols, resolved)
        if constant is not _MISSING:
            return constant
        # Not a resolvable constant: compare by the final component
        # (enum members like ``LatencyClass.VERY_FAR``).
        return resolved.rsplit(".", 1)[-1]
    return _UNKNOWN


def _module_constant(symbols: SymbolTable, dotted: str) -> object:
    owner, _, attr = dotted.rpartition(".")
    module = symbols.project.modules.get(owner)
    if module is None or attr not in symbols.module_globals.get(owner, set()):
        return _MISSING
    for stmt in module.tree.body:
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign) and any(
            isinstance(target, ast.Name) and target.id == attr
            for target in stmt.targets
        ):
            value = stmt.value
        elif (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == attr
        ):
            value = stmt.value
        if value is not None and isinstance(value, ast.Constant):
            literal = value.value
            if isinstance(literal, (int, float, str)) and not isinstance(
                literal, bool
            ):
                return literal
            return _UNKNOWN
    return _UNKNOWN


def _defaults_agree(knob_default: object, target_default: object) -> bool:
    if isinstance(knob_default, str) and isinstance(target_default, str):
        return knob_default.lower() == target_default.lower()
    if (
        isinstance(knob_default, (int, float))
        and not isinstance(knob_default, bool)
        and isinstance(target_default, (int, float))
        and not isinstance(target_default, bool)
    ):
        # Drift detection is exact on purpose: the schema default must
        # be the literal the simulator declares, not merely close.
        return float(knob_default) == float(target_default)  # reprolint: disable=RL003
    return knob_default == target_default


def _finding(declaration: KnobDecl, message: str) -> Violation:
    return Violation(
        path=declaration.src_path,
        line=declaration.line,
        col=0,
        rule_id="RA019",
        message=message,
    )


def _binds_module_in_scope(symbols: SymbolTable, binds: str) -> bool:
    """Whether any dotted prefix of ``binds`` is a module of the
    analyzed project.  On a partial tree (a single package passed to
    ``repro analyze``) the simulator side of a binding may simply be
    outside the analysis scope — that is not drift."""
    parts = binds.split(".")
    for end in range(len(parts) - 1, 0, -1):
        prefix = symbols.canonicalize(".".join(parts[:end]))
        if prefix in symbols.project.modules:
            return True
    return False


def check_default_drift(symbols: SymbolTable) -> list[Violation]:
    """Run the RA019 checks; empty when no scenario schema exists."""
    findings: list[Violation] = []
    for declaration in collect_knobs(symbols):
        if declaration.binds is None:
            continue
        if not _binds_module_in_scope(symbols, declaration.binds):
            continue
        target_default = _resolve_target_default(symbols, declaration.binds)
        if target_default is _MISSING:
            findings.append(
                _finding(
                    declaration,
                    f"knob '{declaration.name}' binds "
                    f"'{declaration.binds}', which does not exist "
                    f"(renamed or removed simulator default)",
                )
            )
            continue
        if target_default is _UNKNOWN or declaration.default is None:
            continue
        agree = _defaults_agree(declaration.default, target_default)
        if not agree and not declaration.override:
            findings.append(
                _finding(
                    declaration,
                    f"knob '{declaration.name}' default "
                    f"{declaration.default!r} drifts from "
                    f"{declaration.binds} = {target_default!r} "
                    f"(fix one side, or mark override=True with a "
                    f"reason in help=)",
                )
            )
        elif agree and declaration.override:
            findings.append(
                _finding(
                    declaration,
                    f"stale override marker on '{declaration.name}': "
                    f"its default {declaration.default!r} matches "
                    f"{declaration.binds} again",
                )
            )
    return findings

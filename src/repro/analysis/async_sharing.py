"""RA015 — cross-task shared state needs a common asyncio lock.

Concurrent tasks on one event loop interleave at every ``await``.  Two
failure classes follow, and both live in exactly the code a tick server
is made of:

* **unguarded shared mutation** — instance state mutated from two
  coroutine roots that can run concurrently (two ``create_task``
  bodies; a ``start_server`` handler, which is *multi-instance* — one
  task per connection — and therefore concurrent with itself) without
  a common ``asyncio.Lock``/``Condition``/``Semaphore`` held on every
  mutating path;
* **awaiting inside a critical section** — an ``await`` under
  ``async with lock:`` that is not a wait/acquire on the held lock
  itself suspends the task *with the lock held*, stretching the
  critical section across arbitrary foreign work.

The pass reuses the RA012 idea of typed reachability, upgraded from
"which types cross the boundary" to "which locks are held when control
arrives".  Coroutine roots are found syntactically (``asyncio.run``,
``create_task``/``ensure_future``/``gather`` arguments,
``start_server`` handlers); for each root a worklist pass computes, per
reachable function, the *intersection* over all call paths of the lock
set held on arrival (locks are ``self.<attr>`` attributes assigned an
``asyncio`` primitive in ``__init__``).  A mutation site is safe when
the roots that reach it share at least one common lock — held either on
the path or around the site itself.

Deliberate scope cuts, all in the prove-don't-guess direction: two
``asyncio.run`` mains are alternative programs, never concurrent;
coroutine-factory calls inside ``create_task(...)`` belong to the
*spawned* root, not the spawning function, so the spawner is not
charged with the task body's mutations; ``__init__``/``__post_init__``
stores are construction, not concurrency.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass

from repro.analysis.callgraph import CallGraph
from repro.analysis.purity import (
    DEFAULT_BOUNDARY_PREFIXES,
    _MUTATOR_METHODS,
)
from repro.analysis.symbols import FunctionInfo, SymbolTable, annotation_to_dotted
from repro.lint.engine import Violation

__all__ = ["check_async_sharing"]

RULE_ID = "RA015"

#: ``asyncio`` primitives whose ``async with`` constitutes a guard.
_LOCK_TYPES = frozenset(
    {
        "asyncio.Lock",
        "asyncio.Condition",
        "asyncio.Semaphore",
        "asyncio.BoundedSemaphore",
    }
)

#: Awaits on these lock methods are the sanctioned reason to suspend
#: inside a critical section (condition-variable protocol).
_LOCK_AWAIT_METHODS = frozenset({"wait", "wait_for", "acquire"})

_SPAWN_CALLS = frozenset(
    {"asyncio.create_task", "asyncio.ensure_future", "asyncio.gather"}
)
_HANDLER_CALLS = frozenset({"asyncio.start_server", "asyncio.start_unix_server"})

#: A lock's identity: (owning class qualname, attribute name).
LockKey = tuple[str, str]


@dataclass(frozen=True)
class _Root:
    """One coroutine root and how it runs."""

    qualname: str
    kind: str  # "main" (asyncio.run) | "task" | "handler"

    @property
    def multi_instance(self) -> bool:
        return self.kind == "handler"


@dataclass
class _Mutation:
    """One mutation of ``self.<attr>`` somewhere in a method."""

    owner: str  # class qualname
    attr: str
    fn: FunctionInfo
    node: ast.AST
    held: frozenset[LockKey]  # locks held lexically around the site


def _lock_attrs(symbols: SymbolTable) -> dict[str, set[str]]:
    """Per class: attributes assigned an asyncio primitive in __init__
    (or annotated as one at class level)."""
    out: dict[str, set[str]] = {}
    for qualname, info in symbols.classes.items():
        attrs: set[str] = set()
        for attr, annotation in info.attr_annotations.items():
            dotted = annotation_to_dotted(annotation)
            if dotted is not None and symbols.resolve(info.module, dotted) in _LOCK_TYPES:
                attrs.add(attr)
        init = info.methods.get("__init__")
        if init is not None:
            for node in ast.walk(init.node):
                if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                    continue
                target, value = node.targets[0], node.value
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and isinstance(value, ast.Call)
                ):
                    continue
                dotted = annotation_to_dotted(value.func)
                if dotted is not None and symbols.resolve(info.module, dotted) in _LOCK_TYPES:
                    attrs.add(target.attr)
        if attrs:
            out[qualname] = attrs
    return out


def _self_attr(expr: ast.expr) -> str | None:
    """First attribute off ``self`` in an attribute/subscript chain."""
    current = expr
    attr: str | None = None
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        if isinstance(current, ast.Attribute):
            attr = current.attr
        current = current.value
    if isinstance(current, ast.Name) and current.id == "self":
        return attr
    return None


def _resolve_coroutine(
    symbols: SymbolTable, fn: FunctionInfo, expr: ast.expr
) -> FunctionInfo | None:
    """The async function behind a coroutine call or handler reference."""
    func = expr.func if isinstance(expr, ast.Call) else expr
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
        and fn.cls is not None
    ):
        found = symbols.lookup_method(fn.cls, func.attr)
    else:
        dotted = annotation_to_dotted(func)
        if dotted is None:
            return None
        resolved = symbols.canonicalize(symbols.resolve(fn.module, dotted))
        found = symbols.functions.get(resolved)
        if found is None and resolved in symbols.classes:
            return None
        # ``server.run_until_complete`` — method on an annotated or
        # attribute-typed receiver.
        if found is None and isinstance(func, ast.Attribute):
            tail = dotted.rsplit(".", 1)[-1]
            for cls in symbols.classes.values():
                if tail in cls.methods:
                    candidate = cls.methods[tail]
                    if isinstance(candidate.node, ast.AsyncFunctionDef):
                        return candidate
            return None
    if found is not None and isinstance(found.node, ast.AsyncFunctionDef):
        return found
    return None


def _spawn_kind(symbols: SymbolTable, module: str, call: ast.Call) -> str | None:
    dotted = annotation_to_dotted(call.func)
    if dotted is not None:
        resolved = symbols.resolve(module, dotted)
        if resolved == "asyncio.run":
            return "main"
        if resolved in _SPAWN_CALLS:
            return "task"
        if resolved in _HANDLER_CALLS:
            return "handler"
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in (
        "create_task",
        "ensure_future",
    ):
        return "task"
    return None


class _FunctionScan:
    """Lock-aware single-function facts: mutations, call-site holds,
    spawned roots, and awaits inside critical sections."""

    def __init__(
        self,
        symbols: SymbolTable,
        fn: FunctionInfo,
        lock_attrs: dict[str, set[str]],
    ) -> None:
        self.symbols = symbols
        self.fn = fn
        self.lock_attrs = lock_attrs
        self.mutations: list[_Mutation] = []
        self.roots: list[tuple[_Root, ast.Call]] = []
        #: call line -> intersection of lock sets held by calls there.
        self.call_holds: dict[int, frozenset[LockKey]] = {}
        #: (caller line, callee qualname) edges owned by a spawned task.
        self.spawned_edges: set[tuple[int, str]] = set()
        self.bad_awaits: list[tuple[ast.Await, LockKey]] = []
        self._visit(fn.node, frozenset())

    def _lock_key(self, expr: ast.expr) -> LockKey | None:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and self.fn.cls is not None
            and expr.attr in self.lock_attrs.get(self.fn.cls, ())
        ):
            return (self.fn.cls, expr.attr)
        return None

    def _visit(self, node: ast.AST, held: frozenset[LockKey]) -> None:
        if isinstance(node, ast.AsyncWith):
            acquired = {
                key
                for item in node.items
                if (key := self._lock_key(item.context_expr)) is not None
            }
            for item in node.items:
                self._visit(item.context_expr, held)
            for child in node.body:
                self._visit(child, held | acquired)
            return
        if isinstance(node, ast.Await):
            self._check_await(node, held)
        elif isinstance(node, ast.Call):
            self._record_call(node, held)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                self._record_store(node, target, held)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
                child is not self.fn.node
            ):
                continue  # nested defs are their own (unreached) scope
            self._visit(child, held)

    def _check_await(self, node: ast.Await, held: frozenset[LockKey]) -> None:
        if not held:
            return
        value = node.value
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute):
            receiver_key = self._lock_key(value.func.value)
            if (
                receiver_key in held
                and value.func.attr in _LOCK_AWAIT_METHODS
            ):
                return  # condition-variable protocol on the held lock
        self.bad_awaits.append((node, sorted(held)[0]))

    def _record_call(self, call: ast.Call, held: frozenset[LockKey]) -> None:
        previous = self.call_holds.get(call.lineno)
        self.call_holds[call.lineno] = (
            held if previous is None else previous & held
        )
        kind = _spawn_kind(self.symbols, self.fn.module, call)
        if kind is not None:
            args = call.args
            for arg in args:
                target = _resolve_coroutine(self.symbols, self.fn, arg)
                if target is not None:
                    self.roots.append((_Root(target.qualname, kind), call))
                    if isinstance(arg, ast.Call):
                        # The factory call's edge belongs to the task.
                        self.spawned_edges.add((arg.lineno, target.qualname))
        # Mutator-method calls on self attributes.
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATOR_METHODS
            and self.fn.cls is not None
        ):
            attr = _self_attr(func.value)
            if attr is not None:
                self.mutations.append(
                    _Mutation(self.fn.cls, attr, self.fn, call, held)
                )

    def _record_store(
        self, node: ast.AST, target: ast.expr, held: frozenset[LockKey]
    ) -> None:
        if self.fn.cls is None or self.fn.name in ("__init__", "__post_init__"):
            return
        attr = _self_attr(target)
        if attr is not None and attr not in self.lock_attrs.get(self.fn.cls, ()):
            self.mutations.append(
                _Mutation(self.fn.cls, attr, self.fn, node, held)
            )


def check_async_sharing(
    symbols: SymbolTable,
    graph: CallGraph,
    *,
    boundary_prefixes: tuple[str, ...] = DEFAULT_BOUNDARY_PREFIXES,
) -> list[Violation]:
    """Find unguarded cross-task mutations and lock-holding awaits."""

    def in_boundary(module: str) -> bool:
        return any(
            module == p or module.startswith(p + ".") for p in boundary_prefixes
        )

    lock_attrs = _lock_attrs(symbols)
    scans: dict[str, _FunctionScan] = {}
    roots: dict[str, _Root] = {}
    for qualname in sorted(symbols.functions):
        fn = symbols.functions[qualname]
        if in_boundary(fn.module):
            continue
        scan = _FunctionScan(symbols, fn, lock_attrs)
        scans[qualname] = scan
        for root, _call in scan.roots:
            existing = roots.get(root.qualname)
            # handler > task > main: keep the most-concurrent kind seen.
            rank = {"main": 0, "task": 1, "handler": 2}
            if existing is None or rank[root.kind] > rank[existing.kind]:
                roots[root.qualname] = root

    violations: list[Violation] = []
    for qualname, scan in sorted(scans.items()):
        for node, key in scan.bad_awaits:
            violations.append(
                Violation(
                    path=scan.fn.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule_id=RULE_ID,
                    message=(
                        f"await inside critical section of self.{key[1]} in "
                        f"{qualname}: the task suspends with the lock held, "
                        "stretching the critical section across foreign "
                        "work; move the await outside or use the lock's own "
                        "wait/wait_for"
                    ),
                )
            )

    # Per root: fixpoint of lock sets held on arrival (path intersection).
    held_at: dict[str, dict[str, frozenset[LockKey]]] = {}
    for root_qual, root in sorted(roots.items()):
        best: dict[str, frozenset[LockKey]] = {root_qual: frozenset()}
        queue: deque[str] = deque([root_qual])
        while queue:
            qualname = queue.popleft()
            scan = scans.get(qualname)
            if scan is None:
                continue  # boundary or external
            base = best[qualname]
            for site in graph.callees(qualname):
                if site.callee not in symbols.functions:
                    continue
                if (site.line, site.callee) in scan.spawned_edges:
                    continue  # the spawned task's body, not this path's
                arrive = base | scan.call_holds.get(site.line, frozenset())
                previous = best.get(site.callee)
                updated = arrive if previous is None else previous & arrive
                if previous is None or updated != previous:
                    best[site.callee] = updated
                    queue.append(site.callee)
        held_at[root_qual] = best

    # Group mutations per (class, attr) and judge each group.
    groups: dict[tuple[str, str], list[_Mutation]] = {}
    for scan in scans.values():
        for mutation in scan.mutations:
            groups.setdefault((mutation.owner, mutation.attr), []).append(mutation)

    for (owner, attr), mutations in sorted(
        groups.items(), key=lambda kv: kv[0]
    ):
        reaching: set[str] = set()
        common: frozenset[LockKey] | None = None
        sites: list[tuple[_Mutation, list[str]]] = []
        for mutation in mutations:
            site_roots = []
            for root_qual, best in held_at.items():
                arrived = best.get(mutation.fn.qualname)
                if arrived is None:
                    continue
                site_roots.append(root_qual)
                effective = arrived | mutation.held
                common = effective if common is None else common & effective
            if site_roots:
                reaching.update(site_roots)
                sites.append((mutation, site_roots))
        concurrent = any(roots[r].multi_instance for r in reaching) or any(
            roots[a].kind != "main" or roots[b].kind != "main"
            for a in reaching
            for b in reaching
            if a < b
        )
        if not concurrent or (common is not None and common):
            continue
        root_list = ", ".join(sorted(reaching))
        for mutation, _site_roots in sites:
            violations.append(
                Violation(
                    path=mutation.fn.path,
                    line=getattr(mutation.node, "lineno", mutation.fn.lineno),
                    col=getattr(mutation.node, "col_offset", 0),
                    rule_id=RULE_ID,
                    message=(
                        f"self.{attr} of {owner} is mutated by concurrent "
                        f"coroutine roots ({root_list}) without a common "
                        "asyncio lock; guard every mutating path with one "
                        "`async with` lock"
                    ),
                )
            )
    violations.sort()
    return violations

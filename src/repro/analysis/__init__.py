"""``repro.analysis`` — whole-program static analysis for the simulator.

Where ``repro.lint`` (RL001-RL008) checks each file in isolation, this
package builds a project-wide symbol table and call graph and proves
properties that only hold *across* module boundaries:

========  ==============================================================
RA001     phase purity — everything transitively reachable from the
          simulation step loop is free of I/O, wall-clock reads, env
          access, and module-global mutation (``repro.obs`` is the
          sanctioned boundary)
RA002     dimensional analysis — ``Cpu``/``Mem``/``NetIn``/``NetOut``
          ``NewType`` quantities never mix in arithmetic, comparisons,
          argument passing, or returns
RA003     RNG flow — no unseeded or module-level-shared generator
          reaches simulation code
RA004     import cycles — no runtime import cycles between project
          modules (``if TYPE_CHECKING:`` guards are honoured)
RA005     dead experiments — every experiment module is registered in
          the CLI ``EXPERIMENTS`` table
RA006     interval analysis — no provably-negative resource quantities,
          zero-able divisors, or fraction/percent mixups (dataflow)
RA007     exception flow — no accidental exception types escaping the
          step loop; no over-broad handlers on the hot path
RA008     hot-path cost — no nested unbounded iteration or per-tick
          collection building in step-reachable code
RA009     array shapes/dtypes — no broadcast-incompatible shapes,
          silent dtype promotions, or out= mismatches (dataflow over
          an abstract array domain)
RA010     hidden allocations — no allocating numpy call reachable from
          ``VectorizedPopulation.step()`` (the zero-allocation contract)
RA011     RNG-stream symmetry — reference and vectorized engines consume
          identical Generator draw sequences (bitwise equivalence)
RA012     parallel safety — nothing unpicklable, stream-duplicating, or
          share-mutating crosses a ``multiprocessing`` boundary
RA013     async blocking — no sync sleep, file/socket I/O, or CPU-heavy
          simulation entry point reachable from ``async def`` without
          ``asyncio.to_thread``/executor dispatch
RA014     task lifecycle — no fire-and-forget ``create_task``, unawaited
          coroutine call, or swallowed ``CancelledError``
RA015     cross-task sharing — state mutated by concurrent coroutine
          roots holds a common ``asyncio`` lock, and no ``await`` sits
          inside a critical section
RA016     tick restartability — the served tick loop's state lives in
          declared ``@checkpointable`` dataclasses, never module or
          closure hiding places
========  ==============================================================

Use ``repro analyze`` or ``python -m repro.analysis``; findings share
reprolint's suppression pragmas, output formats, ``--baseline`` ratchet,
and exit-code contract.  ``docs/static_analysis.md`` documents each
pass with a worked example.
"""

from __future__ import annotations

from repro.analysis.callgraph import CallGraph, CallSite
from repro.analysis.engine import PASS_SUMMARIES, analyze_paths, analyze_project
from repro.analysis.project import Project, SourceModule
from repro.analysis.symbols import ClassInfo, FunctionInfo, SymbolTable

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "PASS_SUMMARIES",
    "Project",
    "SourceModule",
    "SymbolTable",
    "analyze_paths",
    "analyze_project",
]

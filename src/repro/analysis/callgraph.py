"""Project call-graph construction.

Edges are built per function by resolving every ``ast.Call`` through the
symbol table:

* bare names — module-local functions, imported functions (through
  aliases and ``__init__`` re-exports), and classes (a class call edges
  to its ``__init__`` and, for dataclasses, ``__post_init__``);
* ``self.m()`` — method lookup along the inheritance chain, plus
  *Class Hierarchy Analysis*: every project subclass override is also a
  target, so ``predictor.predict()`` reaches each concrete predictor;
* ``obj.m()`` — when ``obj``'s class is known from a parameter
  annotation, a local binding, or an attribute type in the symbol
  table;
* container flow — loop variables (and tuple unpacks) take their types
  from the iterated value's annotation: ``for center, vec in
  plan.placements`` with ``placements: list[tuple[DataCenter,
  ResourceVector]]`` types ``center`` as ``DataCenter``.  ``dict``
  iteration (``.items()``/``.values()``/``.get()``) and
  ``heapq.heappop`` are understood the same way;
* ``module.func()`` / ``Class.method()`` — full dotted resolution.

Unresolvable calls (builtins, numpy, callables passed as values) simply
produce no edge; the passes treat "no edge" as "outside the project".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.project import Project
from repro.analysis.symbols import (
    AnnRef,
    FunctionInfo,
    SymbolTable,
    annotation_to_dotted,
    element_annotation,
    mapping_annotations,
)

__all__ = ["CallSite", "CallGraph"]

#: Builtins that return their (single) argument's container unchanged.
_IDENTITY_WRAPPERS = frozenset({"list", "tuple", "sorted", "reversed", "iter"})


@dataclass(frozen=True)
class CallSite:
    """One resolved call: ``caller`` invokes ``callee`` at ``path:line``."""

    caller: str
    callee: str
    path: str
    line: int


@dataclass
class CallGraph:
    """Adjacency view of every resolved call in the project."""

    edges: dict[str, list[CallSite]] = field(default_factory=dict)

    def callees(self, qualname: str) -> list[CallSite]:
        return self.edges.get(qualname, [])

    @classmethod
    def build(cls, project: Project, symbols: SymbolTable) -> "CallGraph":
        graph = cls()
        for qualname in sorted(symbols.functions):
            fn = symbols.functions[qualname]
            sites = _FunctionResolver(symbols, fn).resolve_calls()
            if sites:
                graph.edges[qualname] = sites
        return graph


class _FunctionResolver:
    """Resolves the calls inside one function body."""

    def __init__(self, symbols: SymbolTable, fn: FunctionInfo) -> None:
        self.symbols = symbols
        self.fn = fn
        self.module = fn.module
        #: local name -> annotation reference (param, AnnAssign, loop
        #: variable, or call-return flow).
        self.ann_env: dict[str, AnnRef] = {}
        self._build_env()

    # -- annotation algebra ------------------------------------------------

    def _class_of(self, ref: AnnRef | None) -> str | None:
        if ref is None:
            return None
        dotted = annotation_to_dotted(ref.node)
        if dotted is None:
            return None
        resolved = self.symbols.canonicalize(self.symbols.resolve(ref.module, dotted))
        return resolved if resolved in self.symbols.classes else None

    def _element_of(self, ref: AnnRef | None) -> AnnRef | None:
        if ref is None:
            return None
        element = element_annotation(ref.node)
        return AnnRef(element, ref.module) if element is not None else None

    def _annotation_of(self, expr: ast.expr) -> AnnRef | None:
        """Best-effort annotation reference for an expression."""
        if isinstance(expr, ast.Name):
            if expr.id == "self" and self.fn.cls is not None:
                info = self.symbols.classes.get(self.fn.cls)
                if info is not None:
                    return AnnRef(ast.Name(id=info.name, ctx=ast.Load()), info.module)
            return self.ann_env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            owner = self._receiver_class(expr.value)
            if owner is not None:
                info = self.symbols.classes.get(owner)
                if info is not None and expr.attr in info.attr_annotations:
                    return AnnRef(info.attr_annotations[expr.attr], info.module)
            return None
        if isinstance(expr, ast.Call):
            return self._call_return_annotation(expr)
        if isinstance(expr, ast.Subscript):
            base = self._annotation_of(expr.value)
            if base is not None:
                mapping = mapping_annotations(base.node)
                if mapping is not None:
                    return AnnRef(mapping[1], base.module)
                return self._element_of(base)
            return None
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            element = self._annotation_of(expr.elt)
            if element is not None:
                return AnnRef(
                    ast.Subscript(
                        value=ast.Name(id="list", ctx=ast.Load()),
                        slice=element.node,
                        ctx=ast.Load(),
                    ),
                    element.module,
                )
            return None
        if isinstance(expr, ast.DictComp):
            value = self._annotation_of(expr.value)
            if value is not None:
                key = self._annotation_of(expr.key)
                key_node: ast.expr = (
                    key.node if key is not None else ast.Name(id="object", ctx=ast.Load())
                )
                return AnnRef(
                    ast.Subscript(
                        value=ast.Name(id="dict", ctx=ast.Load()),
                        slice=ast.Tuple(elts=[key_node, value.node], ctx=ast.Load()),
                        ctx=ast.Load(),
                    ),
                    value.module,
                )
            return None
        return None

    def _call_return_annotation(self, call: ast.Call) -> AnnRef | None:
        func = call.func
        dotted = annotation_to_dotted(func)
        # Identity wrappers and heapq.heappop flow their argument's
        # annotation (or its element) through the call.
        if dotted in _IDENTITY_WRAPPERS and len(call.args) == 1:
            return self._annotation_of(call.args[0])
        if dotted == "heapq.heappop" and len(call.args) == 1:
            return self._element_of(self._annotation_of(call.args[0]))
        # Mapping access methods on an annotated receiver.
        if isinstance(func, ast.Attribute) and func.attr in (
            "get",
            "pop",
            "setdefault",
            "items",
            "values",
            "keys",
        ):
            receiver_ann = self._annotation_of(func.value)
            if receiver_ann is not None:
                mapping = mapping_annotations(receiver_ann.node)
                if mapping is not None:
                    key_ann, value_ann = mapping
                    if func.attr in ("get", "pop", "setdefault"):
                        return AnnRef(value_ann, receiver_ann.module)
                    if func.attr == "values":
                        return AnnRef(
                            ast.Subscript(
                                value=ast.Name(id="list", ctx=ast.Load()),
                                slice=value_ann,
                                ctx=ast.Load(),
                            ),
                            receiver_ann.module,
                        )
                    if func.attr == "keys":
                        return AnnRef(
                            ast.Subscript(
                                value=ast.Name(id="list", ctx=ast.Load()),
                                slice=key_ann,
                                ctx=ast.Load(),
                            ),
                            receiver_ann.module,
                        )
                    # .items(): iterable of (key, value) pairs.
                    return AnnRef(
                        _items_annotation(key_ann, value_ann), receiver_ann.module
                    )
        # Direct class construction (checked before the generic target
        # walk: a dataclass call resolves to __post_init__ -> None,
        # which must not shadow the constructed type).
        if dotted is not None:
            resolved = self.symbols.canonicalize(
                self.symbols.resolve(self.module, dotted)
            )
            info = self.symbols.classes.get(resolved)
            if info is not None:
                return AnnRef(ast.Name(id=info.name, ctx=ast.Load()), info.module)
        # Project function / method: use its return annotation.
        for target in self._targets(func):
            target_fn = self.symbols.functions.get(target)
            if target_fn is not None and target_fn.node.returns is not None:
                if (
                    target_fn.name in ("__init__", "__post_init__")
                    and target_fn.cls is not None
                ):
                    owner = self.symbols.classes.get(target_fn.cls)
                    if owner is not None:
                        return AnnRef(
                            ast.Name(id=owner.name, ctx=ast.Load()), owner.module
                        )
                    continue
                return AnnRef(target_fn.node.returns, target_fn.module)
        return None

    # -- environment -------------------------------------------------------

    def _bind_target(self, target: ast.expr, ref: AnnRef | None) -> None:
        if ref is None:
            return
        if isinstance(target, ast.Name):
            self.ann_env[target.id] = ref
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            node: ast.expr | None = ref.node
            # ``tuple[X, Y]`` subscripts unpack positionally like a
            # literal ``(X, Y)`` annotation tuple.
            if isinstance(node, ast.Subscript):
                head = annotation_to_dotted(node.value)
                tail = head.rsplit(".", 1)[-1] if head else None
                node = node.slice if tail in ("tuple", "Tuple") else None
            if isinstance(node, ast.Tuple) and len(node.elts) == len(target.elts):
                for sub_target, sub_node in zip(target.elts, node.elts):
                    self._bind_target(sub_target, AnnRef(sub_node, ref.module))

    def _build_env(self) -> None:
        args = self.fn.node.args
        for a in args.posonlyargs + args.args + args.kwonlyargs:
            if a.annotation is not None:
                self.ann_env[a.arg] = AnnRef(a.annotation, self.module)
        # Two passes reach fixpoint for the chains that matter here
        # (e.g. ``heap = self._heaps.get(key)`` before the loop over it).
        for _ in range(2):
            for stmt in ast.walk(self.fn.node):
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    self.ann_env[stmt.target.id] = AnnRef(stmt.annotation, self.module)
                elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    self._bind_target(
                        stmt.targets[0], self._annotation_of(stmt.value)
                    )
                elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                    self._bind_target(
                        stmt.target, self._element_of(self._annotation_of(stmt.iter))
                    )
                elif isinstance(stmt, ast.comprehension):
                    self._bind_target(
                        stmt.target, self._element_of(self._annotation_of(stmt.iter))
                    )

    # -- call resolution ---------------------------------------------------

    def resolve_calls(self) -> list[CallSite]:
        sites: list[CallSite] = []
        for node in ast.walk(self.fn.node):
            if not isinstance(node, ast.Call):
                continue
            for callee in sorted(self._targets(node.func)):
                sites.append(
                    CallSite(
                        caller=self.fn.qualname,
                        callee=callee,
                        path=self.fn.path,
                        line=node.lineno,
                    )
                )
        return sites

    def _class_call_targets(self, class_qualname: str) -> set[str]:
        targets: set[str] = set()
        for hook in ("__init__", "__post_init__"):
            found = self.symbols.lookup_method(class_qualname, hook)
            if found is not None:
                targets.add(found.qualname)
        return targets

    def _method_targets(self, class_qualname: str, method: str) -> set[str]:
        targets: set[str] = set()
        found = self.symbols.lookup_method(class_qualname, method)
        if found is not None:
            targets.add(found.qualname)
        for sub in self.symbols.all_subclasses(class_qualname):
            info = self.symbols.classes.get(sub)
            if info is not None and method in info.methods:
                targets.add(info.methods[method].qualname)
        return targets

    def _receiver_class(self, base: ast.expr) -> str | None:
        """Class of a method-call receiver, if statically known."""
        if isinstance(base, ast.Name) and base.id == "self" and self.fn.cls:
            return self.fn.cls
        return self._class_of(self._annotation_of(base))

    def _targets(self, func: ast.expr) -> set[str]:
        if isinstance(func, ast.Name):
            if self._class_of(self.ann_env.get(func.id)) is not None:
                return set()  # calling an instance: __call__, out of scope
            dotted = func.id
            resolved = self.symbols.canonicalize(
                self.symbols.resolve(self.module, dotted)
            )
            if resolved in self.symbols.functions:
                return {resolved}
            if resolved in self.symbols.classes:
                return self._class_call_targets(resolved)
            return set()
        if isinstance(func, ast.Attribute):
            receiver = self._receiver_class(func.value)
            if receiver is not None:
                return self._method_targets(receiver, func.attr)
            dotted = annotation_to_dotted(func)
            if dotted is None:
                return set()
            resolved = self.symbols.canonicalize(
                self.symbols.resolve(self.module, dotted)
            )
            if resolved in self.symbols.functions:
                return {resolved}
            if resolved in self.symbols.classes:
                return self._class_call_targets(resolved)
        return set()


def _items_annotation(key_ann: ast.expr, value_ann: ast.expr) -> ast.expr:
    """Synthesize ``list[tuple[K, V]]`` for ``dict.items()`` results."""
    pair = ast.Subscript(
        value=ast.Name(id="tuple", ctx=ast.Load()),
        slice=ast.Tuple(elts=[key_ann, value_ann], ctx=ast.Load()),
        ctx=ast.Load(),
    )
    return ast.Subscript(
        value=ast.Name(id="list", ctx=ast.Load()), slice=pair, ctx=ast.Load()
    )

"""RA008 — hot-path cost: no quadratic scans in the per-tick loop.

The ROADMAP north-star ("as fast as the hardware allows") dies by a
thousand cuts: a nested scan over fleets × centers here, a dict rebuilt
every 2-minute tick there.  This pass walks the functions reachable
from the step-loop roots (the same BFS as RA001/RA007) and flags the
three cheap-to-write, expensive-to-run shapes:

* **nested iteration over unbounded collections** — a ``for`` over a
  non-``range`` iterable nested inside another unbounded ``for`` or any
  ``while`` (``for t in range(...)`` is the tick counter and exempt as
  an outer loop); comprehensions with two or more generators count;
* **collection materialization inside a loop** — a comprehension or a
  ``list``/``dict``/``set``/``sorted``/``tuple`` copy built inside any
  enclosing loop body allocates every tick; hoist it or maintain it
  incrementally;
* **O(n) membership tests on lists** — ``x in xs`` where ``xs`` is
  list-annotated (parameter, local ``AnnAssign``, or ``self`` attribute)
  scans; use a set.

Setup/teardown functions are allowlisted by name (``install``,
``prepare``, ``release_everything``, ``__init__``, ``setup*``,
``teardown*``, ``warmup*``): they run once, not per tick, and
reachability does not traverse through them.
"""

from __future__ import annotations

import ast
from collections import deque

from repro.analysis.callgraph import CallGraph
from repro.analysis.purity import (
    DEFAULT_BOUNDARY_PREFIXES,
    DEFAULT_ROOTS,
    _format_chain,
)
from repro.analysis.symbols import FunctionInfo, SymbolTable, annotation_to_dotted
from repro.lint.engine import Violation

__all__ = ["DEFAULT_SETUP_NAMES", "check_hotpath"]

RULE_ID = "RA008"

#: Function names that are setup/teardown by convention: they run once
#: per simulation, not once per tick, so cost shapes are fine there.
DEFAULT_SETUP_NAMES = frozenset(
    {
        "__init__",
        "__post_init__",
        "install",
        "prepare",
        "release_everything",
    }
)

_SETUP_PREFIXES = ("setup", "teardown", "warmup")

#: Calls that materialize a full collection from their argument.
_MATERIALIZERS = frozenset({"list", "dict", "set", "sorted", "tuple"})

_LIST_HEADS = frozenset({"list", "List", "typing.List"})


def _is_setup(name: str, setup_names: frozenset[str]) -> bool:
    return name in setup_names or name.startswith(_SETUP_PREFIXES)


def _is_range_call(expr: ast.expr) -> bool:
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id == "enumerate"
        and expr.args
    ):
        return _is_range_call(expr.args[0])
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id == "range"
    )


def _is_list_annotation(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Subscript):
        head = annotation_to_dotted(annotation.value)
        return head in _LIST_HEADS
    return annotation_to_dotted(annotation) in _LIST_HEADS


class _FunctionScanner:
    """Finds the three cost shapes inside one function."""

    def __init__(self, symbols: SymbolTable, fn: FunctionInfo, chain: str) -> None:
        self.symbols = symbols
        self.fn = fn
        self.chain = chain
        self.violations: list[Violation] = []
        self._list_annotations = self._collect_list_annotations()

    def scan(self) -> list[Violation]:
        self._suite(self.fn.node.body, loops=[])
        return self.violations

    # -- annotation environment (for membership tests) ---------------------

    def _collect_list_annotations(self) -> set[str]:
        """Access paths (``xs`` / ``self.offers``) known to be lists."""
        paths: set[str] = set()
        args = self.fn.node.args
        for a in args.posonlyargs + args.args + args.kwonlyargs:
            if _is_list_annotation(a.annotation):
                paths.add(a.arg)
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if _is_list_annotation(node.annotation):
                    paths.add(node.target.id)
        if self.fn.cls is not None:
            info = self.symbols.classes.get(self.fn.cls)
            if info is not None:
                for attr, annotation in info.attr_annotations.items():
                    if _is_list_annotation(annotation):
                        paths.add(f"self.{attr}")
        return paths

    # -- reporting ---------------------------------------------------------

    def _flag(self, node: ast.AST, message: str) -> None:
        self.violations.append(
            Violation(
                path=self.fn.path,
                line=getattr(node, "lineno", self.fn.lineno),
                col=getattr(node, "col_offset", 0),
                rule_id=RULE_ID,
                message=(
                    f"{message} in step-reachable {self.fn.qualname} "
                    f"[chain: {self.chain}]"
                ),
            )
        )

    # -- traversal ---------------------------------------------------------

    def _suite(self, stmts: list[ast.stmt], loops: list[str]) -> None:
        for stmt in stmts:
            self._stmt(stmt, loops)

    def _stmt(self, stmt: ast.stmt, loops: list[str]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            bounded = _is_range_call(stmt.iter)
            self._exprs([stmt.iter], loops)
            if not bounded:
                if any(kind == "unbounded" for kind in loops):
                    self._flag(
                        stmt,
                        "nested iteration over unbounded collections "
                        "(inner loop also scans a full collection per "
                        "outer element)",
                    )
                inner = loops + ["unbounded"]
            else:
                inner = loops + ["range"]
            self._suite(stmt.body, inner)
            self._suite(stmt.orelse, loops)
            return
        if isinstance(stmt, ast.While):
            self._exprs([stmt.test], loops)
            self._suite(stmt.body, loops + ["unbounded"])
            self._suite(stmt.orelse, loops)
            return
        exprs = [
            node for node in ast.iter_child_nodes(stmt) if isinstance(node, ast.expr)
        ]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            exprs = [item.context_expr for item in stmt.items]
        self._exprs(exprs, loops)
        for name in ("body", "orelse", "finalbody"):
            suite = getattr(stmt, name, None)
            if isinstance(suite, list) and suite and isinstance(suite[0], ast.stmt):
                self._suite(suite, loops)
        if isinstance(stmt, ast.Match):
            for case in stmt.cases:
                self._suite(case.body, loops)
        if isinstance(stmt, ast.Try):
            for handler in stmt.handlers:
                self._suite(handler.body, loops)

    def _exprs(self, roots: list[ast.expr], loops: list[str]) -> None:
        in_loop = bool(loops)
        stack: list[ast.AST] = list(roots)
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Lambda):
                continue
            if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
                unbounded = sum(
                    1 for gen in node.generators if not _is_range_call(gen.iter)
                )
                if unbounded >= 2:
                    self._flag(
                        node,
                        "nested iteration over unbounded collections "
                        "(multi-generator comprehension)",
                    )
                if in_loop:
                    self._flag(
                        node,
                        "collection materialized inside a per-tick loop "
                        "(hoist it or maintain it incrementally)",
                    )
            elif isinstance(node, ast.Call) and in_loop:
                name = annotation_to_dotted(node.func)
                if name in _MATERIALIZERS and node.args:
                    self._flag(
                        node,
                        f"{name}(...) copy built inside a per-tick loop "
                        "(hoist it or maintain it incrementally)",
                    )
            elif isinstance(node, ast.Compare):
                self._check_membership(node)
            stack.extend(ast.iter_child_nodes(node))

    def _check_membership(self, node: ast.Compare) -> None:
        for op, comparator in zip(node.ops, node.comparators):
            if not isinstance(op, (ast.In, ast.NotIn)):
                continue
            path = annotation_to_dotted(comparator)
            if path is not None and path in self._list_annotations:
                self._flag(
                    node,
                    f"O(n) membership test on list {path!r} "
                    "(use a set for hot-path lookups)",
                )


def check_hotpath(
    symbols: SymbolTable,
    graph: CallGraph,
    *,
    roots: tuple[str, ...] = DEFAULT_ROOTS,
    boundary_prefixes: tuple[str, ...] = DEFAULT_BOUNDARY_PREFIXES,
    setup_names: frozenset[str] = DEFAULT_SETUP_NAMES,
) -> list[Violation]:
    """Flag quadratic scans and per-tick allocation in hot code."""

    def in_boundary(module: str) -> bool:
        return any(
            module == p or module.startswith(p + ".") for p in boundary_prefixes
        )

    parents: dict[str, str | None] = {}
    queue: deque[str] = deque()
    for root in roots:
        if root in symbols.functions and root not in parents:
            parents[root] = None
            queue.append(root)

    violations: list[Violation] = []
    while queue:
        qualname = queue.popleft()
        fn = symbols.functions[qualname]
        if in_boundary(fn.module):
            continue
        if _is_setup(fn.name, setup_names):
            continue  # setup/teardown: neither scanned nor traversed
        chain = _format_chain(parents, qualname)
        violations.extend(_FunctionScanner(symbols, fn, chain).scan())
        for site in graph.callees(qualname):
            if site.callee not in parents and site.callee in symbols.functions:
                parents[site.callee] = qualname
                queue.append(site.callee)
    violations.sort()
    return violations

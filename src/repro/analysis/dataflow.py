"""Generic worklist fixed-point solver over abstract domains.

The solver is parametric in the :class:`Domain`: RA006 plugs in the
interval domain, tests plug in toy domains (a counting domain shows the
widening requirement directly).  The contract:

* ``initial()`` — the state at function entry;
* ``transfer(state, stmt)`` — abstract effect of one straight-line
  statement (compound headers per the :mod:`repro.analysis.cfg`
  convention: interpret the header only, never the body);
* ``assume(state, cond, branch)`` — refine ``state`` knowing ``cond``
  evaluated to ``branch``; return ``None`` when that is infeasible
  (the edge is then simply not propagated — this is how ``while
  True:`` loses its exit edge);
* ``join`` — least upper bound at control-flow merges;
* ``widen`` — extrapolation applied at loop heads once a head's
  incoming state has changed ``widen_after`` times, guaranteeing
  termination on infinite-ascending domains such as intervals;
* ``equals`` — convergence test.

``solve`` returns the fixed-point state *at entry to* each reachable
block.  A hard iteration cap (far above anything a real function
produces) turns a non-terminating domain bug into a loud
:class:`FixpointError` instead of a hung analyzer — the CI analyze
budget (120 s) backstops the same property end-to-end.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Generic, Protocol, TypeVar

from repro.analysis.cfg import CFG

__all__ = ["Domain", "FixpointError", "solve"]

S = TypeVar("S")


class Domain(Protocol[S]):
    """What a dataflow client implements (see module docstring)."""

    def initial(self) -> S: ...

    def join(self, a: S, b: S) -> S: ...

    def widen(self, a: S, b: S) -> S: ...

    def transfer(self, state: S, stmt: ast.stmt) -> S: ...

    def assume(self, state: S, cond: ast.expr, branch: bool) -> S | None: ...

    def equals(self, a: S, b: S) -> bool: ...


class FixpointError(RuntimeError):
    """The solver exceeded its iteration cap (a domain bug)."""


class _Solver(Generic[S]):
    def __init__(
        self, cfg: CFG, domain: Domain[S], widen_after: int, max_steps: int
    ) -> None:
        self.cfg = cfg
        self.domain = domain
        self.widen_after = widen_after
        self.max_steps = max_steps

    def run(self) -> dict[int, S]:
        cfg, domain = self.cfg, self.domain
        entry_states: dict[int, S] = {cfg.entry: domain.initial()}
        changes: dict[int, int] = {}
        work: deque[int] = deque([cfg.entry])
        queued: set[int] = {cfg.entry}
        steps = 0
        while work:
            steps += 1
            if steps > self.max_steps:
                raise FixpointError(
                    f"no fixed point after {self.max_steps} iterations "
                    f"(widen_after={self.widen_after})"
                )
            idx = work.popleft()
            queued.discard(idx)
            out = entry_states[idx]
            for stmt in cfg.blocks[idx].stmts:
                out = domain.transfer(out, stmt)
            for edge in cfg.succs(idx):
                arriving: S | None = out
                if edge.cond is not None:
                    arriving = domain.assume(out, edge.cond, edge.assume)
                    if arriving is None:
                        continue  # infeasible branch
                old = entry_states.get(edge.dst)
                if old is None:
                    new = arriving
                else:
                    new = domain.join(old, arriving)
                    if domain.equals(old, new):
                        continue
                    if edge.dst in cfg.loop_heads:
                        changes[edge.dst] = changes.get(edge.dst, 0) + 1
                        if changes[edge.dst] >= self.widen_after:
                            new = domain.widen(old, new)
                            if domain.equals(old, new):
                                continue
                entry_states[edge.dst] = new
                if edge.dst not in queued:
                    work.append(edge.dst)
                    queued.add(edge.dst)
        return entry_states


def solve(
    cfg: CFG,
    domain: Domain[S],
    *,
    widen_after: int = 3,
    max_steps: int = 100_000,
) -> dict[int, S]:
    """Run ``domain`` to a fixed point over ``cfg``.

    Returns ``{block_idx: entry_state}`` for every reachable block;
    unreachable blocks are absent.
    """
    return _Solver(cfg, domain, widen_after, max_steps).run()

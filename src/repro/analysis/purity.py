"""RA001 — phase purity: the simulation step loop must be pure.

Every function transitively reachable from the step-loop roots (the
ecosystem run loop, the provisioner reconcile/install paths, and the
matching mechanism) must be free of

* I/O (``open``/``print``/``input``, ``subprocess``, ``socket``,
  destructive ``os.*`` calls, writes to ``sys.stdout``/``stderr``),
* wall-clock reads (same table as RL002; monotonic timers stay legal),
* environment access (``os.environ``, ``os.getenv``),
* global-state RNG calls (same tables as RL001), and
* module-global mutation (rebinding, ``global`` writes, subscript or
  attribute stores, mutator-method calls, ``next()`` on a module-level
  iterator) — the shared-state bug class RL005 bans locally, here
  proven over the whole reachable call graph.

``repro.obs`` and ``repro.perf`` are the sanctioned observability
boundary: tracer I/O, metric registries, the invariant switch, and the
bench harness's clock/environment reads live there by design, so
traversal stops at (and never inspects) boundary modules.  The boundary
is the same allowlist RL002 honours
(:data:`repro.lint.rules.OBSERVABILITY_BOUNDARY_PACKAGES`) — one
reviewed tuple, not inline pragmas.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Iterator

from repro.analysis.callgraph import CallGraph
from repro.analysis.symbols import FunctionInfo, SymbolTable
from repro.lint.engine import Violation
from repro.lint.rules import (
    NUMPY_GLOBAL_RNG,
    OBSERVABILITY_BOUNDARY_PACKAGES,
    STDLIB_GLOBAL_RNG,
    WALL_CLOCK_CALLS,
    ImportMap,
)

__all__ = ["DEFAULT_ROOTS", "DEFAULT_BOUNDARY_PREFIXES", "check_purity"]

RULE_ID = "RA001"

#: Entry points of the simulation step loop (Sec. IV of the paper: the
#: operator/provisioner/matching cycle evaluated every 2-minute step)
#: plus the workload-emulator tick loop (Sec. IV-D), whose per-tick
#: cost gates every fig06-class experiment, plus the live service's
#: per-tick surface (``repro serve`` runs the same stepper core once
#: per protocol tick).
DEFAULT_ROOTS: tuple[str, ...] = (
    "repro.core.ecosystem.EcosystemSimulator.run",
    "repro.core.provisioner.DynamicProvisioner.reconcile",
    "repro.core.provisioner.StaticProvisioner.install",
    "repro.core.provisioner.StaticProvisioner.reconcile",
    "repro.core.matching.match_request",
    "repro.emulator.emulator.GameEmulator.run",
    "repro.emulator.entities.EntityPopulation.step",
    "repro.emulator.engine.VectorizedPopulation.step",
    "repro.emulator.interactions.emulate_with_interactions",
    "repro.service.server.ProvisioningService.record_report",
    "repro.service.server.ProvisioningService.advance_tick",
)

#: Modules whose *interiors* are exempt: the observability layer and
#: the bench harness are the sanctioned impurity boundary (JSONL
#: tracing, env-driven invariant switches, clock/tracemalloc reads).
#: Reachability does not traverse past them.  Derived from the shared
#: RL002/RA001 allowlist so the two tools can never disagree.
DEFAULT_BOUNDARY_PREFIXES: tuple[str, ...] = tuple(
    f"repro.{pkg}" for pkg in OBSERVABILITY_BOUNDARY_PACKAGES
)

#: Calls that perform I/O regardless of arguments.
_IO_CALLS = frozenset(
    {
        "open",
        "print",
        "input",
        "breakpoint",
        "os.system",
        "os.popen",
        "os.remove",
        "os.unlink",
        "os.rename",
        "os.replace",
        "os.mkdir",
        "os.makedirs",
        "os.rmdir",
        "os.chdir",
        "sys.stdout.write",
        "sys.stderr.write",
    }
)

#: Call prefixes that perform I/O (any function under these modules).
_IO_PREFIXES = ("subprocess.", "socket.", "shutil.", "urllib.", "requests.")

#: Environment access — reads make behaviour depend on process state.
_ENV_CALLS = frozenset({"os.getenv", "os.putenv", "os.unsetenv"})

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        "setdefault",
        "appendleft",
        "popleft",
        "sort",
    }
)


def _local_bound_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound locally in ``fn`` (params + assignment-like targets),
    minus names the function explicitly declares ``global``."""
    bound: set[str] = set()
    declared_global: set[str] = set()
    args = fn.args
    for a in args.posonlyargs + args.args + args.kwonlyargs:
        bound.add(a.arg)
    if args.vararg is not None:
        bound.add(args.vararg.arg)
    if args.kwarg is not None:
        bound.add(args.kwarg.arg)

    def add_target(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            bound.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                add_target(elt)
        elif isinstance(target, ast.Starred):
            add_target(target.value)

    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Assign):
            for t in node.targets:
                add_target(t)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            add_target(node.target)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            add_target(node.target)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    add_target(item.optional_vars)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
        elif isinstance(node, ast.NamedExpr):
            add_target(node.target)
        elif isinstance(node, ast.comprehension):
            add_target(node.target)
    return bound - declared_global


def _impurities(
    fn: FunctionInfo, imports: ImportMap, module_globals: set[str]
) -> Iterator[tuple[ast.AST, str]]:
    """Yield ``(node, description)`` for each impure operation in ``fn``."""
    locals_ = _local_bound_names(fn.node)
    shared = module_globals - locals_

    def is_shared_name(expr: ast.expr) -> bool:
        return isinstance(expr, ast.Name) and expr.id in shared

    declared_global: set[str] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)

    for node in ast.walk(fn.node):
        if isinstance(node, ast.Call):
            name = imports.canonical(node.func)
            if name is not None:
                if name in WALL_CLOCK_CALLS:
                    yield node, f"wall-clock read {name}()"
                elif name in _IO_CALLS or name.startswith(_IO_PREFIXES):
                    yield node, f"I/O call {name}()"
                elif name in _ENV_CALLS:
                    yield node, f"environment access {name}()"
                elif (
                    name.startswith("random.")
                    and name.split(".", 1)[1] in STDLIB_GLOBAL_RNG
                ):
                    yield node, f"global-state RNG call {name}()"
                elif (
                    name.startswith("numpy.random.")
                    and name.rsplit(".", 1)[1] in NUMPY_GLOBAL_RNG
                ):
                    yield node, f"global-state RNG call {name}()"
                elif name == "next" and len(node.args) == 1:
                    arg = node.args[0]
                    if is_shared_name(arg) and isinstance(arg, ast.Name):
                        yield node, (
                            f"module-global mutation: next() advances "
                            f"module-level iterator {arg.id!r}"
                        )
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATOR_METHODS
                and is_shared_name(func.value)
                and isinstance(func.value, ast.Name)
            ):
                yield node, (
                    f"module-global mutation: {func.value.id}.{func.attr}() "
                    "mutates module-level state"
                )
        elif isinstance(node, ast.Attribute) and not isinstance(
            node.ctx, ast.Store
        ):
            name = imports.canonical(node)
            if name is not None and (
                name == "os.environ" or name.startswith("os.environ.")
            ):
                yield node, "environment access os.environ"
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name) and target.id in declared_global:
                    yield node, (
                        f"module-global mutation: rebinds global {target.id!r}"
                    )
                elif isinstance(
                    target, (ast.Subscript, ast.Attribute)
                ) and is_shared_name(target.value):
                    base = target.value
                    assert isinstance(base, ast.Name)
                    yield node, (
                        f"module-global mutation: stores into module-level "
                        f"{base.id!r}"
                    )


def _format_chain(parents: dict[str, str | None], qualname: str) -> str:
    chain = [qualname]
    while True:
        parent = parents.get(chain[-1])
        if parent is None:
            break
        chain.append(parent)
    chain.reverse()
    if len(chain) > 6:
        chain = chain[:2] + ["..."] + chain[-3:]
    return " -> ".join(chain)


def check_purity(
    symbols: SymbolTable,
    graph: CallGraph,
    *,
    roots: tuple[str, ...] = DEFAULT_ROOTS,
    boundary_prefixes: tuple[str, ...] = DEFAULT_BOUNDARY_PREFIXES,
) -> list[Violation]:
    """Prove the reachable step-loop closure pure; return violations."""
    import_maps: dict[str, ImportMap] = {}

    def imports_for(module: str) -> ImportMap:
        if module not in import_maps:
            tree = symbols.project.modules[module].tree
            import_maps[module] = ImportMap.from_tree(tree)
        return import_maps[module]

    def in_boundary(module: str) -> bool:
        return any(
            module == p or module.startswith(p + ".") for p in boundary_prefixes
        )

    parents: dict[str, str | None] = {}
    queue: deque[str] = deque()
    for root in roots:
        if root in symbols.functions and root not in parents:
            parents[root] = None
            queue.append(root)

    violations: list[Violation] = []
    while queue:
        qualname = queue.popleft()
        fn = symbols.functions[qualname]
        if in_boundary(fn.module):
            continue  # sanctioned boundary: do not inspect or traverse
        module_globals = symbols.module_globals.get(fn.module, set())
        for node, description in _impurities(
            fn, imports_for(fn.module), module_globals
        ):
            violations.append(
                Violation(
                    path=fn.path,
                    line=getattr(node, "lineno", fn.lineno),
                    col=getattr(node, "col_offset", 0),
                    rule_id=RULE_ID,
                    message=(
                        f"{description} in step-reachable {qualname} "
                        f"[chain: {_format_chain(parents, qualname)}]"
                    ),
                )
            )
        for site in graph.callees(qualname):
            if site.callee not in parents and site.callee in symbols.functions:
                parents[site.callee] = qualname
                queue.append(site.callee)
    violations.sort()
    return violations

"""``python -m repro.analysis`` — standalone analyzer entry point."""

from __future__ import annotations

import sys

from repro.analysis.cli import main

if __name__ == "__main__":  # pragma: no cover - thin wrapper
    sys.exit(main())

"""RA014 — task lifecycle hygiene: no orphan tasks, no dropped coroutines.

Three asyncio lifecycle bugs share a syntactic signature and a silent
failure mode, which is why a linter (not a reviewer) should own them:

* **fire-and-forget tasks** — an expression-statement
  ``asyncio.create_task(...)`` (or ``ensure_future``/``tg.create_task``)
  discards the task handle: the event loop holds only a weak reference,
  so the task can be garbage-collected mid-flight, and its exception —
  if it ever fails — is reported to nobody.  Hold the reference or
  chain ``.add_done_callback`` (an attribute call on the task keeps the
  statement from matching).
* **unawaited coroutines** — an expression statement that calls a
  project ``async def`` without ``await`` creates a coroutine object
  and throws it away; the body never runs.  Python warns at runtime
  *if* the coroutine is collected while a warning filter is live; this
  pass proves it at analysis time, resolving bare names, ``self.m()``
  and dotted calls through the symbol table.
* **swallowed cancellation** — an ``except asyncio.CancelledError:``
  handler with no ``raise`` in its body converts cooperative
  cancellation into silent survival: the awaiting parent hangs forever
  in ``task.cancel()``/``wait_for``.  Cleanup is fine; keeping the
  exception is not.

All three checks are local to one function body, so the pass runs on
the symbol table alone (no call graph) and is cheap enough for the
``--changed-only`` pre-commit path.
"""

from __future__ import annotations

import ast

from repro.analysis.symbols import FunctionInfo, SymbolTable, annotation_to_dotted
from repro.lint.engine import Violation

__all__ = ["check_async_tasks"]

RULE_ID = "RA014"

#: Spawn calls whose return value is the only strong task reference.
_SPAWN_CANONICAL = frozenset({"asyncio.create_task", "asyncio.ensure_future"})
_SPAWN_METHODS = frozenset({"create_task", "ensure_future"})


def _is_spawn_call(symbols: SymbolTable, module: str, call: ast.Call) -> bool:
    dotted = annotation_to_dotted(call.func)
    if dotted is not None:
        if symbols.resolve(module, dotted) in _SPAWN_CANONICAL:
            return True
    # ``loop.create_task(...)`` / ``tg.create_task(...)``: method form on
    # an arbitrary receiver.
    func = call.func
    return isinstance(func, ast.Attribute) and func.attr in _SPAWN_METHODS


def _resolve_called_function(
    symbols: SymbolTable, fn: FunctionInfo, call: ast.Call
) -> FunctionInfo | None:
    """The project function a call resolves to, if statically known."""
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
        and fn.cls is not None
    ):
        return symbols.lookup_method(fn.cls, func.attr)
    dotted = annotation_to_dotted(func)
    if dotted is None:
        return None
    resolved = symbols.canonicalize(symbols.resolve(fn.module, dotted))
    return symbols.functions.get(resolved)


def _handler_catches_cancelled(handler: ast.ExceptHandler) -> bool:
    names: list[ast.expr] = []
    if handler.type is None:
        return False  # bare except: Exception-level style is RA007's beat
    if isinstance(handler.type, ast.Tuple):
        names.extend(handler.type.elts)
    else:
        names.append(handler.type)
    for expr in names:
        dotted = annotation_to_dotted(expr)
        if dotted is not None and dotted.rsplit(".", 1)[-1] == "CancelledError":
            return True
    return False


def _check_function(
    symbols: SymbolTable, fn: FunctionInfo, violations: list[Violation]
) -> None:
    def flag(node: ast.AST, message: str) -> None:
        violations.append(
            Violation(
                path=fn.path,
                line=getattr(node, "lineno", fn.lineno),
                col=getattr(node, "col_offset", 0),
                rule_id=RULE_ID,
                message=message,
            )
        )

    for node in ast.walk(fn.node):
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            call = node.value
            if _is_spawn_call(symbols, fn.module, call):
                flag(
                    call,
                    f"fire-and-forget task in {fn.qualname}: the handle is "
                    "discarded, so the loop holds only a weak reference and "
                    "failures go unreported; keep the task or chain "
                    ".add_done_callback",
                )
                continue
            called = _resolve_called_function(symbols, fn, call)
            if called is not None and isinstance(
                called.node, ast.AsyncFunctionDef
            ):
                flag(
                    call,
                    f"coroutine {called.qualname} created but never awaited "
                    f"in {fn.qualname}: the body will not run; await it or "
                    "hand it to asyncio.create_task",
                )
        elif isinstance(node, ast.ExceptHandler):
            if _handler_catches_cancelled(node) and not any(
                isinstance(inner, ast.Raise) for inner in ast.walk(node)
            ):
                flag(
                    node,
                    f"CancelledError swallowed in {fn.qualname}: the handler "
                    "never re-raises, so cooperative cancellation silently "
                    "stops propagating; clean up, then `raise`",
                )


def check_async_tasks(symbols: SymbolTable) -> list[Violation]:
    """Run the task-lifecycle checks over every project function."""
    violations: list[Violation] = []
    for qualname in sorted(symbols.functions):
        _check_function(symbols, symbols.functions[qualname], violations)
    violations.sort()
    return violations

"""The game operator: load prediction and demand estimation.

"The game operators perform a prediction of the game load (i.e., number
of players and interactions per zone) every two minutes and, based on
the results, request an appropriate amount of resources to the data
centres" (Sec. V).  A :class:`GameOperator` holds one predictor per
region (operating on all the region's server groups in a batch),
converts predicted per-group player counts into a resource demand via
its game's :class:`~repro.core.loadmodel.DemandModel`, and optionally
pads the request with a safety margin (the Sec. V-C mitigation for games
that cannot tolerate any under-allocation events).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Mapping

import numpy as np

from repro.core.loadmodel import DemandModel
from repro.datacenter.geography import LatencyClass
from repro.datacenter.resources import Cpu, ResourceVector
from repro.predictors.base import Predictor
from repro.traces.model import GameTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import Counter, MetricsRegistry

__all__ = ["GameOperator"]


class GameOperator:
    """Operates one MMOG: predicts load, estimates demand per region.

    Parameters
    ----------
    operator_id:
        Unique tenant identifier.
    game_id:
        The game this operator instance runs.
    demand_model:
        Player-count → resource-demand conversion.
    predictor_factory:
        Zero-argument callable building a fresh predictor; one instance
        is created per region.
    latency_class:
        The game's latency tolerance (drives the matching distance
        filter).
    safety_margin:
        Fractional padding on the predicted demand (0 = request exactly
        the prediction).
    cpu_quantum:
        Per-server-group CPU allocation granularity (each world is a
        separate server instance); 0 disables.  Typically set to the
        hosting platform's CPU bulk.
    """

    def __init__(
        self,
        operator_id: str,
        game_id: str,
        demand_model: DemandModel,
        predictor_factory: Callable[[], Predictor],
        *,
        latency_class: LatencyClass = LatencyClass.VERY_FAR,
        safety_margin: float = 0.0,
        cpu_quantum: Cpu = Cpu(0.0),
    ) -> None:
        if safety_margin < 0:
            raise ValueError("safety_margin must be non-negative")
        if cpu_quantum < 0:
            raise ValueError("cpu_quantum must be non-negative")
        self.operator_id = operator_id
        self.game_id = game_id
        self.demand_model = demand_model
        self.predictor_factory = predictor_factory
        self.latency_class = latency_class
        self.safety_margin = float(safety_margin)
        self.cpu_quantum: Cpu = Cpu(float(cpu_quantum))
        self._predictors: dict[str, Predictor] = {}
        self._last_predicted: dict[str, np.ndarray] = {}
        self._scheduled: dict[str, dict[int, np.ndarray]] = {}
        self._c_predictions: "Counter | None" = None

    # -- lifecycle ------------------------------------------------------------

    def attach_metrics(self, metrics: "MetricsRegistry") -> None:
        """Bind the predictor-evaluation work counter.

        ``operator.predictor_evaluations`` counts single-step predictor
        invocations (a multi-step horizon forecast counts once per
        iterated step), so time-per-prediction stays separable from
        prediction-volume drift in the bench trajectory.
        """
        self._c_predictions = metrics.counter("operator.predictor_evaluations")

    def prepare(self, warmup: Mapping[str, np.ndarray]) -> None:
        """Run the off-line phases on warm-up history.

        Parameters
        ----------
        warmup:
            Per-region matrices of shape ``(n_steps, n_groups)`` — the
            data-collection history preceding the simulated window.
            Trainable predictors are fit on it; every predictor then
            streams over it so its state is warm at step 0.
        """
        for region_name, history in warmup.items():
            history = np.asarray(history, dtype=np.float64)
            predictor = self.predictor_factory()
            if hasattr(predictor, "fit"):
                predictor.fit(history)
            predictor.reset(history.shape[1])
            for row in history:
                predictor.observe(row)
            self._predictors[region_name] = predictor

    def _predictor(self, region_name: str, n_groups: int) -> Predictor:
        if region_name not in self._predictors:
            predictor = self.predictor_factory()
            predictor.reset(n_groups)
            self._predictors[region_name] = predictor
        return self._predictors[region_name]

    # -- the per-step protocol -----------------------------------------------------

    def observe(self, region_name: str, players: np.ndarray) -> None:
        """Feed the actual player counts of the just-finished step."""
        players = np.asarray(players, dtype=np.float64)
        self._predictor(region_name, players.size).observe(players)

    def predict_players(self, region_name: str, n_groups: int) -> np.ndarray:
        """Predicted per-group player counts for the next step (>= 0)."""
        if self._c_predictions is not None:
            self._c_predictions.inc()
        pred = self._predictor(region_name, n_groups).predict()
        return np.maximum(pred, 0.0)

    def desired_allocation(self, region_name: str, n_groups: int) -> ResourceVector:
        """The resource vector to request for the next step.

        Prediction → demand conversion → safety margin.
        """
        predicted = self.predict_players(region_name, n_groups)
        self._last_predicted[region_name] = predicted
        demand = self.demand_model.demand(predicted, cpu_quantum=self.cpu_quantum)
        if self.safety_margin > 0:
            demand = demand * (1.0 + self.safety_margin)
        return demand

    def last_predicted_players(self, region_name: str) -> np.ndarray | None:
        """The prediction behind the most recent request for a region.

        Drives the per-group server-assignment accounting: the servers
        assigned to a world this step were sized from this prediction.
        """
        return self._last_predicted.get(region_name)

    # -- advance reservations (Sec. II-B's second service model) -----------------

    def desired_allocation_ahead(
        self, region_name: str, n_groups: int, lead: int, target_step: int
    ) -> ResourceVector:
        """The resource vector to *book* for ``lead`` steps ahead.

        Uses the predictor's iterated multi-step forecast; the per-group
        prediction is stashed under ``target_step`` so the simulator can
        score the booking against the load it was sized for.
        """
        if lead <= 0:
            raise ValueError("lead must be positive for advance booking")
        if self._c_predictions is not None:
            self._c_predictions.inc(lead + 1)
        horizon = self._predictor(region_name, n_groups).predict_horizon(lead + 1)
        predicted = np.maximum(horizon[-1], 0.0)
        self._scheduled.setdefault(region_name, {})[target_step] = predicted
        self._last_predicted[region_name] = predicted
        demand = self.demand_model.demand(predicted, cpu_quantum=self.cpu_quantum)
        if self.safety_margin > 0:
            demand = demand * (1.0 + self.safety_margin)
        return demand

    def scheduled_players(self, region_name: str, step: int) -> np.ndarray | None:
        """Pop the prediction that sized the booking for ``step``."""
        return self._scheduled.get(region_name, {}).pop(step, None)

    def actual_demand(self, players: np.ndarray) -> ResourceVector:
        """The demand the *actual* load generates (for metrics)."""
        return self.demand_model.demand(np.asarray(players, dtype=np.float64))

    # -- helpers ----------------------------------------------------------------

    @staticmethod
    def warmup_from_trace(trace: GameTrace, n_steps: int) -> dict[str, np.ndarray]:
        """Extract the first ``n_steps`` of every region as warm-up data."""
        if n_steps <= 0:
            raise ValueError("n_steps must be positive")
        return {r.name: r.loads[:n_steps].astype(np.float64) for r in trace.regions}

"""Tick-incremental simulation core shared by offline runs and ``repro serve``.

:class:`TickStepper` is the trace-free heart of the ecosystem
simulator: it owns the operators, the provisioner and the metric
timelines, and advances the ecosystem one step at a time from whatever
load observations the caller feeds it.  Two callers exist:

* :class:`repro.core.ecosystem.EcosystemSimulator` replays a recorded
  :class:`~repro.traces.model.GameTrace` through it (the Sec. V
  experiments), and
* the live provisioning service (:mod:`repro.service`) feeds it load
  reports streamed over the wire.

Because both paths execute the *same* per-step code — reconcile in
priority order, score the in-place allocation against the actual load,
sweep invariants, account per-center usage, let operators observe —
a served run and an offline run over equal load sequences produce
exactly equal deterministic work counters.  That is the differential
contract tested in ``tests/service`` and gated in CI.

The stepper is also the restartability boundary for the service: all
mutable run state lives on the stepper (and the objects it owns), so a
service tick handler holds no hidden module or closure state — the
RA016 tick-restartability pass checks exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.loadmodel import DemandModel
from repro.core.matching import MatchingPolicy
from repro.core.metrics import (
    SIGNIFICANT_UNDER_ALLOCATION_PERCENT,
    MetricsTimeline,
    over_allocation_percent,
)
from repro.core.operator import GameOperator
from repro.core.provisioner import DynamicProvisioner, StaticProvisioner
from repro.datacenter.center import DataCenter
from repro.datacenter.geography import GeoLocation, LatencyClass
from repro.datacenter.resources import CPU, RESOURCE_TYPES, Cpu, ResourceVector
from repro.obs.ambient import record_ambient_phases
from repro.obs.invariants import InvariantChecker
from repro.obs.registry import Counter, Histogram, MetricsRegistry
from repro.obs.timing import PhaseTimer
from repro.obs.trace import current_recorder, span
from repro.obs.tracer import StepTracer
from repro.predictors.base import Predictor

__all__ = [
    "TickRegion",
    "TickGame",
    "TickDecision",
    "SimulationResult",
    "TickStepper",
    "finest_cpu_bulk",
]


def finest_cpu_bulk(centers: Sequence[DataCenter]) -> Cpu:
    """The finest CPU allocation bulk any data center offers.

    The default per-server-group CPU quantum — shared by
    :meth:`repro.core.ecosystem.GameSpec.resolved_quantum` and the live
    service's registration path so both resolve identical quanta
    (config parity is a precondition of the served↔offline
    counter-equality contract).
    """
    bulks = [
        c.policy.resource_bulk.cpu for c in centers if c.policy.resource_bulk.cpu > 0
    ]
    return min(bulks) if bulks else Cpu(0.0)


@dataclass(frozen=True)
class TickRegion:
    """One geographic region of a game, described without its trace."""

    name: str
    location: GeoLocation
    n_groups: int


@dataclass(frozen=True)
class TickGame:
    """The trace-free description of one MMOG for :class:`TickStepper`.

    Unlike :class:`~repro.core.ecosystem.GameSpec` this carries no
    workload — only the per-game knobs the stepper needs to build an
    operator and iterate regions.  ``cpu_quantum`` must already be
    resolved against the hosting platform (see
    :meth:`~repro.core.ecosystem.GameSpec.resolved_quantum`).
    """

    name: str
    operator_id: str
    regions: tuple[TickRegion, ...]
    demand_model: DemandModel
    predictor_factory: Callable[[], Predictor]
    latency_class: LatencyClass = LatencyClass.VERY_FAR
    safety_margin: float = 0.0
    cpu_quantum: Cpu = Cpu(0.0)
    priority: int = 0

    def build_operator(self) -> GameOperator:
        """Instantiate the operator for this game."""
        return GameOperator(
            self.operator_id,
            self.name,
            self.demand_model,
            self.predictor_factory,
            latency_class=self.latency_class,
            safety_margin=self.safety_margin,
            cpu_quantum=self.cpu_quantum,
        )


@dataclass(frozen=True)
class TickDecision:
    """One reallocation decision pushed to a client after a tick."""

    game: str
    region: str
    desired: tuple[float, ...]
    allocated: tuple[float, ...]
    fully_matched: bool


@dataclass
class SimulationResult:
    """Everything the Sec. V experiments read off one run.

    Attributes
    ----------
    per_game:
        One metric timeline per game (over the evaluation window).
    combined:
        The platform-wide timeline (totals across games).
    center_cpu_mean:
        Mean CPU units allocated per data center over the evaluation
        window (Figs. 13-14).
    center_region_cpu_mean:
        Mean CPU units per (data center, requesting region) pair.
    center_capacity_cpu:
        CPU capacity per data center.
    unmatched_steps:
        Steps on which some demand could not be hosted anywhere.
    eval_steps / step_minutes:
        Evaluation-window geometry.
    timings:
        Per-phase wall-clock seconds (only when a metrics registry was
        installed; ``None`` otherwise).
    invariant_checks:
        Number of per-step invariant sweeps that ran (0 when checking
        was off).
    """

    per_game: dict[str, MetricsTimeline]
    combined: MetricsTimeline
    center_cpu_mean: dict[str, float]
    center_region_cpu_mean: dict[tuple[str, str], float]
    center_capacity_cpu: dict[str, float]
    unmatched_steps: int
    eval_steps: int
    step_minutes: float
    timings: dict[str, float] | None = None
    invariant_checks: int = 0


class TickStepper:
    """Advances one configured ecosystem a step at a time.

    The constructor mirrors the setup phase of the original monolithic
    run loop exactly — registry instruments are created in the same
    order (center counters, sim counters, operator counters,
    provisioner counters) so metric snapshots stay byte-identical with
    pre-extraction runs.

    Lifecycle: ``prepare(warmup)`` once, ``install_static(peaks)`` once
    in static mode, then ``step(t, loads)`` for every evaluation step
    ``t`` in ``[warmup_steps, total_steps)``, then ``finish()``.
    """

    def __init__(
        self,
        games: Sequence[TickGame],
        centers: Sequence[DataCenter],
        *,
        warmup_steps: int,
        total_steps: int,
        mode: str = "dynamic",
        step_minutes: float = 2.0,
        matching: MatchingPolicy | None = None,
        advance_lead_steps: int = 0,
        metrics: MetricsRegistry | None = None,
        tracer: StepTracer | None = None,
        checker: InvariantChecker | None = None,
        collect_decisions: bool = False,
    ) -> None:
        if mode not in ("dynamic", "static"):
            raise ValueError("mode must be 'dynamic' or 'static'")
        if not 0 <= warmup_steps < total_steps:
            raise ValueError("warmup_steps must be in [0, total_steps)")
        self.games = tuple(games)
        self.centers = list(centers)
        self.mode = mode
        self.step_minutes = float(step_minutes)
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.eval_steps = total_steps - warmup_steps
        self.advance_lead_steps = advance_lead_steps
        self.collect_decisions = collect_decisions
        self.metrics = metrics
        self.tracer = tracer
        self.checker = checker

        # Observability: all hooks default to off; each record site is
        # guarded by a single ``is None`` test so the disabled cost is
        # one pointer comparison.
        self._timer: PhaseTimer | None = None
        self._c_steps: Counter | None = None
        self._c_unmatched: Counter | None = None
        self._c_events: Counter | None = None
        self._h_omega: Histogram | None = None
        self._h_upsilon: Histogram | None = None
        if metrics is not None:
            self._timer = PhaseTimer()
            for center in self.centers:
                center.attach_metrics(metrics)
            self._c_steps = metrics.counter("sim.steps")
            self._c_unmatched = metrics.counter("sim.unmatched_steps")
            self._c_events = metrics.counter("sim.significant_events")
            self._h_omega = metrics.histogram("sim.omega_cpu")
            self._h_upsilon = metrics.histogram("sim.upsilon_cpu")

        self.operators = {g.name: g.build_operator() for g in self.games}
        if metrics is not None:
            for op in self.operators.values():
                op.attach_metrics(metrics)
        self.provisioner: DynamicProvisioner | StaticProvisioner
        if mode == "dynamic":
            self.provisioner = DynamicProvisioner(
                self.centers,
                matching=matching if matching is not None else MatchingPolicy(),
                step_minutes=self.step_minutes,
                metrics=metrics,
                tracer=tracer,
            )
        else:
            self.provisioner = StaticProvisioner(
                self.centers,
                matching=matching if matching is not None else MatchingPolicy(),
                step_minutes=self.step_minutes,
                metrics=metrics,
                tracer=tracer,
            )

        # Stable sort: priority ties keep configuration order.
        self._ordered_games = sorted(self.games, key=lambda g: -g.priority)
        self.per_game = {g.name: MetricsTimeline(self.eval_steps) for g in self.games}
        self.combined = MetricsTimeline(self.eval_steps)
        self._center_cpu_sum: dict[str, float] = {c.name: 0.0 for c in self.centers}
        self._center_region_cpu_sum: dict[tuple[str, str], float] = {}
        self.unmatched_steps = 0
        self._static_assigned: dict[tuple[str, str], np.ndarray] = {}
        self._t_mark = 0.0

    # -- off-line phases ------------------------------------------------------

    def prepare(self, warmup: Mapping[str, Mapping[str, np.ndarray]]) -> None:
        """Run the off-line phases: predictor training + state warm-up.

        ``warmup`` maps game name → (region name → ``(n_steps,
        n_groups)`` player-count history).  Games absent from the
        mapping (or mapped to empty histories) skip training — the
        cold-start path.
        """
        t_mark = self._timer.mark() if self._timer is not None else 0.0
        with span("warmup"):
            for game in self.games:
                history = warmup.get(game.name)
                if history:
                    self.operators[game.name].prepare(history)
        if self._timer is not None:
            t_mark = self._timer.lap("warmup", t_mark)
        self._t_mark = t_mark

    def install_static(self, peak_players: Mapping[tuple[str, str], np.ndarray]) -> None:
        """Install peak-sized servers up front (static mode only).

        ``peak_players`` maps (game, region) → per-group peak player
        counts over the horizon — the worst case each world's own
        servers must carry; static infrastructure cannot shuffle
        capacity between worlds mid-flight.
        """
        provisioner = self.provisioner
        if not isinstance(provisioner, StaticProvisioner):
            raise RuntimeError("install_static requires mode='static'")
        with span("install"):
            for game in self.games:
                op = self.operators[game.name]
                # games x regions is config-bounded (a handful each), not
                # data-scaled: nested scan is the intended shape.
                for region in game.regions:  # reprolint: disable=RA008
                    peak = peak_players[(game.name, region.name)]
                    assigned = game.demand_model.demand_per_group(
                        peak, cpu_quantum=op.cpu_quantum
                    )
                    self._static_assigned[(game.name, region.name)] = assigned
                    provisioner.install(
                        op,
                        region.name,
                        region.location,
                        ResourceVector.from_array(assigned.sum(axis=0)),
                    )
        if self._timer is not None:
            self._t_mark = self._timer.lap("install", self._t_mark)

    # -- the tick -------------------------------------------------------------

    def step(
        self, t: int, loads: Mapping[tuple[str, str], np.ndarray]
    ) -> list[TickDecision]:
        """Advance one step: reconcile, score, sweep, account, observe.

        ``loads`` maps (game, region) → per-group player counts
        actually observed at step ``t``.  Returns the reallocation
        decisions of the step when ``collect_decisions`` is on (the
        service pushes these to clients); the offline replay leaves it
        off and discards nothing.
        """
        cfg_mode = self.mode
        tracer = self.tracer
        timer = self._timer
        metrics = self.metrics
        checker = self.checker
        provisioner = self.provisioner
        operators = self.operators
        decisions: list[TickDecision] = []
        rec = current_recorder()
        frec = rec if rec is not None and rec.fine else None
        h_step = rec.begin("step") if rec is not None else None
        if tracer is not None:
            tracer.emit("step", step=t, mode=cfg_mode)
        t_mark = timer.mark() if timer is not None else 0.0
        # 1. Reconcile allocations for this step from predictions made
        #    on data up to t-1 (dynamic mode only).  Games are served
        #    in priority order (the Sec. V-F future-work mechanism);
        #    equal priorities keep configuration order.
        h_phase = rec.begin("reconcile") if rec is not None else None
        any_unmatched = False
        if cfg_mode == "dynamic":
            lead = self.advance_lead_steps
            for game in self._ordered_games:
                op = operators[game.name]
                # games x regions is config-bounded; see above.
                for region in game.regions:  # reprolint: disable=RA008
                    h_fine = frec.begin("predict") if frec is not None else None
                    if lead > 0:
                        desired = op.desired_allocation_ahead(
                            region.name, region.n_groups, lead, t + lead
                        )
                    else:
                        desired = op.desired_allocation(region.name, region.n_groups)
                    if h_fine is not None:
                        h_fine.end()
                    if tracer is not None:
                        tracer.emit(
                            "reconcile",
                            step=t,
                            operator=op.operator_id,
                            game=game.name,
                            region=region.name,
                            desired=desired.values.tolist(),
                        )
                    h_fine = frec.begin("match") if frec is not None else None
                    plan = provisioner.reconcile(
                        op, region.name, region.location, desired, t
                    )
                    if h_fine is not None:
                        h_fine.end()
                    if not plan.fully_matched:
                        any_unmatched = True
                    if self.collect_decisions:
                        # Decision payloads are len(RESOURCE_TYPES)=4
                        # tuples per config-bounded (game, region) pair,
                        # built only when the service asked for them —
                        # not a data-scaled per-tick allocation.
                        decisions.append(
                            TickDecision(
                                game=game.name,
                                region=region.name,
                                desired=tuple(  # reprolint: disable=RA008
                                    float(v) for v in desired.values
                                ),
                                allocated=tuple(  # reprolint: disable=RA008
                                    float(v)
                                    for v in provisioner.allocation_array(
                                        op, region.name
                                    )
                                ),
                                fully_matched=plan.fully_matched,
                            )
                        )
        if any_unmatched:
            self.unmatched_steps += 1
            if self._c_unmatched is not None:
                self._c_unmatched.inc()
        if timer is not None:
            t_mark = timer.lap("reconcile", t_mark)
        if h_phase is not None:
            h_phase.end()

        # 2. Score the in-place allocation against the actual load.
        #    Under-allocation uses per-group granularity: each game
        #    world runs on servers sized from the prediction behind
        #    the last request, and a world's shortfall cannot be
        #    absorbed by another world's idle surplus within the
        #    step (Eq. 2's per-machine min; migration unsupported).
        h_phase = rec.begin("score") if rec is not None else None
        n_res = len(RESOURCE_TYPES)
        combined_alloc = np.zeros(n_res)
        combined_load = np.zeros(n_res)
        combined_deficit = np.zeros(n_res)
        combined_machines = 0
        for game in self.games:
            op = operators[game.name]
            game_alloc = np.zeros(n_res)
            game_load = np.zeros(n_res)
            game_deficit = np.zeros(n_res)
            game_machines = 0
            # games x regions is config-bounded; see above.
            for region in game.regions:  # reprolint: disable=RA008
                players = loads[(game.name, region.name)]
                lam = op.demand_model.demand_per_group(players)  # true load
                game_load += lam.sum(axis=0)
                alloc_vec = provisioner.allocation_array(op, region.name)
                game_alloc += alloc_vec
                game_machines += provisioner.machines(op, region.name)

                if cfg_mode == "static":
                    assigned = self._static_assigned[(game.name, region.name)]
                else:
                    if self.advance_lead_steps > 0:
                        # Score against the booking that was sized
                        # for this step; early steps (booked during
                        # the on-demand cold start) fall back to the
                        # latest prediction.
                        pred = op.scheduled_players(region.name, t)
                        if pred is None:
                            pred = op.last_predicted_players(region.name)
                    else:
                        pred = op.last_predicted_players(region.name)
                    if pred is None:
                        pred = players.astype(np.float64)
                    assigned = op.demand_model.demand_per_group(
                        pred, cpu_quantum=op.cpu_quantum
                    )
                # Scale assignments down where the platform could
                # not host the full request (contention).
                total_assigned = assigned.sum(axis=0)
                rho = np.ones(n_res)
                positive = total_assigned > 1e-12
                rho[positive] = np.minimum(
                    1.0, alloc_vec[positive] / total_assigned[positive]
                )
                region_deficit = np.maximum(lam - assigned * rho, 0.0).sum(axis=0)
                # CPU is machine/world-bound (per-group accounting);
                # memory travels with the machines.  The external
                # network is a data-center-level pool (Sec. II-B),
                # so its shortfall is the pooled one.
                lam_total = lam.sum(axis=0)
                pooled = np.maximum(lam_total - alloc_vec, 0.0)
                region_deficit[2:] = pooled[2:]  # ExtNet[in], ExtNet[out]
                game_deficit += region_deficit
            self.per_game[game.name].record(
                game_alloc, game_load, game_machines, deficit=game_deficit
            )
            if checker is not None:
                checker.check_score(game.name, t, game_alloc, game_load, game_deficit)
            if tracer is not None:
                tracer.emit(
                    "score",
                    step=t,
                    game=game.name,
                    allocated=game_alloc.tolist(),
                    load=game_load.tolist(),
                    deficit=game_deficit.tolist(),
                    machines=game_machines,
                )
            combined_alloc += game_alloc
            combined_load += game_load
            combined_deficit += game_deficit
            combined_machines += game_machines
        self.combined.record(
            combined_alloc, combined_load, combined_machines, deficit=combined_deficit
        )
        cpu_i = int(CPU)
        if metrics is not None:
            # Per-step Ω/Υ contributions (CPU, the contended resource).
            assert self._c_steps is not None
            assert self._h_omega is not None
            assert self._h_upsilon is not None
            assert self._c_events is not None
            assert timer is not None
            self._c_steps.inc()
            self._h_omega.observe(
                over_allocation_percent(combined_alloc[cpu_i], combined_load[cpu_i])
            )
            upsilon = -combined_deficit[cpu_i] / max(combined_machines, 1) * 100.0
            self._h_upsilon.observe(upsilon)
            if upsilon < -SIGNIFICANT_UNDER_ALLOCATION_PERCENT:
                self._c_events.inc()
            t_mark = timer.lap("score", t_mark)
        if h_phase is not None:
            h_phase.end()

        # Sanitizer sweep: ledgers vs. ground truth, every step.
        if checker is not None:
            with span("invariants"):
                checker.check_step(provisioner, t)
            if timer is not None:
                t_mark = timer.lap("invariants", t_mark)

        # Per-center accounting (CPU only, the contended resource).
        h_phase = rec.begin("accounting") if rec is not None else None
        for center in self.centers:
            self._center_cpu_sum[center.name] += center.allocated[CPU]
        for k, vec in provisioner.allocation_by_center_and_region().items():
            self._center_region_cpu_sum[k] = self._center_region_cpu_sum.get(
                k, 0.0
            ) + float(vec[cpu_i])
        if timer is not None:
            t_mark = timer.lap("accounting", t_mark)
        if h_phase is not None:
            h_phase.end()

        # 3. Operators observe the actual load and move on.
        h_phase = rec.begin("observe") if rec is not None else None
        for game in self.games:
            op = operators[game.name]
            # games x regions is config-bounded; see above.
            for region in game.regions:  # reprolint: disable=RA008
                op.observe(region.name, loads[(game.name, region.name)])
        if timer is not None:
            t_mark = timer.lap("observe", t_mark)
        if h_phase is not None:
            h_phase.end()
        self._t_mark = t_mark
        if h_step is not None:
            h_step.end()
        return decisions

    # -- teardown -------------------------------------------------------------

    def snapshot_counters(self) -> dict[str, float]:
        """Current deterministic work counters (empty without metrics)."""
        if self.metrics is None:
            return {}
        return {
            inst.name: float(inst.value)
            for inst in self.metrics
            if isinstance(inst, Counter)
        }

    def finish(self) -> SimulationResult:
        """Tear down leases (so the centers are reusable) and report."""
        timer = self._timer
        tracer = self.tracer
        checker = self.checker
        self.provisioner.release_everything(self.total_steps)
        if timer is not None:
            record_ambient_phases(timer)
        if tracer is not None:
            tracer.emit(
                "run_end",
                steps=self.eval_steps,
                mode=self.mode,
                unmatched_steps=self.unmatched_steps,
                invariant_checks=checker.checks_run if checker is not None else 0,
                violations=len(checker.violations) if checker is not None else 0,
            )
        return SimulationResult(
            per_game=self.per_game,
            combined=self.combined,
            center_cpu_mean={
                name: total / self.eval_steps
                for name, total in self._center_cpu_sum.items()
            },
            center_region_cpu_mean={
                key: total / self.eval_steps
                for key, total in self._center_region_cpu_sum.items()
            },
            center_capacity_cpu={c.name: c.capacity[CPU] for c in self.centers},
            unmatched_steps=self.unmatched_steps,
            eval_steps=self.eval_steps,
            step_minutes=self.step_minutes,
            timings=dict(timer.seconds) if timer is not None else None,
            invariant_checks=checker.checks_run if checker is not None else 0,
        )

"""Update models and the load-to-resource-demand conversion.

Section II-A: with ``n`` entities in a zone, the cost of computing one
state update ranges from ``O(n)`` (mostly solitary players) through
``O(n^2)`` (many individually interacting players) to ``O(n^3)``
(interacting groups); area-of-interest filtering reduces the latter two
to ``O(n log n)`` and ``O(n^2 log n)``.

The demand conversion (Sec. V-A) is anchored at the *resource unit*: one
unit of each resource is what a fully loaded game server (2,000
simultaneous clients) consumes.  For a server group with ``n`` players
under update model ``f``, the CPU demand is therefore ``f(n) / f(2000)``
units — convex models make peak-hour demand disproportionately
expensive, which is exactly the effect Sec. V-C measures.  Memory scales
with the resident entities (``O(n)``); the outbound state stream scales
with the connected clients (``O(n)``); the inbound command stream also
scales with clients but is a small fraction of a unit per full server (client
commands are tiny compared to the outbound state stream — see the
Fig. 4 packet sizes; the ~1000 % ExtNet[in] over-allocations of Table V
under the 4-6-unit inbound bulks of HP-1/HP-2 imply this calibration).
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Callable, Mapping

import numpy as np

from repro.datacenter.resources import Cpu, ResourceVector

__all__ = ["UpdateModel", "UPDATE_MODELS", "update_model", "DemandModel"]


@dataclass(frozen=True)
class UpdateModel:
    """One interaction-complexity class.

    Attributes
    ----------
    name:
        Display name, e.g. ``"O(n^2)"``.
    cost:
        Vectorized cost function of the entity count (arbitrary units;
        only ratios matter).
    """

    name: str
    cost: Callable[[np.ndarray], np.ndarray]

    def relative_load(self, players: np.ndarray, players_full: float) -> np.ndarray:
        """Load in server units: ``cost(players) / cost(players_full)``.

        A full server (``players == players_full``) costs exactly 1 unit
        under every model; convexity shows up below and above that
        anchor.
        """
        n = np.asarray(players, dtype=np.float64)
        denom = float(self.cost(np.asarray(players_full, dtype=np.float64)))
        if denom <= 0:
            raise ValueError("cost at full load must be positive")
        return self.cost(n) / denom

    def __repr__(self) -> str:
        return f"UpdateModel({self.name!r})"


def _log_safe(n: np.ndarray) -> np.ndarray:
    # log(n) clamped at 1 so the model is monotone down to tiny counts.
    return np.log(np.maximum(np.asarray(n, dtype=np.float64), np.e))


#: The five update models evaluated in Sec. V-C, keyed by display name.
#: Read-only (RL005): module state must not be mutable.
UPDATE_MODELS: Mapping[str, UpdateModel] = MappingProxyType(
    {
        m.name: m
        for m in [
            UpdateModel("O(n)", lambda n: np.asarray(n, dtype=np.float64)),
            UpdateModel("O(n log n)", lambda n: np.asarray(n, dtype=np.float64) * _log_safe(n)),
            UpdateModel("O(n^2)", lambda n: np.asarray(n, dtype=np.float64) ** 2),
            UpdateModel(
                "O(n^2 log n)", lambda n: np.asarray(n, dtype=np.float64) ** 2 * _log_safe(n)
            ),
            UpdateModel("O(n^3)", lambda n: np.asarray(n, dtype=np.float64) ** 3),
        ]
    }
)


def update_model(name: str) -> UpdateModel:
    """Look up an update model by display name (e.g. ``"O(n^2)"``)."""
    try:
        return UPDATE_MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown update model {name!r}; known: {list(UPDATE_MODELS)}"
        ) from None


@dataclass(frozen=True)
class DemandModel:
    """Converts per-server-group player counts into resource demand.

    Parameters
    ----------
    update:
        The game's interaction/update model (drives CPU).
    players_full:
        Clients on a fully loaded game server (the unit anchor; paper:
        2,000).
    memory_per_unit / extnet_in_per_unit / extnet_out_per_unit:
        Resource units consumed per fully-loaded-server-equivalent of
        players for the linear resources.
    """

    update: UpdateModel
    players_full: float = 2000.0
    memory_per_unit: float = 1.0
    extnet_in_per_unit: float = 0.04
    extnet_out_per_unit: float = 1.0

    def __post_init__(self) -> None:
        if self.players_full <= 0:
            raise ValueError("players_full must be positive")
        for v in (self.memory_per_unit, self.extnet_in_per_unit, self.extnet_out_per_unit):
            if v < 0:
                raise ValueError("per-unit coefficients must be non-negative")

    def cpu_units(self, players: np.ndarray) -> np.ndarray:
        """CPU demand per server group, in units."""
        return self.update.relative_load(players, self.players_full)

    def demand(self, players: np.ndarray, *, cpu_quantum: Cpu = Cpu(0.0)) -> ResourceVector:
        """Aggregate demand vector for a set of server groups.

        Parameters
        ----------
        players:
            1-D array of concurrent players per server group.
        cpu_quantum:
            When positive, each server group's CPU demand is rounded up
            to a multiple of this quantum before summing: every group
            is a separate game-server instance, so its allocation is
            granular even when the regional total is not.  This is the
            allocation-side granularity; metrics always compare against
            the un-quantized true load.
        """
        n = np.asarray(players, dtype=np.float64)
        cpu_per_group = self.cpu_units(n)
        if cpu_quantum > 0:
            cpu_per_group = np.ceil(cpu_per_group / cpu_quantum - 1e-9) * cpu_quantum
        cpu = float(cpu_per_group.sum())
        linear = float(n.sum()) / self.players_full
        return ResourceVector(
            cpu=cpu,
            memory=linear * self.memory_per_unit,
            extnet_in=linear * self.extnet_in_per_unit,
            extnet_out=linear * self.extnet_out_per_unit,
        )

    def demand_per_group(
        self, players: np.ndarray, *, cpu_quantum: Cpu = Cpu(0.0)
    ) -> np.ndarray:
        """Per-server-group demand matrix, shape ``(n_groups, 4)``.

        Row ``g`` is the resource vector generated (or, with
        ``cpu_quantum``, assigned) for server group ``g``; columns
        follow :data:`repro.datacenter.resources.RESOURCE_TYPES` order.
        Used by the per-group under-allocation accounting: a game world
        runs on its own servers, so another world's surplus cannot
        absorb its deficit within a step (migration is not supported).
        """
        n = np.asarray(players, dtype=np.float64)
        if n.ndim != 1:
            raise ValueError("players must be 1-D")
        cpu = self.cpu_units(n)
        if cpu_quantum > 0:
            cpu = np.ceil(cpu / cpu_quantum - 1e-9) * cpu_quantum
        linear = n / self.players_full
        out = np.empty((n.size, 4))
        out[:, 0] = cpu
        out[:, 1] = linear * self.memory_per_unit
        out[:, 2] = linear * self.extnet_in_per_unit
        out[:, 3] = linear * self.extnet_out_per_unit
        return out

    def peak_demand(self, loads: np.ndarray, *, cpu_quantum: Cpu = Cpu(0.0)) -> ResourceVector:
        """The per-step maximum demand over a load history.

        Parameters
        ----------
        loads:
            Shape ``(n_steps, n_groups)`` player counts.
        cpu_quantum:
            Per-group CPU granularity, as in :meth:`demand`.

        Returns
        -------
        ResourceVector
            Componentwise maximum over steps of the per-step demand —
            what a static provisioner must install to never fall short.
        """
        arr = np.asarray(loads, dtype=np.float64)
        if arr.ndim != 2:
            raise ValueError("loads must be 2-D: (n_steps, n_groups)")
        cpu_per_group = self.cpu_units(arr)
        if cpu_quantum > 0:
            cpu_per_group = np.ceil(cpu_per_group / cpu_quantum - 1e-9) * cpu_quantum
        cpu = cpu_per_group.sum(axis=1)
        linear = arr.sum(axis=1) / self.players_full
        return ResourceVector(
            cpu=float(cpu.max()),
            memory=float(linear.max()) * self.memory_per_unit,
            extnet_in=float(linear.max()) * self.extnet_in_per_unit,
            extnet_out=float(linear.max()) * self.extnet_out_per_unit,
        )

"""Provisioning metrics: over-allocation, under-allocation, events.

The paper characterizes performance with three metrics (Sec. V):

* **resource over-allocation** Ω(t) — Eq. 1 defines the ratio of
  allocated to needed resources, ``sum(alpha_m) / sum(lambda_m) * 100``.
  The *reported* numbers (e.g. "average over-allocation is around 25 %,
  compared to 250 % for static") are the excess over a perfect fit, so
  :func:`over_allocation_percent` returns ``(allocated/load - 1) * 100``;
* **resource under-allocation** Υ(t) — Eq. 2:
  ``sum(min(alpha_m - lambda_m, 0)) / M * 100``.  Missing resources on
  one machine can be hidden by surplus on another (operators balance
  their load), so the numerator reduces to the *session-wide deficit*
  ``-max(load - allocated, 0)``; it is normalized by the number of
  machines in the session, and is never positive.  Ω and Υ are computed
  independently: surplus at one time step never offsets a deficit at
  another;
* **significant under-allocation events** — time steps with
  ``|Υ(t)| > 1 %``; each such 2-minute step degrades game play long
  enough to risk the mass-quit effect.

All quantities here are deliberately *dimension-generic* floats indexed
by :class:`~repro.datacenter.resources.ResourceType`: the same formulas
apply to every resource, so the per-dimension ``NewType`` tags
(``Cpu``/``Mem``/``NetIn``/``NetOut``) stop at this module's boundary
and ``repro analyze`` (RA002) treats these scalars as dimensionless.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datacenter.resources import RESOURCE_TYPES, ResourceType

__all__ = [
    "over_allocation_percent",
    "under_allocation_percent",
    "MetricsTimeline",
    "SIGNIFICANT_UNDER_ALLOCATION_PERCENT",
]

#: Threshold (in |Υ| percent) above which a step counts as a significant
#: under-allocation event (Sec. V: "an under-allocation [is] disruptive
#: if its absolute value is over 1 %").
SIGNIFICANT_UNDER_ALLOCATION_PERCENT = 1.0


def over_allocation_percent(allocated: float, load: float) -> float:
    """Excess allocation over need, in percent (0 = perfect fit).

    Undefined (returns 0) when there is no load and nothing allocated;
    idle allocated capacity with zero load reports the allocated amount
    relative to a one-unit baseline to stay finite.
    """
    if load > 1e-9:
        return (allocated / load - 1.0) * 100.0
    if allocated <= 1e-9:
        return 0.0
    return allocated * 100.0  # allocated units idling against ~zero load


def under_allocation_percent(allocated: float, load: float, machines: int) -> float:
    """Υ(t) for one resource type: non-positive, in percent.

    ``machines`` is the number of machines participating in the game
    session (M in Eq. 2); with no machines the full load is the deficit
    against a single notional machine.
    """
    deficit = max(load - allocated, 0.0)
    if deficit <= 0.0:
        return 0.0
    return -deficit / max(machines, 1) * 100.0


@dataclass
class MetricsTimeline:
    """Per-step metric series for one simulation (one resource focus).

    Records, per step and resource type, the totals needed to evaluate
    Eqs. 1-2; exposes the paper's three metrics plus their cumulative
    views (Figs. 7/10 plot cumulative significant events).
    """

    n_steps: int
    allocated: np.ndarray = field(init=False)
    load: np.ndarray = field(init=False)
    deficit: np.ndarray = field(init=False)
    machines: np.ndarray = field(init=False)
    _cursor: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.n_steps <= 0:
            raise ValueError("n_steps must be positive")
        n_res = len(RESOURCE_TYPES)
        self.allocated = np.zeros((self.n_steps, n_res))
        self.load = np.zeros((self.n_steps, n_res))
        self.deficit = np.zeros((self.n_steps, n_res))
        self.machines = np.zeros(self.n_steps, dtype=np.int64)

    # -- recording -------------------------------------------------------------

    def record(
        self,
        allocated: np.ndarray,
        load: np.ndarray,
        machines: int,
        deficit: np.ndarray | None = None,
    ) -> None:
        """Append one step's totals (arrays over resource types).

        ``deficit`` is the Eq. 2 numerator, ``-sum_m min(alpha_m -
        lambda_m, 0)``, computed with per-server-group (per-machine)
        granularity by the simulator.  When omitted it falls back to
        the pooled session shortfall ``max(load - allocated, 0)`` — a
        lower bound that assumes perfect instantaneous load balancing.
        """
        if self._cursor >= self.n_steps:
            # Deliberate fail-fast (RuntimeError, not IndexError): an
            # accidental exception type must not reach the step loop.
            raise RuntimeError("metrics timeline is full")
        self.allocated[self._cursor] = allocated
        self.load[self._cursor] = load
        if deficit is None:
            deficit = np.maximum(np.asarray(load) - np.asarray(allocated), 0.0)
        self.deficit[self._cursor] = deficit
        self.machines[self._cursor] = machines
        self._cursor += 1

    @property
    def recorded_steps(self) -> int:
        """Number of steps recorded so far."""
        return self._cursor

    def _check_complete(self) -> None:
        if self._cursor != self.n_steps:
            raise RuntimeError(
                f"timeline incomplete: {self._cursor}/{self.n_steps} steps recorded"
            )

    # -- metric series ------------------------------------------------------------

    def over_allocation(self, rtype: ResourceType) -> np.ndarray:
        """Ω(t) excess series for one resource type, in percent."""
        self._check_complete()
        i = int(rtype)
        alloc = self.allocated[:, i]
        load = self.load[:, i]
        out = np.empty(self.n_steps)
        busy = load > 1e-9
        out[busy] = (alloc[busy] / load[busy] - 1.0) * 100.0
        idle = ~busy
        out[idle] = np.where(alloc[idle] <= 1e-9, 0.0, alloc[idle] * 100.0)
        return out

    def under_allocation(self, rtype: ResourceType) -> np.ndarray:
        """Υ(t) series for one resource type, in percent (<= 0)."""
        self._check_complete()
        i = int(rtype)
        m = np.maximum(self.machines, 1)
        return -self.deficit[:, i] / m * 100.0

    def significant_events(
        self,
        rtype: ResourceType,
        *,
        threshold: float = SIGNIFICANT_UNDER_ALLOCATION_PERCENT,
    ) -> int:
        """Number of steps with |Υ| above the threshold."""
        return int(np.sum(np.abs(self.under_allocation(rtype)) > threshold))

    def cumulative_significant_events(
        self,
        rtype: ResourceType,
        *,
        threshold: float = SIGNIFICANT_UNDER_ALLOCATION_PERCENT,
    ) -> np.ndarray:
        """Running count of significant events over time (Figs. 7, 10)."""
        events = np.abs(self.under_allocation(rtype)) > threshold
        return np.cumsum(events)

    # -- summary ---------------------------------------------------------------

    def average_over_allocation(self, rtype: ResourceType) -> float:
        """Mean Ω excess over the simulation, in percent."""
        return float(self.over_allocation(rtype).mean())

    def average_under_allocation(self, rtype: ResourceType) -> float:
        """Mean Υ over the simulation, in percent (<= 0)."""
        return float(self.under_allocation(rtype).mean())

"""The paper's contribution: dynamic resource provisioning for MMOGs.

This package ties the substrates together into the provisioning system
of Secs. II and V:

* :mod:`repro.core.loadmodel` — player-interaction *update models*
  (``O(n)`` ... ``O(n^3)``) and the conversion from per-zone player
  counts to a four-resource demand vector;
* :mod:`repro.core.matching` — the request-offer matching mechanism
  (latency filter, then finest-grain / shortest-lease / closest-first
  ranking);
* :mod:`repro.core.operator` — the game operator: per-zone load
  prediction and demand estimation;
* :mod:`repro.core.provisioner` — the dynamic provisioning engine
  (lease reconciliation) and the static baseline;
* :mod:`repro.core.metrics` — over-allocation, under-allocation, and
  significant-event accounting (Eqs. 1-2);
* :mod:`repro.core.ecosystem` — the multi-MMOG / multi-data-center
  trace-driven simulator behind every Sec. V experiment.
"""

from repro.core.loadmodel import (
    UpdateModel,
    UPDATE_MODELS,
    update_model,
    DemandModel,
)
from repro.core.matching import MatchingPolicy, MatchPlan, match_request, distance_band
from repro.core.metrics import (
    over_allocation_percent,
    under_allocation_percent,
    MetricsTimeline,
    SIGNIFICANT_UNDER_ALLOCATION_PERCENT,
)
from repro.core.operator import GameOperator
from repro.core.provisioner import DynamicProvisioner, StaticProvisioner
from repro.core.ecosystem import (
    GameSpec,
    EcosystemConfig,
    EcosystemSimulator,
    SimulationResult,
)

__all__ = [
    "UpdateModel",
    "UPDATE_MODELS",
    "update_model",
    "DemandModel",
    "MatchingPolicy",
    "MatchPlan",
    "match_request",
    "distance_band",
    "over_allocation_percent",
    "under_allocation_percent",
    "MetricsTimeline",
    "SIGNIFICANT_UNDER_ALLOCATION_PERCENT",
    "GameOperator",
    "DynamicProvisioner",
    "StaticProvisioner",
    "GameSpec",
    "EcosystemConfig",
    "EcosystemSimulator",
    "SimulationResult",
]

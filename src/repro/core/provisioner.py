"""Provisioning engines: dynamic lease reconciliation and the static
baseline.

The **dynamic provisioner** reconciles, every simulation step and for
every (operator, game, region), the desired allocation against the
active leases:

* leases end when their requested duration elapses — requests are for a
  fixed duration (Sec. II-B: operators specify "the duration for which
  the resources are needed"), the shortest the hosting policy admits,
  because the matching mechanism favours short reservations;
* any shortfall against the desired allocation is covered by matching a
  request for the deficit (new leases, rounded up to bulks).

Early release and partial release are impossible: "the allocated
resources are reserved for MMOG execution for the whole duration of the
game operator's request, i.e., task preemption or migration are not
supported".

The **static provisioner** is the industry practice the paper critiques:
it allocates each region's horizon-peak demand up front and never
releases (Secs. V-B/V-C compare the two).

Implementation notes
--------------------
The inner loop runs ~10,000 times per simulation, so bookkeeping is
incremental: per-key allocation totals are maintained on allocate and
release (never recomputed by summing leases), and expiries pop off a
min-heap ordered by lease end step.

Heap tie-breaking uses a *per-instance* counter: two provisioners in
one process (the Table VII multi-MMOG runs) must each see a
deterministic, independent tie sequence regardless of the other's
allocation activity.

Observability: both engines accept an optional
:class:`~repro.obs.registry.MetricsRegistry` (lease open/expiry
counters, duration histogram) and an optional
:class:`~repro.obs.tracer.StepTracer` (``lease_open`` /
``lease_expire`` / ``match`` events).  Both default to ``None`` and
cost one pointer test per record when absent.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.matching import MatchingPolicy, MatchPlan, match_request
from repro.core.operator import GameOperator
from repro.datacenter.center import DataCenter, Lease
from repro.datacenter.geography import GeoLocation
from repro.datacenter.resources import N_RESOURCES, ResourceVector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry
    from repro.obs.tracer import StepTracer

__all__ = ["DynamicProvisioner", "StaticProvisioner"]


@dataclass
class _CenterAlloc:
    """Running allocation of one key at one center (mutable ledger entry)."""

    center: DataCenter
    total: np.ndarray


class _ProvisionerBase:
    """Shared lease bookkeeping for both provisioning engines."""

    def __init__(
        self,
        centers: Sequence[DataCenter],
        *,
        matching: MatchingPolicy | None = None,
        step_minutes: float = 2.0,
        metrics: "MetricsRegistry | None" = None,
        tracer: "StepTracer | None" = None,
    ) -> None:
        if not centers:
            raise ValueError("need at least one data center")
        if step_minutes <= 0:
            raise ValueError("step_minutes must be positive")
        self.centers = list(centers)
        self.matching = matching or MatchingPolicy()
        self.step_minutes = float(step_minutes)
        # Per-instance heap tie-breaker (see module docstring).
        self._tie = itertools.count()
        # key -> min-heap of (end_step, tiebreak, center, lease)
        self._heaps: dict[
            tuple[str, str, str], list[tuple[int, int, DataCenter, Lease]]
        ] = {}
        # key -> running allocation total (4-vector)
        self._totals: dict[tuple[str, str, str], np.ndarray] = {}
        # key -> {center name: ledger entry} (for machine counts and
        # per-center reporting)
        self._by_center: dict[tuple[str, str, str], dict[str, _CenterAlloc]] = {}
        # (center name, region) -> running allocation total, maintained
        # incrementally so the per-tick accounting query returns a view
        # instead of rebuilding a dict from a nested scan (RA008).
        self._by_center_region: dict[tuple[str, str], np.ndarray] = {}
        self.metrics = metrics
        self.tracer = tracer
        if metrics is not None:
            self._c_opened = metrics.counter("provisioner.leases_opened")
            self._c_expired = metrics.counter("provisioner.leases_expired")
            self._g_active = metrics.gauge("provisioner.active_leases")
            self._h_duration = metrics.histogram("provisioner.lease_duration_steps")
            self._c_reconciles = metrics.counter("provisioner.reconciles")
            self._c_shortfalls = metrics.counter("provisioner.shortfall_requests")

    def _key(self, operator: GameOperator, region: str) -> tuple[str, str, str]:
        return (operator.operator_id, operator.game_id, region)

    # -- bookkeeping ---------------------------------------------------------

    def _add_lease(self, key: tuple[str, str, str], center: DataCenter, lease: Lease) -> None:
        heapq.heappush(
            self._heaps.setdefault(key, []),
            (lease.end_step, next(self._tie), center, lease),
        )
        if self.metrics is not None:
            self._c_opened.inc()
            self._g_active.inc()
            self._h_duration.observe(lease.end_step - lease.start_step)
        if self.tracer is not None:
            self.tracer.emit(
                "lease_open",
                step=lease.start_step,
                lease_id=lease.lease_id,
                center=center.name,
                operator=key[0],
                game=key[1],
                region=key[2],
                resources=lease.resources.values.tolist(),
                end_step=lease.end_step,
            )
        vec = lease.resources.values
        total = self._totals.get(key)
        if total is None:
            total = np.zeros(N_RESOURCES)
            self._totals[key] = total
        total += vec
        per_center = self._by_center.setdefault(key, {})
        entry = per_center.get(center.name)
        if entry is None:
            per_center[center.name] = _CenterAlloc(center, vec.copy())
        else:
            entry.total += vec
        region_key = (center.name, key[2])
        region_total = self._by_center_region.get(region_key)
        if region_total is None:
            self._by_center_region[region_key] = vec.copy()
        else:
            region_total += vec

    def _drop_lease_totals(
        self, key: tuple[str, str, str], center: DataCenter, lease: Lease
    ) -> None:
        vec = lease.resources.values
        self._totals[key] -= vec
        entry = self._by_center[key][center.name]
        entry.total -= vec
        if not np.any(entry.total > 1e-12):
            del self._by_center[key][center.name]
        region_key = (center.name, key[2])
        region_total = self._by_center_region[region_key]
        region_total -= vec
        if not np.any(region_total > 1e-12):
            del self._by_center_region[region_key]

    # -- queries -----------------------------------------------------------

    def allocation(self, operator: GameOperator, region: str) -> ResourceVector:
        """Total currently leased for one (operator, game, region)."""
        total = self._totals.get(self._key(operator, region))
        if total is None:
            return ResourceVector.zeros()
        return ResourceVector.from_array(np.maximum(total, 0.0))

    def allocation_array(self, operator: GameOperator, region: str) -> np.ndarray:
        """Like :meth:`allocation` but a raw read-only array (hot path)."""
        total = self._totals.get(self._key(operator, region))
        if total is None:
            return np.zeros(N_RESOURCES)
        return total

    def machines(self, operator: GameOperator, region: str) -> int:
        """Machines participating in the region's game session.

        Fractional leases share machines, so the count is the sum over
        data centers of the machines needed for the session's aggregate
        allocation at that center.
        """
        per_center = self._by_center.get(self._key(operator, region))
        if not per_center:
            return 0
        return sum(
            entry.center.machines_needed(
                ResourceVector.from_array(np.maximum(entry.total, 0.0))
            )
            for entry in per_center.values()
        )

    def total_allocation(self) -> ResourceVector:
        """Everything leased by this provisioner across all keys."""
        total = np.zeros(N_RESOURCES)
        for vec in self._totals.values():
            total += vec
        return ResourceVector.from_array(np.maximum(total, 0.0))

    def total_machines(self) -> int:
        """All machines under lease by this provisioner (aggregate
        sharing, like :meth:`machines`)."""
        per_center_totals: dict[str, _CenterAlloc] = {}
        for per_center in self._by_center.values():
            for name, tracked in per_center.items():
                entry = per_center_totals.get(name)
                if entry is None:
                    per_center_totals[name] = _CenterAlloc(
                        tracked.center, tracked.total.copy()
                    )
                else:
                    entry.total += tracked.total
        return sum(
            entry.center.machines_needed(
                ResourceVector.from_array(np.maximum(entry.total, 0.0))
            )
            for entry in per_center_totals.values()
        )

    def allocation_by_center(self) -> dict[str, ResourceVector]:
        """Per-data-center totals of this provisioner's leases."""
        out: dict[str, np.ndarray] = {}
        for per_center in self._by_center.values():
            for name, entry in per_center.items():
                prev = out.get(name)
                out[name] = entry.total.copy() if prev is None else prev + entry.total
        return {
            name: ResourceVector.from_array(np.maximum(vec, 0.0))
            for name, vec in out.items()
        }

    def allocation_by_center_and_region(self) -> dict[tuple[str, str], np.ndarray]:
        """Per (data center, region) allocation arrays (read-only view
        of the internal totals; copy before mutating).

        Maintained incrementally by the lease ledger, so this per-tick
        accounting query costs O(1) instead of a nested rebuild over
        keys x centers every step.
        """
        return self._by_center_region

    def release_everything(self, step: int) -> None:
        """Teardown: force-release every lease."""
        for key, heap in self._heaps.items():
            for _, _, center, lease in heap:
                center.release(lease, step, force=True)
                if self.metrics is not None:
                    self._c_expired.inc()
                    self._g_active.dec()
                if self.tracer is not None:
                    self.tracer.emit(
                        "lease_expire",
                        step=step,
                        lease_id=lease.lease_id,
                        center=center.name,
                        forced=True,
                    )
        self._heaps.clear()
        self._totals.clear()
        self._by_center.clear()
        self._by_center_region.clear()

    def _apply_plan(
        self,
        operator: GameOperator,
        region: str,
        plan: MatchPlan,
        step: int,
        *,
        duration_steps: int | None = None,
    ) -> None:
        key = self._key(operator, region)
        for center, vector in plan.placements:
            lease = center.allocate(
                operator.operator_id,
                operator.game_id,
                vector,
                step,
                region=region,
                step_minutes=self.step_minutes,
                duration_steps=duration_steps,
            )
            self._add_lease(key, center, lease)


class DynamicProvisioner(_ProvisionerBase):
    """Per-step lease reconciliation against predicted demand."""

    def reconcile(
        self,
        operator: GameOperator,
        region: str,
        origin: GeoLocation,
        desired: ResourceVector,
        step: int,
    ) -> MatchPlan:
        """Bring the region's allocation toward ``desired`` at ``step``.

        Expired leases are returned first, then any shortfall is covered
        through the matching mechanism.  Returns the match plan used to
        cover the shortfall (an empty plan when nothing was needed); the
        plan's unmatched remainder is demand the whole platform could
        not host — it will surface as under-allocation.
        """
        key = self._key(operator, region)
        if self.metrics is not None:
            self._c_reconciles.inc()

        # 1. Expire leases whose requested duration has elapsed.
        heap = self._heaps.get(key)
        if heap:
            while heap and heap[0][0] <= step:
                _, _, center, lease = heapq.heappop(heap)
                center.release(lease, step)
                self._drop_lease_totals(key, center, lease)
                if self.metrics is not None:
                    self._c_expired.inc()
                    self._g_active.dec()
                if self.tracer is not None:
                    self.tracer.emit(
                        "lease_expire",
                        step=step,
                        lease_id=lease.lease_id,
                        center=center.name,
                    )

        # 2. Cover any shortfall with new leases.
        current = self.allocation_array(operator, region)
        deficit_arr = np.maximum(desired.values - current, 0.0)
        if not np.any(deficit_arr > 1e-9):
            return MatchPlan()
        if self.metrics is not None:
            self._c_shortfalls.inc()
        plan = match_request(
            ResourceVector.from_array(deficit_arr),
            origin,
            self.centers,
            latency=operator.latency_class,
            policy=self.matching,
            metrics=self.metrics,
        )
        if self.tracer is not None:
            self.tracer.emit(
                "match",
                step=step,
                operator=key[0],
                game=key[1],
                region=key[2],
                requested=deficit_arr.tolist(),
                placements=[
                    (center.name, vec.values.tolist())
                    for center, vec in plan.placements
                ],
                rejections=plan.rejections,
                unmatched=plan.unmatched.values.tolist(),
            )
        self._apply_plan(operator, region, plan, step)
        return plan


class StaticProvisioner(_ProvisionerBase):
    """Allocate for the horizon peak once; never release.

    ``install`` must be called before the simulation starts with the
    peak demand of each region (the operator knows its historical peak —
    that is precisely the industry practice of over-provisioning for the
    worst case).
    """

    def install(
        self,
        operator: GameOperator,
        region: str,
        origin: GeoLocation,
        peak_demand: ResourceVector,
        *,
        step: int = 0,
        horizon_steps: int = 10**9,
    ) -> MatchPlan:
        """Allocate the peak demand for a region up front.

        The lease duration spans the whole planning horizon (static
        infrastructure is not returned mid-experiment).
        """
        plan = match_request(
            peak_demand,
            origin,
            self.centers,
            latency=operator.latency_class,
            policy=self.matching,
            metrics=self.metrics,
        )
        if self.tracer is not None:
            self.tracer.emit(
                "match",
                step=step,
                operator=operator.operator_id,
                game=operator.game_id,
                region=region,
                requested=peak_demand.values.tolist(),
                placements=[
                    (center.name, vec.values.tolist())
                    for center, vec in plan.placements
                ],
                rejections=plan.rejections,
                unmatched=plan.unmatched.values.tolist(),
            )
        self._apply_plan(operator, region, plan, step, duration_steps=horizon_steps)
        return plan

    def reconcile(
        self,
        operator: GameOperator,
        region: str,
        origin: GeoLocation,
        desired: ResourceVector,
        step: int,
    ) -> MatchPlan:
        """Static provisioning ignores demand changes (no-op)."""
        return MatchPlan()

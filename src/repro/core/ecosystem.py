"""The trace-driven ecosystem simulator (Sec. V).

One :class:`EcosystemSimulator` run plays a workload trace through the
multi-MMOG, multi-data-center ecosystem:

* every two minutes each game operator predicts the next step's load
  per server group, converts it to a resource demand per region, and
  reconciles its leases (dynamic mode) — or sits on its pre-installed
  peak allocation (static mode);
* the simulator then scores the allocation that was in place against
  the *actual* load of the step (Ω, Υ, significant events), before the
  operators observe that load and move on.

Resource allocation, provisioning and setup are charged zero overhead,
as in the paper.  The first ``warmup_steps`` of the trace serve as the
off-line data-collection/training phases (Sec. IV-C) and are excluded
from the metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.loadmodel import DemandModel
from repro.core.matching import MatchingPolicy
from repro.core.metrics import (
    SIGNIFICANT_UNDER_ALLOCATION_PERCENT,
    MetricsTimeline,
    over_allocation_percent,
)
from repro.core.operator import GameOperator
from repro.core.provisioner import DynamicProvisioner, StaticProvisioner
from repro.datacenter.resources import Cpu
from repro.datacenter.center import DataCenter
from repro.datacenter.geography import LatencyClass
from repro.datacenter.resources import CPU, RESOURCE_TYPES
from repro.obs.ambient import ambient_metrics, record_ambient_phases
from repro.obs.invariants import InvariantChecker, invariants_forced
from repro.obs.registry import MetricsRegistry
from repro.obs.timing import PhaseTimer
from repro.obs.tracer import StepTracer
from repro.predictors.base import Predictor
from repro.traces.model import GameTrace

__all__ = ["GameSpec", "EcosystemConfig", "EcosystemSimulator", "SimulationResult"]


@dataclass
class GameSpec:
    """One MMOG participating in the simulation.

    Parameters
    ----------
    name:
        Game identifier (doubles as operator id unless overridden).
    trace:
        The workload: per-region, per-server-group player counts.
    demand_model:
        Player-count → resource-demand conversion (fixes the game's
        update model).
    predictor_factory:
        Builds one predictor per region.
    latency_class:
        The game's latency tolerance.
    safety_margin:
        Fractional padding on predicted demand.
    operator_id:
        Tenant id (defaults to ``name``).
    cpu_quantum:
        Per-server-group CPU allocation granularity.  ``None`` (the
        default) derives it from the platform: the finest CPU bulk any
        data center offers.  0 disables quantization.
    priority:
        Request priority (higher = served first each step).  The
        paper's future work proposes "prioritizing the resource
        requests according to the interaction type of the MMOG"
        (Sec. V-F); this knob implements that mechanism.  Ties keep the
        configuration order.
    """

    name: str
    trace: GameTrace
    demand_model: DemandModel
    predictor_factory: Callable[[], Predictor]
    latency_class: LatencyClass = LatencyClass.VERY_FAR
    safety_margin: float = 0.0
    operator_id: str | None = None
    cpu_quantum: Cpu | None = None
    priority: int = 0

    def __post_init__(self) -> None:
        if self.operator_id is None:
            self.operator_id = self.name
        if not self.trace.regions:
            raise ValueError(f"game {self.name!r} has an empty trace")

    def resolved_quantum(self, centers: Sequence[DataCenter]) -> Cpu:
        """The CPU quantum to use against a given platform."""
        if self.cpu_quantum is not None:
            return self.cpu_quantum
        bulks = [
            c.policy.resource_bulk.cpu
            for c in centers
            if c.policy.resource_bulk.cpu > 0
        ]
        return min(bulks) if bulks else Cpu(0.0)

    def build_operator(self, centers: Sequence[DataCenter]) -> GameOperator:
        """Instantiate the operator for this game."""
        return GameOperator(
            self.operator_id,
            self.name,
            self.demand_model,
            self.predictor_factory,
            latency_class=self.latency_class,
            safety_margin=self.safety_margin,
            cpu_quantum=self.resolved_quantum(centers),
        )


@dataclass
class EcosystemConfig:
    """Full configuration of one simulation run.

    Parameters
    ----------
    games:
        The MMOGs sharing the platform.
    centers:
        The hosting platform (mutated during the run: leases are
        created on these objects; build fresh centers per run).
    mode:
        ``"dynamic"`` or ``"static"`` provisioning.
    warmup_steps:
        Steps of trace prefix used for the off-line phases (default one
        simulated day at 2-minute sampling).
    matching:
        Offer-ranking policy.
    advance_lead_steps:
        When positive (dynamic mode only), operators use the *advance
        reservation* service model (Sec. II-B): every step they book
        capacity ``advance_lead_steps`` ahead from an iterated
        multi-step forecast, instead of requesting on demand.  Bookings
        hold their resources from booking time (reserved capacity is
        unavailable to other tenants) until the lease ends.
    metrics:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; when
        set, the provisioner/matcher/centers record their counters into
        it and the run collects per-phase wall-clock timings.
    tracer:
        Optional :class:`~repro.obs.tracer.StepTracer` receiving
        structured JSONL events from the whole run.
    check_invariants:
        Run the :class:`~repro.obs.invariants.InvariantChecker` every
        step (also forced globally by ``REPRO_INVARIANTS=1``).  O(live
        leases) per step — intended for tests and debugging.
    invariant_checker:
        A pre-built checker to use instead of constructing one (e.g. a
        ``collect=True`` checker that gathers violations).
    """

    games: list[GameSpec]
    centers: list[DataCenter]
    mode: str = "dynamic"
    warmup_steps: int = 720
    matching: MatchingPolicy = field(default_factory=MatchingPolicy)
    advance_lead_steps: int = 0
    metrics: MetricsRegistry | None = None
    tracer: StepTracer | None = None
    check_invariants: bool = False
    invariant_checker: InvariantChecker | None = None

    def __post_init__(self) -> None:
        if self.mode not in ("dynamic", "static"):
            raise ValueError("mode must be 'dynamic' or 'static'")
        if self.advance_lead_steps < 0:
            raise ValueError("advance_lead_steps must be non-negative")
        if self.advance_lead_steps and self.mode != "dynamic":
            raise ValueError("advance reservations require dynamic mode")
        if not self.games:
            raise ValueError("need at least one game")
        if not self.centers:
            raise ValueError("need at least one data center")
        lengths = {g.trace.n_steps for g in self.games}
        if len(lengths) > 1:
            raise ValueError(f"game traces differ in length: {sorted(lengths)}")
        n_steps = lengths.pop()
        if self.warmup_steps < 0 or self.warmup_steps >= n_steps:
            raise ValueError("warmup_steps must be in [0, trace length)")


@dataclass
class SimulationResult:
    """Everything the Sec. V experiments read off one run.

    Attributes
    ----------
    per_game:
        One metric timeline per game (over the evaluation window).
    combined:
        The platform-wide timeline (totals across games).
    center_cpu_mean:
        Mean CPU units allocated per data center over the evaluation
        window (Figs. 13-14).
    center_region_cpu_mean:
        Mean CPU units per (data center, requesting region) pair.
    center_capacity_cpu:
        CPU capacity per data center.
    unmatched_steps:
        Steps on which some demand could not be hosted anywhere.
    eval_steps / step_minutes:
        Evaluation-window geometry.
    timings:
        Per-phase wall-clock seconds (only when a metrics registry was
        installed; ``None`` otherwise).
    invariant_checks:
        Number of per-step invariant sweeps that ran (0 when checking
        was off).
    """

    per_game: dict[str, MetricsTimeline]
    combined: MetricsTimeline
    center_cpu_mean: dict[str, float]
    center_region_cpu_mean: dict[tuple[str, str], float]
    center_capacity_cpu: dict[str, float]
    unmatched_steps: int
    eval_steps: int
    step_minutes: float
    timings: dict[str, float] | None = None
    invariant_checks: int = 0


class EcosystemSimulator:
    """Runs one configured simulation and collects the metrics."""

    def __init__(self, config: EcosystemConfig) -> None:
        self.config = config

    def run(self) -> SimulationResult:
        """Execute the simulation over the trace's evaluation window."""
        cfg = self.config
        step_minutes = cfg.games[0].trace.step_minutes
        n_steps = cfg.games[0].trace.n_steps
        warmup = cfg.warmup_steps
        eval_steps = n_steps - warmup

        # Observability: all hooks default to off; each record site is
        # guarded by a single ``is None`` test so the disabled cost is
        # one pointer comparison.  An explicit registry wins; otherwise
        # an ambient probe (the bench harness) is consulted once here.
        metrics = cfg.metrics if cfg.metrics is not None else ambient_metrics()
        tracer = cfg.tracer
        checker = cfg.invariant_checker
        if checker is None and (cfg.check_invariants or invariants_forced()):
            checker = InvariantChecker(cfg.centers)
        timer = PhaseTimer() if metrics is not None else None
        if metrics is not None:
            for center in cfg.centers:
                center.attach_metrics(metrics)
            c_steps = metrics.counter("sim.steps")
            c_unmatched = metrics.counter("sim.unmatched_steps")
            c_events = metrics.counter("sim.significant_events")
            h_omega = metrics.histogram("sim.omega_cpu")
            h_upsilon = metrics.histogram("sim.upsilon_cpu")

        operators = {g.name: g.build_operator(cfg.centers) for g in cfg.games}
        if metrics is not None:
            for op in operators.values():
                op.attach_metrics(metrics)
        if cfg.mode == "dynamic":
            provisioner: DynamicProvisioner | StaticProvisioner = DynamicProvisioner(
                cfg.centers,
                matching=cfg.matching,
                step_minutes=step_minutes,
                metrics=metrics,
                tracer=tracer,
            )
        else:
            provisioner = StaticProvisioner(
                cfg.centers,
                matching=cfg.matching,
                step_minutes=step_minutes,
                metrics=metrics,
                tracer=tracer,
            )

        # Off-line phases: predictor training + state warm-up.
        t_mark = timer.mark() if timer is not None else 0.0
        for game in cfg.games:
            if warmup > 0:
                operators[game.name].prepare(
                    GameOperator.warmup_from_trace(game.trace, warmup)
                )
        if timer is not None:
            t_mark = timer.lap("warmup", t_mark)

        # Static mode installs, up front, servers sized for every group's
        # individual peak over the horizon (the worst case each world's
        # own servers must carry — static infrastructure cannot shuffle
        # capacity between worlds mid-flight).
        static_assigned: dict[tuple[str, str], np.ndarray] = {}
        if cfg.mode == "static":
            from repro.datacenter.resources import ResourceVector as _RV

            for game in cfg.games:
                op = operators[game.name]
                # games x regions is config-bounded (a handful each),
                # not data-scaled: nested scan is the intended shape.
                for region in game.trace.regions:  # reprolint: disable=RA008
                    peak_players = region.loads[warmup:].max(axis=0)
                    assigned = game.demand_model.demand_per_group(
                        peak_players, cpu_quantum=op.cpu_quantum
                    )
                    static_assigned[(game.name, region.name)] = assigned
                    provisioner.install(
                        op,
                        region.name,
                        region.location,
                        _RV.from_array(assigned.sum(axis=0)),
                    )
            if timer is not None:
                t_mark = timer.lap("install", t_mark)

        ordered_games = sorted(
            cfg.games, key=lambda g: -g.priority
        )  # stable: ties keep configuration order
        per_game = {g.name: MetricsTimeline(eval_steps) for g in cfg.games}
        combined = MetricsTimeline(eval_steps)
        center_cpu_sum: dict[str, float] = {c.name: 0.0 for c in cfg.centers}
        center_region_cpu_sum: dict[tuple[str, str], float] = {}
        unmatched_steps = 0

        n_res = len(RESOURCE_TYPES)
        for t in range(warmup, n_steps):
            if tracer is not None:
                tracer.emit("step", step=t, mode=cfg.mode)
            if timer is not None:
                t_mark = timer.mark()
            # 1. Reconcile allocations for this step from predictions
            #    made on data up to t-1 (dynamic mode only).  Games are
            #    served in priority order (the Sec. V-F future-work
            #    mechanism); equal priorities keep configuration order.
            any_unmatched = False
            if cfg.mode == "dynamic":
                lead = cfg.advance_lead_steps
                for game in ordered_games:
                    op = operators[game.name]
                    # games x regions is config-bounded; see above.
                    for region in game.trace.regions:  # reprolint: disable=RA008
                        if lead > 0:
                            desired = op.desired_allocation_ahead(
                                region.name, region.n_groups, lead, t + lead
                            )
                        else:
                            desired = op.desired_allocation(
                                region.name, region.n_groups
                            )
                        if tracer is not None:
                            tracer.emit(
                                "reconcile",
                                step=t,
                                operator=op.operator_id,
                                game=game.name,
                                region=region.name,
                                desired=desired.values.tolist(),
                            )
                        plan = provisioner.reconcile(
                            op, region.name, region.location, desired, t
                        )
                        if not plan.fully_matched:
                            any_unmatched = True
            if any_unmatched:
                unmatched_steps += 1
                if metrics is not None:
                    c_unmatched.inc()
            if timer is not None:
                t_mark = timer.lap("reconcile", t_mark)

            # 2. Score the in-place allocation against the actual load.
            #    Under-allocation uses per-group granularity: each game
            #    world runs on servers sized from the prediction behind
            #    the last request, and a world's shortfall cannot be
            #    absorbed by another world's idle surplus within the
            #    step (Eq. 2's per-machine min; migration unsupported).
            combined_alloc = np.zeros(n_res)
            combined_load = np.zeros(n_res)
            combined_deficit = np.zeros(n_res)
            combined_machines = 0
            for game in cfg.games:
                op = operators[game.name]
                game_alloc = np.zeros(n_res)
                game_load = np.zeros(n_res)
                game_deficit = np.zeros(n_res)
                game_machines = 0
                # games x regions is config-bounded; see above.
                for region in game.trace.regions:  # reprolint: disable=RA008
                    players = game.trace.region(region.name).loads[t]
                    lam = op.demand_model.demand_per_group(players)  # true load
                    game_load += lam.sum(axis=0)
                    alloc_vec = provisioner.allocation_array(op, region.name)
                    game_alloc += alloc_vec
                    game_machines += provisioner.machines(op, region.name)

                    if cfg.mode == "static":
                        assigned = static_assigned[(game.name, region.name)]
                    else:
                        if cfg.advance_lead_steps > 0:
                            # Score against the booking that was sized
                            # for this step; early steps (booked during
                            # the on-demand cold start) fall back to the
                            # latest prediction.
                            pred = op.scheduled_players(region.name, t)
                            if pred is None:
                                pred = op.last_predicted_players(region.name)
                        else:
                            pred = op.last_predicted_players(region.name)
                        if pred is None:
                            pred = players.astype(np.float64)
                        assigned = op.demand_model.demand_per_group(
                            pred, cpu_quantum=op.cpu_quantum
                        )
                    # Scale assignments down where the platform could
                    # not host the full request (contention).
                    total_assigned = assigned.sum(axis=0)
                    rho = np.ones(n_res)
                    positive = total_assigned > 1e-12
                    rho[positive] = np.minimum(
                        1.0, alloc_vec[positive] / total_assigned[positive]
                    )
                    region_deficit = np.maximum(lam - assigned * rho, 0.0).sum(axis=0)
                    # CPU is machine/world-bound (per-group accounting);
                    # memory travels with the machines.  The external
                    # network is a data-center-level pool (Sec. II-B),
                    # so its shortfall is the pooled one.
                    lam_total = lam.sum(axis=0)
                    pooled = np.maximum(lam_total - alloc_vec, 0.0)
                    region_deficit[2:] = pooled[2:]  # ExtNet[in], ExtNet[out]
                    game_deficit += region_deficit
                per_game[game.name].record(
                    game_alloc, game_load, game_machines, deficit=game_deficit
                )
                if checker is not None:
                    checker.check_score(
                        game.name, t, game_alloc, game_load, game_deficit
                    )
                if tracer is not None:
                    tracer.emit(
                        "score",
                        step=t,
                        game=game.name,
                        allocated=game_alloc.tolist(),
                        load=game_load.tolist(),
                        deficit=game_deficit.tolist(),
                        machines=game_machines,
                    )
                combined_alloc += game_alloc
                combined_load += game_load
                combined_deficit += game_deficit
                combined_machines += game_machines
            combined.record(
                combined_alloc, combined_load, combined_machines, deficit=combined_deficit
            )
            cpu_i = int(CPU)
            if metrics is not None:
                # Per-step Ω/Υ contributions (CPU, the contended resource).
                c_steps.inc()
                h_omega.observe(
                    over_allocation_percent(combined_alloc[cpu_i], combined_load[cpu_i])
                )
                upsilon = -combined_deficit[cpu_i] / max(combined_machines, 1) * 100.0
                h_upsilon.observe(upsilon)
                if upsilon < -SIGNIFICANT_UNDER_ALLOCATION_PERCENT:
                    c_events.inc()
                t_mark = timer.lap("score", t_mark)

            # Sanitizer sweep: ledgers vs. ground truth, every step.
            if checker is not None:
                checker.check_step(provisioner, t)
                if timer is not None:
                    t_mark = timer.lap("invariants", t_mark)

            # Per-center accounting (CPU only, the contended resource).
            for center in cfg.centers:
                center_cpu_sum[center.name] += center.allocated[CPU]
            for k, vec in provisioner.allocation_by_center_and_region().items():
                center_region_cpu_sum[k] = center_region_cpu_sum.get(k, 0.0) + float(
                    vec[cpu_i]
                )
            if timer is not None:
                t_mark = timer.lap("accounting", t_mark)

            # 3. Operators observe the actual load and move on.
            for game in cfg.games:
                op = operators[game.name]
                # games x regions is config-bounded; see above.
                for region in game.trace.regions:  # reprolint: disable=RA008
                    op.observe(region.name, game.trace.region(region.name).loads[t])
            if timer is not None:
                t_mark = timer.lap("observe", t_mark)

        # Teardown so the caller's centers are reusable.
        provisioner.release_everything(n_steps)
        if timer is not None:
            record_ambient_phases(timer)
        if tracer is not None:
            tracer.emit(
                "run_end",
                steps=eval_steps,
                mode=cfg.mode,
                unmatched_steps=unmatched_steps,
                invariant_checks=checker.checks_run if checker is not None else 0,
                violations=len(checker.violations) if checker is not None else 0,
            )

        return SimulationResult(
            per_game=per_game,
            combined=combined,
            center_cpu_mean={
                name: total / eval_steps for name, total in center_cpu_sum.items()
            },
            center_region_cpu_mean={
                key: total / eval_steps for key, total in center_region_cpu_sum.items()
            },
            center_capacity_cpu={c.name: c.capacity[CPU] for c in cfg.centers},
            unmatched_steps=unmatched_steps,
            eval_steps=eval_steps,
            step_minutes=step_minutes,
            timings=dict(timer.seconds) if timer is not None else None,
            invariant_checks=checker.checks_run if checker is not None else 0,
        )

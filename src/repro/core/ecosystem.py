"""The trace-driven ecosystem simulator (Sec. V).

One :class:`EcosystemSimulator` run plays a workload trace through the
multi-MMOG, multi-data-center ecosystem:

* every two minutes each game operator predicts the next step's load
  per server group, converts it to a resource demand per region, and
  reconciles its leases (dynamic mode) — or sits on its pre-installed
  peak allocation (static mode);
* the simulator then scores the allocation that was in place against
  the *actual* load of the step (Ω, Υ, significant events), before the
  operators observe that load and move on.

Resource allocation, provisioning and setup are charged zero overhead,
as in the paper.  The first ``warmup_steps`` of the trace serve as the
off-line data-collection/training phases (Sec. IV-C) and are excluded
from the metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.loadmodel import DemandModel
from repro.core.matching import MatchingPolicy
from repro.core.operator import GameOperator
from repro.core.stepper import (
    SimulationResult,
    TickGame,
    TickRegion,
    TickStepper,
    finest_cpu_bulk,
)
from repro.datacenter.resources import Cpu
from repro.datacenter.center import DataCenter
from repro.datacenter.geography import LatencyClass
from repro.obs.ambient import ambient_metrics
from repro.obs.invariants import InvariantChecker, invariants_forced
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import StepTracer
from repro.predictors.base import Predictor
from repro.traces.model import GameTrace

__all__ = ["GameSpec", "EcosystemConfig", "EcosystemSimulator", "SimulationResult"]


@dataclass
class GameSpec:
    """One MMOG participating in the simulation.

    Parameters
    ----------
    name:
        Game identifier (doubles as operator id unless overridden).
    trace:
        The workload: per-region, per-server-group player counts.
    demand_model:
        Player-count → resource-demand conversion (fixes the game's
        update model).
    predictor_factory:
        Builds one predictor per region.
    latency_class:
        The game's latency tolerance.
    safety_margin:
        Fractional padding on predicted demand.
    operator_id:
        Tenant id (defaults to ``name``).
    cpu_quantum:
        Per-server-group CPU allocation granularity.  ``None`` (the
        default) derives it from the platform: the finest CPU bulk any
        data center offers.  0 disables quantization.
    priority:
        Request priority (higher = served first each step).  The
        paper's future work proposes "prioritizing the resource
        requests according to the interaction type of the MMOG"
        (Sec. V-F); this knob implements that mechanism.  Ties keep the
        configuration order.
    """

    name: str
    trace: GameTrace
    demand_model: DemandModel
    predictor_factory: Callable[[], Predictor]
    latency_class: LatencyClass = LatencyClass.VERY_FAR
    safety_margin: float = 0.0
    operator_id: str | None = None
    cpu_quantum: Cpu | None = None
    priority: int = 0

    def __post_init__(self) -> None:
        if self.operator_id is None:
            self.operator_id = self.name
        if not self.trace.regions:
            raise ValueError(f"game {self.name!r} has an empty trace")

    def resolved_quantum(self, centers: Sequence[DataCenter]) -> Cpu:
        """The CPU quantum to use against a given platform."""
        if self.cpu_quantum is not None:
            return self.cpu_quantum
        return finest_cpu_bulk(centers)

    def tick_game(self, centers: Sequence[DataCenter]) -> TickGame:
        """The trace-free description of this game for :class:`TickStepper`."""
        assert self.operator_id is not None  # set in __post_init__
        return TickGame(
            name=self.name,
            operator_id=self.operator_id,
            regions=tuple(
                TickRegion(r.name, r.location, r.n_groups) for r in self.trace.regions
            ),
            demand_model=self.demand_model,
            predictor_factory=self.predictor_factory,
            latency_class=self.latency_class,
            safety_margin=self.safety_margin,
            cpu_quantum=self.resolved_quantum(centers),
            priority=self.priority,
        )

    def build_operator(self, centers: Sequence[DataCenter]) -> GameOperator:
        """Instantiate the operator for this game."""
        return self.tick_game(centers).build_operator()


@dataclass
class EcosystemConfig:
    """Full configuration of one simulation run.

    Parameters
    ----------
    games:
        The MMOGs sharing the platform.
    centers:
        The hosting platform (mutated during the run: leases are
        created on these objects; build fresh centers per run).
    mode:
        ``"dynamic"`` or ``"static"`` provisioning.
    warmup_steps:
        Steps of trace prefix used for the off-line phases (default one
        simulated day at 2-minute sampling).
    matching:
        Offer-ranking policy.
    advance_lead_steps:
        When positive (dynamic mode only), operators use the *advance
        reservation* service model (Sec. II-B): every step they book
        capacity ``advance_lead_steps`` ahead from an iterated
        multi-step forecast, instead of requesting on demand.  Bookings
        hold their resources from booking time (reserved capacity is
        unavailable to other tenants) until the lease ends.
    metrics:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; when
        set, the provisioner/matcher/centers record their counters into
        it and the run collects per-phase wall-clock timings.
    tracer:
        Optional :class:`~repro.obs.tracer.StepTracer` receiving
        structured JSONL events from the whole run.
    check_invariants:
        Run the :class:`~repro.obs.invariants.InvariantChecker` every
        step (also forced globally by ``REPRO_INVARIANTS=1``).  O(live
        leases) per step — intended for tests and debugging.
    invariant_checker:
        A pre-built checker to use instead of constructing one (e.g. a
        ``collect=True`` checker that gathers violations).
    """

    games: list[GameSpec]
    centers: list[DataCenter]
    mode: str = "dynamic"
    warmup_steps: int = 720
    matching: MatchingPolicy = field(default_factory=MatchingPolicy)
    advance_lead_steps: int = 0
    metrics: MetricsRegistry | None = None
    tracer: StepTracer | None = None
    check_invariants: bool = False
    invariant_checker: InvariantChecker | None = None

    def __post_init__(self) -> None:
        if self.mode not in ("dynamic", "static"):
            raise ValueError("mode must be 'dynamic' or 'static'")
        if self.advance_lead_steps < 0:
            raise ValueError("advance_lead_steps must be non-negative")
        if self.advance_lead_steps and self.mode != "dynamic":
            raise ValueError("advance reservations require dynamic mode")
        if not self.games:
            raise ValueError("need at least one game")
        if not self.centers:
            raise ValueError("need at least one data center")
        lengths = {g.trace.n_steps for g in self.games}
        if len(lengths) > 1:
            raise ValueError(f"game traces differ in length: {sorted(lengths)}")
        n_steps = lengths.pop()
        if self.warmup_steps < 0 or self.warmup_steps >= n_steps:
            raise ValueError("warmup_steps must be in [0, trace length)")


class EcosystemSimulator:
    """Runs one configured simulation and collects the metrics."""

    def __init__(self, config: EcosystemConfig) -> None:
        self.config = config

    def run(self) -> SimulationResult:
        """Execute the simulation over the trace's evaluation window.

        The heavy lifting lives in :class:`~repro.core.stepper.TickStepper`
        (shared with the live service); this method only resolves the
        observability hooks, replays the trace into the stepper and
        returns its result.
        """
        cfg = self.config
        step_minutes = cfg.games[0].trace.step_minutes
        n_steps = cfg.games[0].trace.n_steps
        warmup = cfg.warmup_steps

        # Observability: an explicit registry wins; otherwise an
        # ambient probe (the bench harness) is consulted once here.
        metrics = cfg.metrics if cfg.metrics is not None else ambient_metrics()
        checker = cfg.invariant_checker
        if checker is None and (cfg.check_invariants or invariants_forced()):
            checker = InvariantChecker(cfg.centers)

        stepper = TickStepper(
            [g.tick_game(cfg.centers) for g in cfg.games],
            cfg.centers,
            warmup_steps=warmup,
            total_steps=n_steps,
            mode=cfg.mode,
            step_minutes=step_minutes,
            matching=cfg.matching,
            advance_lead_steps=cfg.advance_lead_steps,
            metrics=metrics,
            tracer=cfg.tracer,
            checker=checker,
        )

        # Off-line phases: predictor training + state warm-up.
        warmup_data: dict[str, dict[str, np.ndarray]] = {}
        if warmup > 0:
            warmup_data = {
                g.name: GameOperator.warmup_from_trace(g.trace, warmup)
                for g in cfg.games
            }
        stepper.prepare(warmup_data)

        # Static mode installs, up front, servers sized for every group's
        # individual peak over the horizon (the worst case each world's
        # own servers must carry — static infrastructure cannot shuffle
        # capacity between worlds mid-flight).
        if cfg.mode == "static":
            # One-time setup before the step loop; games x regions is
            # config-bounded (a handful each), not data-scaled.
            stepper.install_static(
                {  # reprolint: disable=RA008
                    (g.name, region.name): region.loads[warmup:].max(axis=0)
                    for g in cfg.games
                    for region in g.trace.regions
                }
            )

        for t in range(warmup, n_steps):
            loads: dict[tuple[str, str], np.ndarray] = {}
            for g in cfg.games:
                # games x regions is config-bounded (a handful each),
                # not data-scaled: nested scan is the intended shape.
                for region in g.trace.regions:  # reprolint: disable=RA008
                    loads[(g.name, region.name)] = region.loads[t]
            stepper.step(t, loads)
        return stepper.finish()

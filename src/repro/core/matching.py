"""The request-offer matching mechanism (Sec. II-C).

Game operators submit resource requests; data centers respond with
offers shaped by their hosting policies.  Matching applies three
criteria favouring the operator:

1. **amount** — the matched offers must cover at least the requested
   quantities (bulk rounding guarantees "at least");
2. **latency** — only centers within the game's latency tolerance
   (distance class) of the requesting region are considered;
3. **policy** — among admissible centers, the mechanism "selects first
   the finer grained resources with the shorter period of reservation
   time".

The ranking order of the policy/distance criteria is configurable via
:class:`MatchingPolicy` so the criteria-order ablation can quantify its
effect; the default matches the paper's description (grain, then time
bulk, then distance).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.datacenter.center import DataCenter
from repro.datacenter.geography import GeoLocation, Km, LatencyClass
from repro.datacenter.resources import CPU, ResourceVector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry

__all__ = ["MatchingPolicy", "MatchPlan", "match_request", "distance_band", "DISTANCE_BANDS_KM"]

#: Band edges (km) used to coarsen distances for ranking; they mirror the
#: latency classes of Sec. V-E.
DISTANCE_BANDS_KM: tuple[Km, ...] = (Km(50.0), Km(1000.0), Km(2000.0), Km(4000.0))


def distance_band(distance_km: Km) -> int:
    """Coarse distance band of a player-server distance (0 = co-located)."""
    for band, edge in enumerate(DISTANCE_BANDS_KM):
        if distance_km <= edge:
            return band
    return len(DISTANCE_BANDS_KM)


@dataclass(frozen=True)
class MatchingPolicy:
    """Configuration of the offer-ranking criteria.

    ``criteria`` is the sort-key order; each entry is one of
    ``"grain"`` (finer resource bulks first), ``"time_bulk"`` (shorter
    leases first), ``"distance"`` (closer centers first, in bands) and
    ``"free"`` (more free CPU first — the tie-breaker that spreads load).
    """

    criteria: tuple[str, ...] = ("grain", "time_bulk", "distance", "free")

    _VALID = frozenset({"grain", "time_bulk", "distance", "free"})

    def __post_init__(self) -> None:
        unknown = set(self.criteria) - self._VALID
        if unknown:
            raise ValueError(f"unknown matching criteria: {sorted(unknown)}")
        if not self.criteria:
            raise ValueError("need at least one criterion")

    def sort_key(self, center: DataCenter, distance_km: Km) -> tuple[float | int | str, ...]:
        """Build the sort key for one admissible center."""
        parts: list[float | int | str] = []
        for criterion in self.criteria:
            if criterion == "grain":
                parts.append(center.policy.grain)
            elif criterion == "time_bulk":
                parts.append(center.policy.time_bulk_minutes)
            elif criterion == "distance":
                parts.append(distance_band(distance_km))
            elif criterion == "free":
                parts.append(-center.free[CPU])
        # Exact distance and name as final deterministic tie-breakers.
        parts.append(distance_km)
        parts.append(center.name)
        return tuple(parts)


@dataclass
class MatchPlan:
    """The outcome of matching one request.

    Attributes
    ----------
    placements:
        ``(center, rounded_vector)`` pairs to allocate, in match order.
    unmatched:
        The demand left uncovered (zero vector when fully matched).
    rejections:
        ``(center_name, reason)`` pairs for every candidate that was
        ruled out: ``"latency"`` (outside the game's distance class) or
        ``"amount"`` (admissible but no usable free capacity).
    """

    placements: list[tuple[DataCenter, ResourceVector]] = field(default_factory=list)
    unmatched: ResourceVector = field(default_factory=ResourceVector.zeros)
    rejections: list[tuple[str, str]] = field(default_factory=list)

    @property
    def fully_matched(self) -> bool:
        """Whether the whole request was covered."""
        return not self.unmatched.any_positive(tol=1e-9)

    def total(self) -> ResourceVector:
        """Sum of all planned allocations."""
        out = ResourceVector.zeros()
        for _, vec in self.placements:
            out = out + vec
        return out


def match_request(
    demand: ResourceVector,
    origin: GeoLocation,
    centers: Sequence[DataCenter],
    *,
    latency: LatencyClass = LatencyClass.VERY_FAR,
    policy: MatchingPolicy | None = None,
    metrics: "MetricsRegistry | None" = None,
) -> MatchPlan:
    """Match a demand vector against the data centers.

    Walks the admissible centers in ranking order, taking from each the
    largest bulk-rounded allocation that fits its free capacity, until
    the demand is covered (or the centers are exhausted).  The returned
    plan is *not* yet applied — callers allocate the placements.

    Parameters
    ----------
    demand:
        Resource amounts still needed (un-rounded; each placement is
        rounded to its center's bulks, so the plan may exceed demand).
    origin:
        Where the requesting players are concentrated.
    centers:
        Candidate data centers.
    latency:
        The game's latency tolerance, as a distance class.
    policy:
        Offer-ranking configuration (default: the paper's).
    metrics:
        Optional registry recording request/placement/rejection
        counters (``matching.*`` — see ``docs/observability.md``).
    """
    if policy is None:
        policy = MatchingPolicy()
    plan = MatchPlan()
    if not demand.any_positive():
        return plan
    if metrics is not None:
        metrics.counter("matching.requests").inc()
        # Every candidate center is examined (admissibility + ranking)
        # exactly once per request: the deterministic unit of matcher
        # work, separating time-per-comparison from request-volume drift.
        metrics.counter("matching.offers_considered").inc(len(centers))

    admissible: list[tuple[tuple, DataCenter]] = []
    for center in centers:
        dist = origin.distance_km(center.location)
        if latency.admits(dist):
            admissible.append((policy.sort_key(center, dist), center))
        else:
            plan.rejections.append((center.name, "latency"))
    admissible.sort(key=lambda pair: pair[0])

    remaining = demand.copy()
    for _, center in admissible:
        if not remaining.any_positive():
            break
        offer = center.fit_to_capacity(remaining)
        if not offer.any_positive():
            plan.rejections.append((center.name, "amount"))
            continue
        plan.placements.append((center, offer))
        remaining = (remaining - offer).clamp_min(0.0)
    plan.unmatched = remaining
    if metrics is not None:
        if plan.placements:
            metrics.counter("matching.placements").inc(len(plan.placements))
        for _, reason in plan.rejections:
            metrics.counter(f"matching.rejected.{reason}").inc()
        if plan.fully_matched:
            metrics.counter("matching.fully_matched").inc()
        else:
            metrics.counter("matching.unmatched").inc()
    return plan

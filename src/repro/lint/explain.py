"""``--explain RULE``: defect class + minimal flagged example per rule.

One table for both tools — ``repro lint --explain RL003`` and
``repro analyze --explain RA017`` read the same registry, and the
completeness test holds it to cover every registered lint rule and
every analyzer pass so a new rule cannot ship unexplained.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Explanation", "EXPLANATIONS", "explain", "render_explanation"]


@dataclass(frozen=True)
class Explanation:
    """What a rule protects against and the smallest code that trips it."""

    defect_class: str
    example: str


EXPLANATIONS: dict[str, Explanation] = {
    "RL001": Explanation(
        defect_class="irreproducible runs: RNG state outside the seeded "
        "Generator graph silently varies between invocations",
        example="import random\n"
        "def jitter() -> float:\n"
        "    return random.random()  # module-level RNG, unseeded",
    ),
    "RL002": Explanation(
        defect_class="wall-clock coupling: simulated time contaminated by "
        "host time makes runs machine- and load-dependent",
        example="import time\n"
        "def step_cost() -> float:\n"
        "    return time.time()  # wall clock inside simulation code",
    ),
    "RL003": Explanation(
        defect_class="float-equality flakiness: == on accumulated floats "
        "flips with summation order and optimization level",
        example="def settled(balance: float) -> bool:\n"
        "    return balance == 0.0  # use math.isclose / ledger helpers",
    ),
    "RL004": Explanation(
        defect_class="aliased mutable default: one shared list/dict "
        "accumulates state across unrelated calls",
        example="def enqueue(item: int, queue: list[int] = []) -> list[int]:\n"
        "    queue.append(item)  # same list every call\n"
        "    return queue",
    ),
    "RL005": Explanation(
        defect_class="module-global shared state: cross-run leakage through "
        "a mutable container that outlives the simulation",
        example="CACHE: dict[str, float] = {}  # module-level mutable in core/",
    ),
    "RL006": Explanation(
        defect_class="untyped public surface: missing annotations hide "
        "dimension/unit mistakes the analyzer would otherwise catch",
        example="def allocate(amount):  # public, unannotated\n"
        "    return amount * 2",
    ),
    "RL007": Explanation(
        defect_class="set-order nondeterminism: iteration order reaches "
        "output and varies with hash seeding",
        example="def names(tags: set[str]) -> list[str]:\n"
        "    return [t for t in tags]  # sort first",
    ),
    "RL008": Explanation(
        defect_class="ad-hoc experiment seeding: a private RNG breaks the "
        "one-seed-per-experiment reproducibility ledger",
        example="from numpy.random import default_rng\n"
        "def run() -> None:\n"
        "    rng = default_rng(7)  # use experiments.common.experiment_rng",
    ),
    "RA001": Explanation(
        defect_class="impure step loop: I/O, wall-clock, env, or global "
        "mutation reachable from the tick makes steps order-dependent",
        example="def on_tick(state: State) -> None:\n"
        "    print(state.load)  # I/O on the step-reachable path",
    ),
    "RA002": Explanation(
        defect_class="dimension confusion: Cpu/Mem/NetIn/NetOut quantities "
        "mixed in arithmetic or passed across mismatched signatures",
        example="def total(cpu: Cpu, mem: Mem) -> Cpu:\n"
        "    return Cpu(cpu + mem)  # adds CPU-seconds to bytes",
    ),
    "RA003": Explanation(
        defect_class="unseeded randomness reaching simulation code: results "
        "change between runs with no config change",
        example="def sample() -> float:\n"
        "    rng = np.random.default_rng()  # no seed\n"
        "    return float(rng.random())",
    ),
    "RA004": Explanation(
        defect_class="runtime import cycle: import order decides whether "
        "the program starts; refactors break distant modules",
        example="# a.py: from b import helper\n# b.py: from a import other",
    ),
    "RA005": Explanation(
        defect_class="dead experiment: a module under experiments/ not "
        "registered in the CLI silently falls out of every sweep",
        example="# src/repro/experiments/fig99_new.py exists\n"
        "# but EXPERIMENTS in cli.py has no 'fig99' entry",
    ),
    "RA006": Explanation(
        defect_class="interval violation: provably-negative resource "
        "amounts, zero-able divisors, or percent/fraction mixups",
        example="def utilization(load: float, capacity: float) -> float:\n"
        "    return load / (capacity - capacity)  # divisor is provably 0",
    ),
    "RA007": Explanation(
        defect_class="exception leak: an accidental exception type escapes "
        "the step loop, or an over-broad handler hides real faults",
        example="def on_tick(state: State) -> None:\n"
        "    try:\n"
        "        advance(state)\n"
        "    except Exception:\n"
        "        pass  # swallows KeyboardInterrupt-adjacent faults",
    ),
    "RA008": Explanation(
        defect_class="hot-path blowup: nested unbounded loops, per-tick "
        "collection builds, or O(n) membership in step-reachable code",
        example="def on_tick(entities: list[int], active: list[int]) -> int:\n"
        "    return sum(1 for e in entities if e in active)  # O(n*m)",
    ),
    "RA009": Explanation(
        defect_class="array-shape/dtype mismatch: silent broadcasting or "
        "promotion produces wrong numbers instead of errors",
        example="a = np.zeros((3, 4))\n"
        "b = np.zeros(3)\n"
        "c = a + b  # shapes (3,4) and (3,) do not broadcast",
    ),
    "RA010": Explanation(
        defect_class="hidden per-tick allocation: missing out=, fancy-index "
        "copies, and ufunc temporaries dominate the vectorized step",
        example="def step(load: np.ndarray, out: np.ndarray) -> np.ndarray:\n"
        "    return load * 2.0  # allocates; np.multiply(load, 2.0, out=out)",
    ),
    "RA011": Explanation(
        defect_class="RNG-stream divergence: reference and vectorized "
        "engines draw different sequences, breaking bitwise equivalence",
        example="# reference: rng.normal(size=n)\n"
        "# vectorized: [rng.normal() for _ in range(n)]  # different stream",
    ),
    "RA012": Explanation(
        defect_class="process-boundary hazard: unpicklable payloads, "
        "duplicated RNG streams, or shared-state mutation across spawn",
        example="def fan_out(pool: Pool, rng: Generator) -> None:\n"
        "    pool.map(run_one, [rng] * 4)  # same stream in every worker",
    ),
    "RA013": Explanation(
        defect_class="event-loop blocking: sync sleep/file/socket I/O or "
        "CPU-heavy simulation entry points stall every connection",
        example="async def handle(conn: Conn) -> None:\n"
        "    time.sleep(1.0)  # blocks the loop; await asyncio.sleep",
    ),
    "RA014": Explanation(
        defect_class="task lifecycle leak: fire-and-forget tasks and "
        "unawaited coroutines die silently with their exceptions",
        example="async def start(loop_state: State) -> None:\n"
        "    asyncio.create_task(tick(loop_state))  # no reference kept",
    ),
    "RA015": Explanation(
        defect_class="cross-task race: coroutine roots mutate shared state "
        "without a common lock, or await inside a critical section",
        example="async def bump(stats: dict[str, int]) -> None:\n"
        "    stats['n'] += 1  # also mutated by another coroutine root",
    ),
    "RA016": Explanation(
        defect_class="unrestartable tick state: served-loop state hiding in "
        "modules/closures is lost on restart instead of checkpointed",
        example="_pending: list[int] = []  # tick state outside\n"
        "# any @checkpointable dataclass",
    ),
    "RA017": Explanation(
        defect_class="dead or unaddressable config: a declared knob nobody "
        "reads (ignored config) or a literal pin no knob can override",
        example="# schema declares Knob(name='label', ...)\n"
        "# but no scenario-reachable function reads scenario.label",
    ),
    "RA018": Explanation(
        defect_class="out-of-contract scenario value: units, bounds, "
        "dimensions, or mix sums violated by a literal configuration",
        example="Scenario(scenario_id='x', seed=1,\n"
        "         base_utilization=45.0)  # fraction knob, percent value",
    ),
    "RA019": Explanation(
        defect_class="default drift: a schema default silently disagrees "
        "with the simulator default it shadows (or a stale override)",
        example="# schema: Knob(name='step_minutes', default=5.0,\n"
        "#               binds='...TraceSynthesisConfig.step_minutes')\n"
        "# simulator: step_minutes: float = 2.0  # drift, no override=True",
    ),
    "RA020": Explanation(
        defect_class="seed-routing break: a stochastic draw reachable from "
        "the scenario roots does not derive from the declared seed",
        example="def materialize(scenario: Scenario) -> Run:\n"
        "    rng = np.random.default_rng()  # ignores scenario.seed",
    ),
    "RA021": Explanation(
        defect_class="instrumentation gap: a reachable phase root opens no "
        "span, a span is orphaned, or `with span(...)` crosses an await",
        example="def step(self, t):\n"
        "    ...\n"
        "    t0 = timer.lap('reconcile', t0)  # phase charged, no span",
    ),
}


def explain(rule_id: str) -> Explanation | None:
    """The explanation for ``rule_id`` (case-insensitive), or ``None``."""
    return EXPLANATIONS.get(rule_id.upper())


def render_explanation(rule_id: str, summary: str) -> str:
    """Human-readable ``--explain`` block for one rule."""
    entry = EXPLANATIONS[rule_id.upper()]
    example = "\n".join(f"    {line}" for line in entry.example.splitlines())
    return (
        f"{rule_id.upper()}: {summary}\n"
        f"\n"
        f"defect class:\n"
        f"    {entry.defect_class}\n"
        f"\n"
        f"minimal flagged example:\n"
        f"{example}"
    )

"""The ``reprolint`` domain rules, RL001-RL008.

Each rule encodes one reproducibility or unit-safety hazard specific to
this simulator (see ``docs/static_analysis.md`` for the rationale and
the worked examples).  Rules are syntactic: they work on one file's AST
plus an import-alias map, never on inferred types, so every finding is
cheap, deterministic, and explainable.  The cost is a handful of known
heuristic edges (documented per rule); those are what the
``# reprolint: disable=`` pragma is for.

Scoping: a rule only runs where its hazard matters.  RL002 watches the
deterministic simulation packages (``core``, ``emulator``,
``predictors``) and never the sanctioned impurity boundary
(:data:`OBSERVABILITY_BOUNDARY_PACKAGES` — ``obs`` and ``perf``),
RL005 the ``core`` package, RL006 the strict-typing
packages (``core``, ``predictors``, ``obs``, ``lint``, ``analysis``),
RL008 the ``experiments`` package, and RL003/RL006 skip ``tests/``
(exact float assertions are deliberate test oracles).  RL001, RL004,
and RL007 run everywhere.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.lint.engine import FileContext, Violation

__all__ = [
    "ImportMap",
    "LintRule",
    "NUMPY_GLOBAL_RNG",
    "OBSERVABILITY_BOUNDARY_PACKAGES",
    "STDLIB_GLOBAL_RNG",
    "WALL_CLOCK_CALLS",
    "all_rules",
    "get_rules",
    "rule_table",
]

#: The sanctioned impurity boundary, shared by RL002 (wall-clock scan
#: scope) and RA001 (purity traversal stop set, via
#: ``repro.analysis.purity.DEFAULT_BOUNDARY_PREFIXES``).  ``obs`` hosts
#: tracer I/O, metric registries, and the ambient probe stack; ``perf``
#: hosts the bench harness, which reads clocks, ``tracemalloc``, the
#: process environment, and the git revision *by design*.  Growing this
#: tuple is the reviewed way to bless a new impure package — never an
#: inline ``# reprolint: disable=`` scatter.
OBSERVABILITY_BOUNDARY_PACKAGES: tuple[str, ...] = ("obs", "perf")


# ---------------------------------------------------------------------------
# Import-alias resolution shared by the rules.
# ---------------------------------------------------------------------------

#: Attribute set on ``ast.Name`` nodes that resolve to a *local* binding
#: (function/lambda parameter or comprehension target) shadowing an
#: imported name.  :meth:`ImportMap.canonical` refuses to canonicalize
#: such names, so ``[choice(f) for choice in fs]`` never reads as
#: ``random.choice`` (the comprehension/lambda-scoping false positive).
_SHADOW_ATTR = "_reprolint_shadowed"


def _scope_bound_names(node: ast.AST) -> set[str]:
    """Names bound locally by one function/lambda/comprehension scope.

    For functions: parameters plus every assignment-like binding in the
    body (assignments, loop targets, ``with``/``except`` aliases,
    walrus), *excluding* names bound by import statements — an inner
    ``import random`` still refers to the real module — and excluding
    bindings inside nested scopes (they do not leak out in Python 3).
    """
    bound: set[str] = set()

    def add_target(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            bound.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                add_target(elt)
        elif isinstance(target, ast.Starred):
            add_target(target.value)

    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        args = node.args
        for a in args.posonlyargs + args.args + args.kwonlyargs:
            bound.add(a.arg)
        if args.vararg is not None:
            bound.add(args.vararg.arg)
        if args.kwarg is not None:
            bound.add(args.kwarg.arg)
        if isinstance(node, ast.Lambda):
            return bound
        body: list[ast.stmt] = node.body
        stack: list[ast.AST] = list(body)
        while stack:
            stmt = stack.pop()
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                bound.add(getattr(stmt, "name", ""))
                continue  # nested scope: bindings stay inside
            if isinstance(stmt, ast.ClassDef):
                bound.add(stmt.name)
                continue
            if isinstance(stmt, ast.Assign):
                for t in stmt.targets:
                    add_target(t)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                add_target(stmt.target)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                add_target(stmt.target)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if item.optional_vars is not None:
                        add_target(item.optional_vars)
            elif isinstance(stmt, ast.ExceptHandler) and stmt.name:
                bound.add(stmt.name)
            elif isinstance(stmt, ast.NamedExpr):
                add_target(stmt.target)
            for child in ast.iter_child_nodes(stmt):
                if not isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    stack.append(child)
        bound.discard("")
        return bound

    if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
        for comp in node.generators:
            add_target(comp.target)
        return bound
    return bound


def _annotate_shadowed_names(tree: ast.Module) -> None:
    """Mark every ``Name`` whose id is bound by an enclosing function,
    lambda, or comprehension scope (see :data:`_SHADOW_ATTR`)."""

    def visit(node: ast.AST, active: frozenset[str]) -> None:
        if isinstance(node, ast.Name):
            if node.id in active:
                setattr(node, _SHADOW_ATTR, True)
            return
        if isinstance(
            node,
            (
                ast.FunctionDef,
                ast.AsyncFunctionDef,
                ast.Lambda,
                ast.ListComp,
                ast.SetComp,
                ast.DictComp,
                ast.GeneratorExp,
            ),
        ):
            active = active | _scope_bound_names(node)
        for child in ast.iter_child_nodes(node):
            visit(child, active)

    visit(tree, frozenset())


class ImportMap:
    """Maps local names to canonical dotted module paths.

    ``import numpy as np`` makes ``np.random.rand`` canonicalize to
    ``numpy.random.rand``; ``from random import randint as ri`` makes
    ``ri`` canonicalize to ``random.randint``.  Only absolute imports
    are tracked — relative imports cannot smuggle in the stdlib/numpy
    modules these rules care about.  Names shadowed by an enclosing
    comprehension target or function/lambda parameter are *never*
    canonicalized (they refer to the local binding, not the import).
    """

    def __init__(self) -> None:
        self.module_aliases: dict[str, str] = {}
        self.from_imports: dict[str, str] = {}

    @classmethod
    def from_tree(cls, tree: ast.Module) -> "ImportMap":
        imports = cls()
        _annotate_shadowed_names(tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    imports.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
                    if alias.asname is None and "." in alias.name:
                        # ``import numpy.random`` binds ``numpy``.
                        imports.module_aliases[alias.name.split(".")[0]] = alias.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    imports.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        return imports

    def canonical(self, node: ast.expr) -> str | None:
        """Canonical dotted name of an expression, or None."""
        if isinstance(node, ast.Name):
            if getattr(node, _SHADOW_ATTR, False):
                return None
            if node.id in self.from_imports:
                return self.from_imports[node.id]
            return self.module_aliases.get(node.id, node.id)
        if isinstance(node, ast.Attribute):
            base = self.canonical(node.value)
            return None if base is None else f"{base}.{node.attr}"
        return None


# ---------------------------------------------------------------------------
# Rule base + registry.
# ---------------------------------------------------------------------------


class LintRule:
    """One domain rule; subclasses set the class attributes and ``check``."""

    rule_id: str = ""
    summary: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, ctx: FileContext, node: ast.AST, message: str) -> Violation:
        return Violation(
            path=ctx.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
        )


_REGISTRY: dict[str, type[LintRule]] = {}


def _register(cls: type[LintRule]) -> type[LintRule]:
    if cls.rule_id in _REGISTRY:  # pragma: no cover - programming error
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> list[LintRule]:
    """Fresh instances of every registered rule, in id order."""
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def get_rules(ids: Sequence[str]) -> list[LintRule]:
    """Instances for the given ids; raises KeyError on unknown ids."""
    unknown = [rule_id for rule_id in ids if rule_id not in _REGISTRY]
    if unknown:
        raise KeyError(f"unknown rule id(s): {', '.join(unknown)}")
    return [_REGISTRY[rule_id]() for rule_id in sorted(set(ids))]


def rule_table() -> list[tuple[str, str]]:
    """``(rule_id, summary)`` rows for ``repro lint --list-rules``."""
    return [(rule_id, _REGISTRY[rule_id].summary) for rule_id in sorted(_REGISTRY)]


# ---------------------------------------------------------------------------
# RL001 — unseeded randomness.
# ---------------------------------------------------------------------------

#: Stdlib ``random`` module-level functions that touch the hidden global
#: RNG.  Calling any of them makes run output depend on call ordering
#: across the whole process, which is exactly what seeded, injected
#: generators prevent.
_STDLIB_GLOBAL_RNG = frozenset(
    {
        "random", "seed", "randint", "randrange", "uniform", "gauss",
        "normalvariate", "lognormvariate", "expovariate", "betavariate",
        "gammavariate", "triangular", "vonmisesvariate", "paretovariate",
        "weibullvariate", "choice", "choices", "shuffle", "sample",
        "randbytes", "getrandbits", "binomialvariate",
    }
)

#: Legacy ``numpy.random`` global-state functions (the pre-Generator API).
_NUMPY_GLOBAL_RNG = frozenset(
    {
        "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "seed", "choice", "shuffle", "permutation", "normal",
        "uniform", "poisson", "exponential", "standard_normal", "binomial",
        "beta", "gamma", "bytes", "get_state", "set_state",
    }
)


@_register
class UnseededRandomRule(LintRule):
    rule_id = "RL001"
    summary = (
        "no unseeded random.Random()/np.random.default_rng() and no "
        "global-state RNG functions in simulation code"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        imports = ImportMap.from_tree(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = imports.canonical(node.func)
            if name is None:
                continue
            unseeded = not node.args and not node.keywords
            if name == "random.Random" and unseeded:
                yield self.violation(
                    ctx, node, "unseeded random.Random(); pass an explicit seed"
                )
            elif name.startswith("random.") and name.split(".", 1)[1] in _STDLIB_GLOBAL_RNG:
                yield self.violation(
                    ctx,
                    node,
                    f"global-state RNG call {name}(); use an injected "
                    "random.Random(seed) instead",
                )
            elif name in ("numpy.random.default_rng", "numpy.random.RandomState"):
                if unseeded:
                    yield self.violation(
                        ctx, node, f"unseeded {name}(); pass an explicit seed"
                    )
            elif (
                name.startswith("numpy.random.")
                and name.rsplit(".", 1)[1] in _NUMPY_GLOBAL_RNG
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"legacy global-state RNG call {name}(); use "
                    "numpy.random.default_rng(seed)",
                )


# ---------------------------------------------------------------------------
# RL002 — wall-clock reads in deterministic simulation packages.
# ---------------------------------------------------------------------------

#: Wall-clock sources.  Monotonic timers (``perf_counter``,
#: ``monotonic``) stay legal: they time phases without feeding
#: simulation state.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.ctime",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Public aliases of the banned-call tables so :mod:`repro.analysis` can
#: reuse the exact same definitions in its interprocedural passes —
#: one source of truth for what counts as a wall-clock read or a
#: global-state RNG call.
STDLIB_GLOBAL_RNG = _STDLIB_GLOBAL_RNG
NUMPY_GLOBAL_RNG = _NUMPY_GLOBAL_RNG
WALL_CLOCK_CALLS = _WALL_CLOCK


@_register
class WallClockRule(LintRule):
    rule_id = "RL002"
    summary = "no wall-clock reads (time.time, datetime.now) in core/emulator/predictors"

    def applies_to(self, ctx: FileContext) -> bool:
        if any(ctx.in_package(pkg) for pkg in OBSERVABILITY_BOUNDARY_PACKAGES):
            return False
        return not ctx.is_test and any(
            ctx.in_package(pkg) for pkg in ("core", "emulator", "predictors")
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        imports = ImportMap.from_tree(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = imports.canonical(node.func)
            if name in _WALL_CLOCK:
                yield self.violation(
                    ctx,
                    node,
                    f"wall-clock read {name}() in deterministic simulation code; "
                    "inject the simulation clock (step index) instead",
                )


# ---------------------------------------------------------------------------
# RL003 — float equality on resource quantities.
# ---------------------------------------------------------------------------


@_register
class FloatEqualityRule(LintRule):
    rule_id = "RL003"
    summary = "no float ==/!= in simulation code; use math.isclose or the ledger helpers"

    def applies_to(self, ctx: FileContext) -> bool:
        # Exact float assertions in tests are deliberate oracles.
        return not ctx.is_test

    def _is_float_like(self, node: ast.expr, imports: ImportMap) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            return self._is_float_like(node.operand, imports)
        if isinstance(node, ast.Call):
            name = imports.canonical(node.func)
            return name == "float"
        name = imports.canonical(node)
        return name in ("math.inf", "math.nan", "numpy.inf", "numpy.nan")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        imports = ImportMap.from_tree(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._is_float_like(operands[i], imports) or self._is_float_like(
                    operands[i + 1], imports
                ):
                    yield self.violation(
                        ctx,
                        operands[i],
                        "float equality comparison; use math.isclose()/math.isinf() "
                        "or ResourceVector.covers()/is_zero() with a tolerance",
                    )


# ---------------------------------------------------------------------------
# RL004 — mutable default arguments.
# ---------------------------------------------------------------------------

_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "Counter", "deque", "OrderedDict"}
)


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(
        node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    ):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_CONSTRUCTORS
    return False


@_register
class MutableDefaultRule(LintRule):
    rule_id = "RL004"
    summary = "no mutable default arguments"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            args = node.args
            defaults = list(args.defaults) + [d for d in args.kw_defaults if d is not None]
            for default in defaults:
                if _is_mutable_value(default):
                    label = getattr(node, "name", "<lambda>")
                    yield self.violation(
                        ctx,
                        default,
                        f"mutable default argument in {label}(); default to None "
                        "and construct inside the function",
                    )


# ---------------------------------------------------------------------------
# RL005 — module-level mutable state in core/.
# ---------------------------------------------------------------------------


@_register
class ModuleStateRule(LintRule):
    rule_id = "RL005"
    summary = "no module-level mutable containers in core/ (shared-state bug class)"

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.is_test and ctx.in_package("core")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for stmt in ctx.tree.body:
            targets: list[ast.expr]
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if all(name.startswith("__") and name.endswith("__") for name in names if name):
                if names:  # dunders like __all__ are conventional metadata
                    continue
            if _is_mutable_value(value):
                label = ", ".join(names) or "<target>"
                yield self.violation(
                    ctx,
                    stmt,
                    f"module-level mutable container {label!r}; use a tuple/"
                    "frozenset/MappingProxyType or move the state into a class",
                )


# ---------------------------------------------------------------------------
# RL006 — full type annotations on public functions.
# ---------------------------------------------------------------------------


@_register
class PublicAnnotationRule(LintRule):
    rule_id = "RL006"
    summary = "public functions in core/predictors/obs must be fully type-annotated"

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.is_test and any(
            ctx.in_package(pkg)
            for pkg in ("core", "predictors", "obs", "lint", "analysis")
        )

    def _missing(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
        args = func.args
        positional = args.posonlyargs + args.args
        missing = [
            a.arg
            for i, a in enumerate(positional)
            if a.annotation is None and not (i == 0 and a.arg in ("self", "cls"))
        ]
        missing += [a.arg for a in args.kwonlyargs if a.annotation is None]
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append(f"*{args.vararg.arg}")
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append(f"**{args.kwarg.arg}")
        if func.returns is None:
            missing.append("return")
        return missing

    def _walk_scope(
        self, ctx: FileContext, body: Sequence[ast.stmt], qualname: str
    ) -> Iterator[Violation]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = stmt.name
                is_dunder = name.startswith("__") and name.endswith("__")
                if name.startswith("_") and not is_dunder:
                    continue
                missing = self._missing(stmt)
                if missing:
                    label = f"{qualname}.{name}" if qualname else name
                    yield self.violation(
                        ctx,
                        stmt,
                        f"public function {label}() missing annotations: "
                        + ", ".join(missing),
                    )
            elif isinstance(stmt, ast.ClassDef):
                if stmt.name.startswith("_"):
                    continue
                prefix = f"{qualname}.{stmt.name}" if qualname else stmt.name
                yield from self._walk_scope(ctx, stmt.body, prefix)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        yield from self._walk_scope(ctx, ctx.tree.body, "")


# ---------------------------------------------------------------------------
# RL007 — unordered iteration feeding ordered output.
# ---------------------------------------------------------------------------

#: Order-insensitive consumers of a set; iteration inside these is fine.
_ORDER_INSENSITIVE = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset", "bool"}
)
#: Order-preserving consumers: materializing a set through these bakes
#: the (hash-seed-dependent) iteration order into the output.
_ORDER_SENSITIVE = frozenset({"list", "tuple", "enumerate", "iter", "reversed"})


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


@_register
class SetOrderRule(LintRule):
    rule_id = "RL007"
    summary = "no direct iteration over sets where order reaches output; sort first"

    def _message(self) -> str:
        return (
            "iteration over a set is hash-seed dependent; wrap in sorted() "
            "before the order can reach simulation output"
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and _is_set_expr(node.iter):
                yield self.violation(ctx, node.iter, self._message())
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                for comp in node.generators:
                    if _is_set_expr(comp.iter):
                        yield self.violation(ctx, comp.iter, self._message())
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in _ORDER_SENSITIVE
                    and node.args
                    and _is_set_expr(node.args[0])
                ):
                    yield self.violation(ctx, node.args[0], self._message())
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr == "join"
                    and node.args
                    and _is_set_expr(node.args[0])
                ):
                    yield self.violation(ctx, node.args[0], self._message())


# ---------------------------------------------------------------------------
# RL008 — experiments must route RNG through experiments.common.
# ---------------------------------------------------------------------------

_EXPERIMENT_RNG_BANNED = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.seed",
        "random.Random",
        "random.seed",
    }
)


@_register
class ExperimentSeedingRule(LintRule):
    rule_id = "RL008"
    summary = "experiment modules must take RNGs from experiments.common.experiment_rng"

    def applies_to(self, ctx: FileContext) -> bool:
        return (
            not ctx.is_test
            and ctx.in_package("experiments")
            and ctx.filename != "common.py"
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        imports = ImportMap.from_tree(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = imports.canonical(node.func)
            if name in _EXPERIMENT_RNG_BANNED:
                yield self.violation(
                    ctx,
                    node,
                    f"direct RNG construction {name}() in an experiment module; "
                    "use repro.experiments.common.experiment_rng(name) so every "
                    "figure shares the audited seeding scheme",
                )

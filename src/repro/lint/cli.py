"""Command-line front end for ``reprolint``.

Exposed two ways with identical behaviour:

* ``repro lint [paths ...]`` — subcommand of the main CLI;
* ``python -m repro.lint [paths ...]`` — standalone, for editors/CI.

Exit-code contract (consumed by the CI ``lint`` job):

* ``0`` — clean,
* ``1`` — at least one violation,
* ``2`` — engine/usage error (unparseable file, unknown rule id, bad
  suppression pragma, no files found).
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Sequence

from repro.lint.engine import LintReport, lint_paths
from repro.lint.output import format_human, format_json
from repro.lint.rules import LintRule, get_rules, rule_table

__all__ = ["add_lint_arguments", "build_parser", "run_from_args", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the shared ``lint`` options on ``parser`` (used both by
    the standalone parser and the ``repro lint`` subcommand)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: ./src and ./tests)",
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="JSON report from a previous --format json run; findings "
        "already recorded there are filtered out (ratchet mode)",
    )


def build_parser(prog: str = "repro lint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="reprolint: AST-based simulation-correctness checks (RL001-RL008)",
    )
    add_lint_arguments(parser)
    return parser


def _default_paths() -> list[str]:
    found = [p for p in ("src", "tests") if Path(p).is_dir()]
    return found


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a lint run from parsed arguments; returns the exit code."""
    if args.list_rules:
        for rule_id, summary in rule_table():
            print(f"{rule_id}  {summary}")
        return 0

    rules: list[LintRule] | None = None
    if args.rules is not None:
        ids = [part.strip() for part in args.rules.split(",") if part.strip()]
        try:
            rules = get_rules(ids)
        except KeyError as exc:
            print(f"error: {exc.args[0]}")
            return 2

    paths = args.paths or _default_paths()
    if not paths:
        print("error: no paths given and no ./src or ./tests directory found")
        return 2

    report: LintReport = lint_paths(paths, rules=rules)
    if args.baseline is not None:
        from repro.lint.baseline import BaselineError, apply_baseline, load_baseline

        try:
            apply_baseline(report, load_baseline(args.baseline))
        except BaselineError as exc:
            print(f"error: {exc}")
            return 2
    rendered = format_json(report) if args.format == "json" else format_human(report)
    if rendered:
        print(rendered)
    return report.exit_code


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point; returns the process exit code."""
    return run_from_args(build_parser().parse_args(argv))

"""Command-line front end for ``reprolint``.

Exposed two ways with identical behaviour:

* ``repro lint [paths ...]`` — subcommand of the main CLI;
* ``python -m repro.lint [paths ...]`` — standalone, for editors/CI.

Exit-code contract (consumed by the CI ``lint`` job):

* ``0`` — clean,
* ``1`` — at least one violation,
* ``2`` — engine/usage error (unparseable file, unknown rule id, bad
  suppression pragma, no files found).
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Sequence

from repro.lint.engine import LintReport, lint_paths
from repro.lint.output import render_report
from repro.lint.rules import LintRule, get_rules, rule_table

__all__ = ["add_lint_arguments", "build_parser", "run_from_args", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the shared ``lint`` options on ``parser`` (used both by
    the standalone parser and the ``repro lint`` subcommand)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: ./src and ./tests)",
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default="human",
        help="output format (default: human; sarif for CI annotation)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        default=None,
        help="print one rule's summary, defect class, and a minimal "
        "flagged example, then exit (e.g. --explain RL003)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="JSON report from a previous --format json run; findings "
        "already recorded there are filtered out (ratchet mode)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="record the current findings to FILE (for later --baseline "
        "runs) and exit 0",
    )


def build_parser(prog: str = "repro lint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="reprolint: AST-based simulation-correctness checks (RL001-RL008)",
    )
    add_lint_arguments(parser)
    return parser


def _default_paths() -> list[str]:
    found = [p for p in ("src", "tests") if Path(p).is_dir()]
    return found


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a lint run from parsed arguments; returns the exit code."""
    if args.explain is not None:
        from repro.lint.explain import explain, render_explanation

        rule_id = args.explain.upper()
        summaries = dict(rule_table())
        if rule_id not in summaries:
            if explain(rule_id) is not None:
                print(
                    f"error: {rule_id} is an analyzer pass; "
                    f"use `repro analyze --explain {rule_id}`"
                )
            else:
                print(f"error: unknown rule id {args.explain!r}")
            return 2
        print(render_explanation(rule_id, summaries[rule_id]))
        return 0
    if args.list_rules:
        for rule_id, summary in rule_table():
            print(f"{rule_id}  {summary}")
        print("\nuse --explain RULE for the defect class and a minimal example")
        return 0

    rules: list[LintRule] | None = None
    if args.rules is not None:
        ids = [part.strip() for part in args.rules.split(",") if part.strip()]
        try:
            rules = get_rules(ids)
        except KeyError as exc:
            print(f"error: {exc.args[0]}")
            return 2

    paths = args.paths or _default_paths()
    if not paths:
        print("error: no paths given and no ./src or ./tests directory found")
        return 2

    if args.baseline is not None and args.write_baseline is not None:
        print("error: --baseline and --write-baseline are mutually exclusive")
        return 2

    report: LintReport = lint_paths(paths, rules=rules)
    if args.write_baseline is not None:
        from repro.lint.baseline import write_baseline

        write_baseline(report, args.write_baseline)
        print(
            f"wrote baseline with {len(report.violations)} finding(s) "
            f"to {args.write_baseline}"
        )
        return 0
    if args.baseline is not None:
        from repro.lint.baseline import BaselineError, apply_baseline, load_baseline

        try:
            apply_baseline(report, load_baseline(args.baseline))
        except BaselineError as exc:
            print(f"error: {exc}")
            return 2
    rendered = render_report(
        report, args.format, tool_name="reprolint",
        rule_descriptions=dict(rule_table()),
    )
    if rendered:
        print(rendered)
    return report.exit_code


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point; returns the process exit code."""
    return run_from_args(build_parser().parse_args(argv))

"""The ``reprolint`` engine: file discovery, suppression handling, rule
dispatch, and the report object.

The engine is deliberately small: every domain decision lives in a
:class:`~repro.lint.rules.LintRule` (see :mod:`repro.lint.rules`); the
engine only parses each file once, computes the per-line suppression
table from comments, runs every applicable rule over the AST, and
filters suppressed violations out of the final report.

Suppression syntax
------------------
Violations are suppressed with comments, never with engine flags:

* ``# reprolint: disable=RL003`` on the offending line suppresses the
  listed rule(s) (comma-separated) for that line only;
* ``# reprolint: disable-file=RL001,RL007`` anywhere in the file
  suppresses the listed rules for the whole file.

An unknown rule id inside a suppression comment is itself reported as a
``bad-suppression`` engine error so stale pragmas cannot rot silently.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.rules import LintRule

__all__ = [
    "ANALYSIS_RULE_IDS",
    "Violation",
    "FileContext",
    "LintReport",
    "lint_source",
    "lint_paths",
    "parse_cached",
    "clear_ast_cache",
    "suppression_tables",
]

#: ``(filename, length, hash) -> tree``: one parse per file, shared
#: between the linter and the analyzer so ``repro check`` (and any
#: process running both) parses each source exactly once.  Trees are
#: read-only by contract — no rule or pass mutates them.
_AST_CACHE: dict[tuple[str, int, int], ast.Module] = {}
_AST_CACHE_MAX = 4096


def parse_cached(source: str, filename: str) -> ast.Module:
    """``ast.parse`` memoized on ``(filename, source)``.

    Propagates :class:`SyntaxError` exactly like ``ast.parse``; only
    successful parses are cached.
    """
    key = (filename, len(source), hash(source))
    tree = _AST_CACHE.get(key)
    if tree is None:
        tree = ast.parse(source, filename=filename)
        if len(_AST_CACHE) >= _AST_CACHE_MAX:
            _AST_CACHE.clear()  # crude but sufficient bound
        _AST_CACHE[key] = tree
    return tree


def clear_ast_cache() -> None:
    """Drop every memoized parse (for tests and long-lived sessions)."""
    _AST_CACHE.clear()

#: ``# reprolint: disable=RL001[,RL002...]`` (same-line suppression).
_DISABLE_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+)")
#: ``# reprolint: disable-file=RL001[,RL002...]`` (whole-file suppression).
_DISABLE_FILE_RE = re.compile(r"#\s*reprolint:\s*disable-file=([A-Za-z0-9_,\s]+)")

#: Rule ids owned by the whole-program analyzer (:mod:`repro.analysis`).
#: They share reprolint's suppression syntax, so the linter must accept
#: them in pragmas without treating them as unknown (and vice versa).
#: Defined here — the bottom of the layering — so neither tool has to
#: import the other just to validate a comment.
ANALYSIS_RULE_IDS: frozenset[str] = frozenset(
    {
        "RA001",
        "RA002",
        "RA003",
        "RA004",
        "RA005",
        "RA006",
        "RA007",
        "RA008",
        "RA009",
        "RA010",
        "RA011",
        "RA012",
        "RA013",
        "RA014",
        "RA015",
        "RA016",
        "RA017",
        "RA018",
        "RA019",
        "RA020",
        "RA021",
    }
)


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: a rule fired at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        """``path:line:col: RLxxx message`` — the human output line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


class FileContext:
    """Everything a rule may want to know about the file under check.

    ``virtual_path`` decouples scoping from the filesystem: fixture
    tests lint source strings under invented paths such as
    ``src/repro/core/example.py`` so path-scoped rules fire without
    touching the real tree.
    """

    def __init__(self, virtual_path: str, source: str, tree: ast.Module) -> None:
        self.path = virtual_path
        self.source = source
        self.tree = tree
        posix = virtual_path.replace("\\", "/")
        self.parts: tuple[str, ...] = tuple(p for p in posix.split("/") if p)
        self.filename = self.parts[-1] if self.parts else ""

    @property
    def is_test(self) -> bool:
        """True for files under a ``tests`` directory."""
        return "tests" in self.parts[:-1]

    def in_package(self, package: str) -> bool:
        """True when the file lives under ``repro/<package>/``.

        Matches only *after* a ``repro`` path component so that a
        project directory that happens to be called ``core`` does not
        put every file in scope.
        """
        parts = self.parts
        if "repro" not in parts:
            return False
        tail = parts[parts.index("repro") :]
        return package in tail[:-1]


def _suppression_tables(
    source: str, known_ids: frozenset[str]
) -> tuple[dict[int, set[str]], set[str], list[tuple[int, str]]]:
    """Parse suppression comments out of ``source``.

    Returns ``(per_line, whole_file, bad)`` where ``per_line`` maps a
    line number to the rule ids disabled on that line, ``whole_file``
    is the set of rule ids disabled for the entire file, and ``bad``
    lists ``(line, id)`` pairs naming unknown rule ids.
    """
    per_line: dict[int, set[str]] = {}
    whole_file: set[str] = set()
    bad: list[tuple[int, str]] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError):  # pragma: no cover - ast parsed OK
        return per_line, whole_file, bad

    for line_no, text in comments:
        file_match = _DISABLE_FILE_RE.search(text)
        line_match = None if file_match else _DISABLE_RE.search(text)
        match = file_match or line_match
        if match is None:
            continue
        ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
        for rule_id in sorted(ids):
            if rule_id not in known_ids:
                bad.append((line_no, rule_id))
        ids &= known_ids
        if file_match:
            whole_file |= ids
        else:
            per_line.setdefault(line_no, set()).update(ids)
    return per_line, whole_file, bad


def suppression_tables(
    source: str, known_ids: frozenset[str]
) -> tuple[dict[int, set[str]], set[str], list[tuple[int, str]]]:
    """Public suppression parser shared with :mod:`repro.analysis`.

    Same contract as the private helper: ``(per_line, whole_file, bad)``
    where ``bad`` lists ``(line, id)`` pairs for unknown rule ids.
    """
    return _suppression_tables(source, known_ids)


@dataclass
class LintReport:
    """Aggregate result of one lint run."""

    violations: list[Violation] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        """True when the run is clean (no violations *and* no errors)."""
        return not self.violations and not self.errors

    @property
    def exit_code(self) -> int:
        """CI contract: 0 clean, 1 violations, 2 engine/usage errors."""
        if self.errors:
            return 2
        return 1 if self.violations else 0

    def counts_by_rule(self) -> dict[str, int]:
        """``{rule_id: violation count}`` over the whole run."""
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule_id] = counts.get(violation.rule_id, 0) + 1
        return dict(sorted(counts.items()))

    def extend_from_file(self, other: "LintReport") -> None:
        self.violations.extend(other.violations)
        self.errors.extend(other.errors)
        self.files_checked += other.files_checked


def _resolve_rules(rules: Sequence["LintRule"] | None) -> list["LintRule"]:
    if rules is not None:
        return list(rules)
    from repro.lint.rules import all_rules

    return all_rules()


def lint_source(
    source: str,
    virtual_path: str = "src/repro/example.py",
    *,
    rules: Sequence["LintRule"] | None = None,
) -> LintReport:
    """Lint one source string as if it lived at ``virtual_path``.

    This is the API fixture tests use; :func:`lint_paths` funnels every
    real file through it as well, so the two cannot diverge.
    """
    active = _resolve_rules(rules)
    report = LintReport(files_checked=1)
    try:
        tree = parse_cached(source, virtual_path)
    except SyntaxError as exc:
        report.errors.append(f"{virtual_path}:{exc.lineno or 0}: syntax error: {exc.msg}")
        return report

    known = frozenset(rule.rule_id for rule in active) | ANALYSIS_RULE_IDS
    per_line, whole_file, bad = _suppression_tables(source, known)
    for line_no, rule_id in bad:
        report.errors.append(
            f"{virtual_path}:{line_no}: bad-suppression: unknown rule id {rule_id!r}"
        )

    ctx = FileContext(virtual_path, source, tree)
    for rule in active:
        if rule.rule_id in whole_file or not rule.applies_to(ctx):
            continue
        for violation in rule.check(ctx):
            if violation.rule_id in per_line.get(violation.line, ()):
                continue
            report.violations.append(violation)
    report.violations.sort()
    return report


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: set[Path] = set()
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(candidate)
    return out


def lint_paths(
    paths: Sequence[str | Path],
    *,
    rules: Sequence["LintRule"] | None = None,
    root: Path | None = None,
) -> LintReport:
    """Lint every ``*.py`` file under ``paths`` and aggregate one report.

    ``root`` (default: the current directory) anchors the relative
    paths used both for display and for rule scoping.
    """
    active = _resolve_rules(rules)
    base = (root or Path.cwd()).resolve()
    report = LintReport()
    files = iter_python_files(paths)
    if not files:
        report.errors.append(f"no python files found under: {', '.join(map(str, paths))}")
        return report
    for file_path in files:
        resolved = file_path.resolve()
        try:
            display = str(resolved.relative_to(base))
        except ValueError:
            display = str(file_path)
        try:
            source = resolved.read_text(encoding="utf-8")
        except OSError as exc:
            report.errors.append(f"{display}: unreadable: {exc}")
            report.files_checked += 1
            continue
        report.extend_from_file(lint_source(source, display, rules=active))
    report.violations.sort()
    return report

"""Baseline (ratchet) filtering shared by ``repro lint`` and
``repro analyze``.

A *baseline* is simply a previous run's ``--format json`` report.  When
passed back via ``--baseline FILE``, every violation that already
appears in the baseline is filtered out of the current report, so a new
rule can land and gate *new* findings immediately while the legacy ones
are burned down over time.

Matching is deliberately line-number-insensitive: a violation matches a
baseline entry when ``(path, rule, message)`` agree.  Editing unrelated
lines above a known finding therefore never resurrects it, while a
*second* instance of the same finding in the same file is only excused
as many times as the baseline recorded it (multiset semantics).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.engine import LintReport, Violation

__all__ = ["BaselineError", "load_baseline", "apply_baseline", "write_baseline"]

#: Multiset of excused findings: ``(path, rule_id, message) -> count``.
BaselineKey = tuple[str, str, str]


class BaselineError(ValueError):
    """Raised when a baseline file is missing or malformed."""


def _norm_path(path: str) -> str:
    return path.replace("\\", "/")


def load_baseline(path: str | Path) -> dict[BaselineKey, int]:
    """Load a JSON report produced by ``--format json`` as a baseline.

    Raises :class:`BaselineError` on unreadable/malformed input so the
    CLI can surface it as an engine error (exit code 2) rather than
    silently gating against an empty baseline.
    """
    try:
        raw = Path(path).read_text(encoding="utf-8")
    except FileNotFoundError as exc:
        raise BaselineError(
            f"baseline file not found: {path} "
            f"(record the current findings with --write-baseline {path})"
        ) from exc
    except OSError as exc:
        raise BaselineError(f"baseline unreadable: {exc}") from exc
    try:
        doc = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline is not valid JSON: {exc}") from exc
    violations = doc.get("violations") if isinstance(doc, dict) else None
    if not isinstance(violations, list):
        raise BaselineError(
            "baseline must be a report object with a 'violations' list "
            "(produce one with --format json)"
        )
    counts: dict[BaselineKey, int] = {}
    for entry in violations:
        if not isinstance(entry, dict):
            raise BaselineError("baseline 'violations' entries must be objects")
        try:
            key = (
                _norm_path(str(entry["path"])),
                str(entry["rule"]),
                str(entry["message"]),
            )
        except KeyError as exc:
            raise BaselineError(f"baseline entry missing field: {exc}") from exc
        counts[key] = counts.get(key, 0) + 1
    return counts


def apply_baseline(report: LintReport, baseline: dict[BaselineKey, int]) -> int:
    """Filter baseline-excused violations out of ``report`` in place.

    Returns the number of violations that were filtered.  The baseline
    multiset is consumed per match, so the report keeps any findings
    beyond the recorded count.
    """
    remaining = dict(baseline)
    kept: list[Violation] = []
    filtered = 0
    for violation in report.violations:
        key = (_norm_path(violation.path), violation.rule_id, violation.message)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            filtered += 1
        else:
            kept.append(violation)
    report.violations[:] = kept
    return filtered


def write_baseline(report: LintReport, path: str | Path) -> None:
    """Write ``report`` as a ``--baseline``-loadable JSON file."""
    from repro.lint.output import format_json

    Path(path).write_text(format_json(report) + "\n", encoding="utf-8")

"""Human and JSON renderings of a :class:`~repro.lint.engine.LintReport`.

The JSON document is the machine contract consumed by CI annotations:

.. code-block:: json

    {
      "ok": false,
      "exit_code": 1,
      "files_checked": 12,
      "counts": {"RL003": 2},
      "violations": [
        {"path": "src/.../x.py", "line": 4, "col": 8,
         "rule": "RL003", "message": "float equality comparison; ..."}
      ],
      "errors": []
    }
"""

from __future__ import annotations

import json

from repro.lint.engine import LintReport

__all__ = ["format_human", "format_json"]


def format_human(report: LintReport) -> str:
    """Multi-line human-readable summary (violations, then the tally)."""
    lines: list[str] = [v.format() for v in report.violations]
    lines.extend(f"error: {err}" for err in report.errors)
    counts = report.counts_by_rule()
    if counts:
        tally = ", ".join(f"{rule_id}: {n}" for rule_id, n in counts.items())
        lines.append("")
        lines.append(
            f"{len(report.violations)} violation(s) in "
            f"{report.files_checked} file(s) — {tally}"
        )
    elif not report.errors:
        lines.append(f"clean: {report.files_checked} file(s), 0 violations")
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    """Stable machine-readable JSON (sorted keys, one document)."""
    doc = {
        "ok": report.ok,
        "exit_code": report.exit_code,
        "files_checked": report.files_checked,
        "counts": report.counts_by_rule(),
        "violations": [
            {
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "rule": v.rule_id,
                "message": v.message,
            }
            for v in report.violations
        ],
        "errors": list(report.errors),
    }
    return json.dumps(doc, indent=2, sort_keys=True)

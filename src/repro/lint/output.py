"""Human, JSON, and SARIF renderings of a
:class:`~repro.lint.engine.LintReport`.

The JSON document is the machine contract consumed by CI annotations
and the ``--baseline`` ratchet; the SARIF 2.1.0 document is what
``github/codeql-action/upload-sarif`` ingests so findings annotate PRs:

.. code-block:: json

    {
      "ok": false,
      "exit_code": 1,
      "files_checked": 12,
      "counts": {"RL003": 2},
      "violations": [
        {"path": "src/.../x.py", "line": 4, "col": 8,
         "rule": "RL003", "message": "float equality comparison; ..."}
      ],
      "errors": []
    }
"""

from __future__ import annotations

import json
from typing import Mapping

from repro.lint.engine import LintReport

__all__ = ["format_human", "format_json", "format_sarif", "render_report"]


def format_human(report: LintReport) -> str:
    """Multi-line human-readable summary (violations, then the tally)."""
    lines: list[str] = [v.format() for v in report.violations]
    lines.extend(f"error: {err}" for err in report.errors)
    counts = report.counts_by_rule()
    if counts:
        tally = ", ".join(f"{rule_id}: {n}" for rule_id, n in counts.items())
        lines.append("")
        lines.append(
            f"{len(report.violations)} violation(s) in "
            f"{report.files_checked} file(s) — {tally}"
        )
    elif not report.errors:
        lines.append(f"clean: {report.files_checked} file(s), 0 violations")
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    """Stable machine-readable JSON (sorted keys, one document)."""
    doc = {
        "ok": report.ok,
        "exit_code": report.exit_code,
        "files_checked": report.files_checked,
        "counts": report.counts_by_rule(),
        "violations": [
            {
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "rule": v.rule_id,
                "message": v.message,
            }
            for v in report.violations
        ],
        "errors": list(report.errors),
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def format_sarif(
    report: LintReport,
    *,
    tool_name: str = "reprolint",
    rule_descriptions: Mapping[str, str] | None = None,
) -> str:
    """SARIF 2.1.0 document (the ``upload-sarif`` CI contract).

    ``rule_descriptions`` maps rule ids to one-line summaries for the
    driver's rule table; ids appearing only in findings still get an
    entry (without a description) so every result resolves.
    """
    descriptions = dict(rule_descriptions or {})
    rule_ids = sorted(set(descriptions) | {v.rule_id for v in report.violations})
    rules = []
    for rule_id in rule_ids:
        entry: dict[str, object] = {"id": rule_id}
        summary = descriptions.get(rule_id)
        if summary is not None:
            entry["shortDescription"] = {"text": summary}
        rules.append(entry)
    results = [
        {
            "ruleId": v.rule_id,
            "level": "warning",
            "message": {"text": v.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": v.path.replace("\\", "/"),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": max(v.line, 1),
                            "startColumn": v.col + 1,
                        },
                    }
                }
            ],
        }
        for v in report.violations
    ]
    doc = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {"driver": {"name": tool_name, "rules": rules}},
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
                "invocations": [
                    {
                        "executionSuccessful": not report.errors,
                        "toolExecutionNotifications": [
                            {"level": "error", "message": {"text": err}}
                            for err in report.errors
                        ],
                    }
                ],
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def render_report(
    report: LintReport,
    fmt: str,
    *,
    tool_name: str = "reprolint",
    rule_descriptions: Mapping[str, str] | None = None,
) -> str:
    """Dispatch on ``--format`` value (``human``/``json``/``sarif``)."""
    if fmt == "json":
        return format_json(report)
    if fmt == "sarif":
        return format_sarif(
            report, tool_name=tool_name, rule_descriptions=rule_descriptions
        )
    return format_human(report)

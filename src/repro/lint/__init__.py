"""``reprolint`` — AST-based simulation-correctness checks.

The paper's efficiency metrics (over-allocation Ω, under-allocation Υ,
significant-event counts; Sec. V) are only comparable across runs when
every run is bit-for-bit deterministic and every resource quantity is
handled tolerance-safely.  This package machine-checks the coding rules
that protect those properties — eight domain rules, RL001-RL008 — over
``src/`` and ``tests/``:

========  ==============================================================
RL001     no unseeded / global-state RNG use in simulation code
RL002     no wall-clock reads inside ``core``/``emulator``/``predictors``
RL003     no float ``==``/``!=`` in simulation code
RL004     no mutable default arguments
RL005     no module-level mutable containers in ``core``
RL006     public functions in ``core``/``predictors``/``obs``/``lint``
          fully type-annotated
RL007     no set iteration where ordering can reach output
RL008     experiment modules route RNG through ``experiments.common``
========  ==============================================================

Use ``repro lint`` or ``python -m repro.lint`` from the command line;
``docs/static_analysis.md`` documents each rule, the suppression
pragmas, and the mypy strictness table that rides alongside.
"""

from __future__ import annotations

from repro.lint.baseline import apply_baseline, load_baseline
from repro.lint.engine import (
    FileContext,
    LintReport,
    Violation,
    lint_paths,
    lint_source,
)
from repro.lint.output import format_human, format_json
from repro.lint.rules import LintRule, all_rules, get_rules, rule_table

__all__ = [
    "FileContext",
    "LintReport",
    "LintRule",
    "Violation",
    "all_rules",
    "apply_baseline",
    "format_human",
    "format_json",
    "get_rules",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "rule_table",
]

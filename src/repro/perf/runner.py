"""The bench runner: instrumented execution of paper experiments.

For each selected experiment the runner

1. clears the shared experiment result cache (so counters reflect the
   full work of *this* experiment, independent of execution order),
2. installs an ambient probe (:mod:`repro.obs.ambient`) so every
   simulation, emulation, and predictor evaluation inside the unmodified
   experiment module reports its deterministic work counters and phase
   timings,
3. measures wall seconds (``perf_counter``), CPU seconds
   (``process_time``), and — unless disabled — peak heap usage via
   ``tracemalloc``,

and packages the result as an :class:`~repro.perf.schema.ExperimentBench`.
``tracemalloc`` roughly doubles wall time; timing-sensitive recordings
can pass ``mem=False`` and keep the counters exact (memory tracking
never affects them).

The per-experiment registries additionally merge into one suite-level
:class:`~repro.obs.registry.MetricsRegistry` for the Prometheus/JSONL
exporters (:mod:`repro.perf.export`).
"""

from __future__ import annotations

import importlib
import time
import tracemalloc
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Any, Callable, Iterable

from repro.cli import EXPERIMENTS
from repro.obs.ambient import probe
from repro.obs.registry import Histogram, MetricsRegistry
from repro.perf.env import capture_environment
from repro.perf.schema import BenchReport, ExperimentBench

__all__ = [
    "DEFAULT_SUITE",
    "MeasuredRun",
    "measure_callable",
    "resolve_names",
    "run_bench",
]

#: The full figure/table suite, in paper order.
DEFAULT_SUITE: tuple[str, ...] = tuple(EXPERIMENTS)


def resolve_names(names: Iterable[str] | None) -> list[str]:
    """Validate experiment names; ``None``/empty means the full suite.

    The result preserves paper order (the order of
    :data:`repro.cli.EXPERIMENTS`) regardless of input order, so bench
    reports are stably laid out and trivially diffable.
    """
    requested = list(names or ())
    if not requested:
        return list(DEFAULT_SUITE)
    unknown = sorted(set(requested) - set(EXPERIMENTS))
    if unknown:
        raise ValueError(
            f"unknown experiments: {', '.join(unknown)} "
            f"(choose from: {', '.join(EXPERIMENTS)})"
        )
    wanted = set(requested)
    return [name for name in EXPERIMENTS if name in wanted]


@dataclass(frozen=True)
class MeasuredRun:
    """One instrumented execution: the bench record, the callable's
    return value, and the registry that captured the run's metrics."""

    bench: ExperimentBench
    value: Any
    registry: MetricsRegistry


def _split_registry(
    registry: MetricsRegistry,
) -> tuple[dict[str, float], dict[str, dict[str, float]]]:
    """Separate scalar instruments from histogram summaries."""
    counters: dict[str, float] = {}
    distributions: dict[str, dict[str, float]] = {}
    for inst in registry:
        if isinstance(inst, Histogram):
            distributions[inst.name] = inst.summary()
        else:
            counters[inst.name] = inst.value
    return counters, distributions


def measure_callable(
    name: str, fn: Callable[[], Any], *, mem: bool = True
) -> MeasuredRun:
    """Run ``fn`` under an ambient probe and full instrumentation.

    ``mem=False`` skips ``tracemalloc`` (peak bytes recorded as 0) for
    timing-faithful runs.  The probe is installed for exactly the
    duration of the call, so nested measurements do not bleed into each
    other.
    """
    with probe() as p:
        if mem:
            tracemalloc.start()
        cpu0 = time.process_time()
        wall0 = time.perf_counter()
        try:
            value = fn()
        finally:
            wall = time.perf_counter() - wall0
            cpu = time.process_time() - cpu0
            if mem:
                peak = tracemalloc.get_traced_memory()[1]
                tracemalloc.stop()
            else:
                peak = 0
    counters, distributions = _split_registry(p.registry)
    bench = ExperimentBench(
        name=name,
        wall_seconds=wall,
        cpu_seconds=cpu,
        peak_tracemalloc_bytes=peak,
        counters=counters,
        distributions=distributions,
        phases=p.phases,
    )
    return MeasuredRun(bench=bench, value=value, registry=p.registry)


def run_bench(
    names: Iterable[str] | None = None,
    *,
    tag: str = "local",
    mem: bool = True,
    progress: Callable[[ExperimentBench], None] | None = None,
) -> tuple[BenchReport, MetricsRegistry]:
    """Execute experiments under instrumentation; build the BENCH report.

    Returns the report and the suite-level merged registry (for the
    exporters).  ``progress`` is invoked with each finished
    :class:`ExperimentBench` so the CLI can stream per-experiment lines.
    """
    from repro.experiments.common import clear_cache

    selected = resolve_names(names)
    env = capture_environment()
    merged = MetricsRegistry()
    experiments: dict[str, ExperimentBench] = {}
    for name in selected:
        # A cold cache per experiment keeps its counters self-contained:
        # shared sub-results (emulator datasets, baseline simulations)
        # are re-computed and therefore re-counted, so the recorded work
        # does not depend on which experiments ran before this one.
        clear_cache()
        module = importlib.import_module(EXPERIMENTS[name])
        run = measure_callable(name, module.run, mem=mem)
        merged.merge_from(run.registry)
        experiments[name] = run.bench
        if progress is not None:
            progress(run.bench)
    report = BenchReport(
        tag=tag,
        created=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        env=env,
        experiments=experiments,
    )
    return report, merged

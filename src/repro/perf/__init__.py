"""Performance telemetry: the ``repro bench`` harness.

This package records, serializes, and compares the *cost* of the
reproduction — complementing :mod:`repro.obs`, which records what the
simulation *does*.  The pieces:

* :mod:`repro.perf.env` — environment fingerprinting (machine +
  workload configuration);
* :mod:`repro.perf.schema` — the schema-versioned ``BENCH_<tag>.json``
  document model;
* :mod:`repro.perf.runner` — instrumented execution of the paper
  experiments (wall/CPU time, peak ``tracemalloc``, ambient work
  counters, per-phase breakdowns);
* :mod:`repro.perf.compare` — the regression gate: exact-match for
  deterministic counters, thresholded for timing/memory;
* :mod:`repro.perf.export` — Prometheus-text and JSONL exporters for
  :class:`~repro.obs.registry.MetricsRegistry` snapshots.

Like ``repro.obs``, this package is a sanctioned impurity boundary
(RA001/RL002): it reads clocks, the process environment, and the git
revision by design, and nothing in it feeds back into simulation
behaviour.
"""

from repro.perf.compare import (
    DEFAULT_FAIL_ON,
    ComparisonResult,
    Finding,
    Thresholds,
    compare_reports,
    render_comparison,
)
from repro.perf.env import EnvironmentFingerprint, capture_environment
from repro.perf.export import metrics_jsonl, prometheus_text
from repro.perf.runner import (
    DEFAULT_SUITE,
    MeasuredRun,
    measure_callable,
    resolve_names,
    run_bench,
)
from repro.perf.schema import SCHEMA_VERSION, BenchReport, ExperimentBench, SchemaError

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_FAIL_ON",
    "DEFAULT_SUITE",
    "BenchReport",
    "ComparisonResult",
    "EnvironmentFingerprint",
    "ExperimentBench",
    "Finding",
    "MeasuredRun",
    "SchemaError",
    "Thresholds",
    "capture_environment",
    "compare_reports",
    "measure_callable",
    "metrics_jsonl",
    "prometheus_text",
    "render_comparison",
    "resolve_names",
    "run_bench",
]

"""The ``BENCH_<tag>.json`` document model.

A bench report is the unit of the performance trajectory: one file per
recorded run, schema-versioned so future fields can be added without
breaking old baselines, containing

* an :class:`~repro.perf.env.EnvironmentFingerprint` (machine +
  workload configuration),
* one :class:`ExperimentBench` per executed experiment: wall and CPU
  seconds, peak ``tracemalloc`` bytes, the per-phase
  :class:`~repro.obs.timing.PhaseSnapshot` breakdown, the deterministic
  work counters (ticks, leases, offer comparisons, predictor
  evaluations, ...), and histogram distribution summaries.

Counters are *exact* quantities — the simulation is deterministic given
its seed, so two runs of the same revision at the same workload must
produce byte-identical counter maps.  ``repro bench --compare`` exploits
this: timing drift is judged with relative thresholds, counter drift
with equality.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.obs.timing import PhaseSnapshot
from repro.perf.env import EnvironmentFingerprint

__all__ = ["SCHEMA_VERSION", "SchemaError", "ExperimentBench", "BenchReport"]

#: Version of the on-disk document layout.  Bump on breaking changes;
#: readers refuse documents from a *newer* major than they understand.
SCHEMA_VERSION = 1


class SchemaError(ValueError):
    """A BENCH document that cannot be interpreted."""


def _require(data: Mapping[str, Any], key: str, context: str) -> Any:
    if key not in data:
        raise SchemaError(f"{context}: missing required field {key!r}")
    return data[key]


@dataclass(frozen=True)
class ExperimentBench:
    """Measured cost and deterministic work of one experiment run.

    ``counters`` holds every scalar instrument (counters *and* gauges)
    from the run's registry; ``distributions`` holds the histogram
    summaries (count/sum/mean/min/max/stddev/p50/p90/p99).  ``phases``
    is the merged wall-clock attribution across every simulation the
    experiment performed.
    """

    name: str
    wall_seconds: float
    cpu_seconds: float
    peak_tracemalloc_bytes: int
    counters: dict[str, float] = field(default_factory=dict)
    distributions: dict[str, dict[str, float]] = field(default_factory=dict)
    phases: PhaseSnapshot = field(default_factory=PhaseSnapshot)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping with sorted metric keys for stable diffs."""
        return {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "peak_tracemalloc_bytes": self.peak_tracemalloc_bytes,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "distributions": {
                k: self.distributions[k] for k in sorted(self.distributions)
            },
            "phases": self.phases.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentBench":
        name = str(_require(data, "name", "experiment"))
        ctx = f"experiment {name!r}"
        return cls(
            name=name,
            wall_seconds=float(_require(data, "wall_seconds", ctx)),
            cpu_seconds=float(_require(data, "cpu_seconds", ctx)),
            peak_tracemalloc_bytes=int(data.get("peak_tracemalloc_bytes", 0)),
            counters={
                str(k): float(v) for k, v in dict(data.get("counters", {})).items()
            },
            distributions={
                str(k): {str(f): float(x) for f, x in dict(v).items()}
                for k, v in dict(data.get("distributions", {})).items()
            },
            phases=PhaseSnapshot.from_dict(data.get("phases", {})),
        )


@dataclass(frozen=True)
class BenchReport:
    """One recorded bench run: environment plus per-experiment results.

    ``experiments`` preserves execution order (paper order), which the
    comparison and rendering layers rely on for stable output.
    """

    tag: str
    created: str
    env: EnvironmentFingerprint
    experiments: dict[str, ExperimentBench] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    @property
    def total_wall_seconds(self) -> float:
        """Suite wall time (sum over experiments)."""
        return sum(e.wall_seconds for e in self.experiments.values())

    def merged_phases(self) -> PhaseSnapshot:
        """Suite-level phase attribution (sum over experiments)."""
        out = PhaseSnapshot()
        for exp in self.experiments.values():
            out = out + exp.phases
        return out

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping."""
        return {
            "schema_version": self.schema_version,
            "tag": self.tag,
            "created": self.created,
            "environment": self.env.to_dict(),
            "experiments": [e.to_dict() for e in self.experiments.values()],
        }

    def to_json(self) -> str:
        """Pretty, trailing-newline JSON (the committed-artifact format)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n"

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BenchReport":
        version = int(_require(data, "schema_version", "bench report"))
        if version > SCHEMA_VERSION:
            raise SchemaError(
                f"bench report has schema_version {version}; this reader "
                f"understands up to {SCHEMA_VERSION} — upgrade the repo"
            )
        raw_experiments = _require(data, "experiments", "bench report")
        if not isinstance(raw_experiments, list):
            raise SchemaError("bench report: 'experiments' must be a list")
        experiments: dict[str, ExperimentBench] = {}
        for entry in raw_experiments:
            exp = ExperimentBench.from_dict(entry)
            if exp.name in experiments:
                raise SchemaError(f"bench report: duplicate experiment {exp.name!r}")
            experiments[exp.name] = exp
        return cls(
            tag=str(_require(data, "tag", "bench report")),
            created=str(data.get("created", "unknown")),
            env=EnvironmentFingerprint.from_dict(
                _require(data, "environment", "bench report")
            ),
            experiments=experiments,
            schema_version=version,
        )

    @classmethod
    def from_json(cls, text: str) -> "BenchReport":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"bench report is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise SchemaError("bench report: top level must be a JSON object")
        return cls.from_dict(data)

    def save(self, path: str | Path) -> Path:
        """Write the report; returns the resolved path."""
        target = Path(path)
        target.write_text(self.to_json(), encoding="utf-8")
        return target

    @classmethod
    def load(cls, path: str | Path) -> "BenchReport":
        """Read and validate a report file."""
        source = Path(path)
        if not source.exists():
            raise SchemaError(f"bench report not found: {source}")
        return cls.from_json(source.read_text(encoding="utf-8"))

"""Regression comparison between two BENCH reports.

The comparison exploits the repo's central determinism property: given
the same workload configuration (eval/warmup days, base seed), the
simulation performs *exactly* the same work, so the deterministic
counters (ticks, leases, offer comparisons, predictor evaluations, ...)
must match **exactly** between baseline and current.  Any counter drift
means the code now does different work — an algorithmic change, wanted
or not — and is reported separately from timing drift, which is judged
with relative thresholds because wall time is machine-noisy.

Verdict model
-------------
Each discrepancy becomes a :class:`Finding` with a *kind*:

``config``
    Workload fingerprints differ — counters are incomparable.
``counter``
    A deterministic counter changed value (or disappeared).
``time``
    Wall time moved beyond the relative threshold *and* the absolute
    floor (tiny experiments are all noise).
``memory``
    Peak ``tracemalloc`` bytes moved beyond its thresholds.
``missing`` / ``new``
    Experiment present on one side only.
``machine``
    Informational: the machines differ, contextualizing time deltas.

Severity is policy, not fact: regressions whose kind is in the
``fail_on`` set become ``fail`` (non-zero exit), the rest ``warn``.
Improvements and annotations are ``info``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable

from repro.obs.trace import PathDelta, TraceRecording, diff_recordings
from repro.perf.schema import BenchReport, ExperimentBench

__all__ = [
    "DEFAULT_FAIL_ON",
    "Thresholds",
    "Finding",
    "ComparisonResult",
    "compare_reports",
    "render_comparison",
    "render_span_attribution",
    "worst_phase_shift",
]

#: Kinds that fail the gate by default.  ``memory`` is warn-only: peak
#: heap depends on allocator/interpreter details beyond our control.
DEFAULT_FAIL_ON: frozenset[str] = frozenset({"config", "counter", "time", "missing"})

_VALID_FAIL_KINDS = frozenset({"config", "counter", "time", "memory", "missing"})


@dataclass(frozen=True)
class Thresholds:
    """Per-metric tolerance for the noisy (non-deterministic) metrics.

    ``time_rel`` is the relative wall-time change that counts as a
    regression, but only when the absolute delta also exceeds
    ``time_abs_floor_seconds`` — a 2 ms experiment doubling is noise,
    not signal.  Memory gets wider bands for the same reason.
    Counters take no thresholds: they are exact by construction.
    """

    time_rel: float = 0.25
    time_abs_floor_seconds: float = 0.05
    mem_rel: float = 0.50
    mem_abs_floor_bytes: int = 1 << 20

    def __post_init__(self) -> None:
        if self.time_rel <= 0 or self.mem_rel <= 0:
            raise ValueError("relative thresholds must be positive")
        if self.time_abs_floor_seconds < 0 or self.mem_abs_floor_bytes < 0:
            raise ValueError("absolute floors must be non-negative")


@dataclass(frozen=True)
class Finding:
    """One discrepancy between baseline and current."""

    severity: str  # "fail" | "warn" | "info"
    kind: str  # "config" | "counter" | "time" | "memory" | "missing" | "new" | "machine"
    experiment: str | None
    metric: str
    baseline: float | str | None
    current: float | str | None
    message: str

    def to_dict(self) -> dict[str, object]:
        return {
            "severity": self.severity,
            "kind": self.kind,
            "experiment": self.experiment,
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "message": self.message,
        }


@dataclass
class ComparisonResult:
    """The full verdict of one baseline/current comparison."""

    baseline_tag: str
    current_tag: str
    experiments_compared: int = 0
    findings: list[Finding] = field(default_factory=list)

    @property
    def failures(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "fail"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "warn"]

    @property
    def ok(self) -> bool:
        """Whether the gate passes (no ``fail`` findings)."""
        return not self.failures

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def to_dict(self) -> dict[str, object]:
        return {
            "baseline_tag": self.baseline_tag,
            "current_tag": self.current_tag,
            "experiments_compared": self.experiments_compared,
            "ok": self.ok,
            "failures": len(self.failures),
            "warnings": len(self.warnings),
            "findings": [f.to_dict() for f in self.findings],
        }


def _severity(kind: str, fail_on: frozenset[str]) -> str:
    return "fail" if kind in fail_on else "warn"


def _fmt_seconds(value: float) -> str:
    return f"{value:.3f}s"


def _fmt_bytes(value: float) -> str:
    if value >= 1 << 20:
        return f"{value / (1 << 20):.1f}MiB"
    if value >= 1 << 10:
        return f"{value / (1 << 10):.1f}KiB"
    return f"{value:.0f}B"


def worst_phase_shift(
    base: ExperimentBench, cur: ExperimentBench
) -> tuple[str, float] | None:
    """The phase whose wall time moved the most, with its delta.

    ``None`` when the experiments record no phases or nothing moved —
    the machine-readable core of the per-phase attribution string, and
    the hook :func:`render_span_attribution` deepens to span paths.
    """
    base_s = base.phases.seconds
    cur_s = cur.phases.seconds
    deltas = {
        name: cur_s.get(name, 0.0) - base_s.get(name, 0.0)
        for name in sorted(set(base_s) | set(cur_s))
    }
    if not deltas:
        return None
    name, delta = max(deltas.items(), key=lambda kv: abs(kv[1]))
    if abs(delta) < 1e-9:
        return None
    return name, delta


def _top_phase_shift(base: ExperimentBench, cur: ExperimentBench) -> str:
    """Attribute a time delta to the phase that moved the most."""
    shift = worst_phase_shift(base, cur)
    if shift is None:
        return ""
    name, delta = shift
    direction = "grew" if delta > 0 else "shrank"
    return f" (largest phase shift: {name!r} {direction} by {abs(delta):.3f}s)"


def _compare_experiment(
    base: ExperimentBench,
    cur: ExperimentBench,
    thresholds: Thresholds,
    fail_on: frozenset[str],
    counters_comparable: bool,
) -> Iterable[Finding]:
    name = base.name
    # --- deterministic counters: exact match required -----------------
    if counters_comparable:
        for metric in sorted(set(base.counters) | set(cur.counters)):
            b = base.counters.get(metric)
            c = cur.counters.get(metric)
            if b is None:
                yield Finding(
                    "info", "counter", name, metric, None, c,
                    f"{name}: new counter {metric!r}={c:g} (added instrumentation)",
                )
            elif c is None:
                yield Finding(
                    _severity("counter", fail_on), "counter", name, metric, b, None,
                    f"{name}: counter {metric!r} disappeared (baseline {b:g})",
                )
            elif b != c:
                yield Finding(
                    _severity("counter", fail_on), "counter", name, metric, b, c,
                    f"{name}: counter drift {metric!r}: {b:g} -> {c:g} "
                    f"({c - b:+g}) — the simulation now does different work",
                )
    # --- wall time: relative threshold over an absolute floor ---------
    dt = cur.wall_seconds - base.wall_seconds
    if base.wall_seconds > 0 and abs(dt) >= thresholds.time_abs_floor_seconds:
        rel = dt / base.wall_seconds
        if rel > thresholds.time_rel:
            yield Finding(
                _severity("time", fail_on), "time", name, "wall_seconds",
                base.wall_seconds, cur.wall_seconds,
                f"{name}: {rel * 100:+.1f}% slower "
                f"({_fmt_seconds(base.wall_seconds)} -> "
                f"{_fmt_seconds(cur.wall_seconds)})"
                + _top_phase_shift(base, cur),
            )
        elif rel < -thresholds.time_rel:
            yield Finding(
                "info", "time", name, "wall_seconds",
                base.wall_seconds, cur.wall_seconds,
                f"{name}: {-rel * 100:.1f}% faster "
                f"({_fmt_seconds(base.wall_seconds)} -> "
                f"{_fmt_seconds(cur.wall_seconds)})",
            )
    # --- peak memory --------------------------------------------------
    db = cur.peak_tracemalloc_bytes - base.peak_tracemalloc_bytes
    if (
        base.peak_tracemalloc_bytes > 0
        and cur.peak_tracemalloc_bytes > 0
        and abs(db) >= thresholds.mem_abs_floor_bytes
    ):
        rel = db / base.peak_tracemalloc_bytes
        if rel > thresholds.mem_rel:
            yield Finding(
                _severity("memory", fail_on), "memory", name,
                "peak_tracemalloc_bytes",
                base.peak_tracemalloc_bytes, cur.peak_tracemalloc_bytes,
                f"{name}: peak heap {rel * 100:+.1f}% "
                f"({_fmt_bytes(base.peak_tracemalloc_bytes)} -> "
                f"{_fmt_bytes(cur.peak_tracemalloc_bytes)})",
            )
        elif rel < -thresholds.mem_rel:
            yield Finding(
                "info", "memory", name, "peak_tracemalloc_bytes",
                base.peak_tracemalloc_bytes, cur.peak_tracemalloc_bytes,
                f"{name}: peak heap {-rel * 100:.1f}% lower "
                f"({_fmt_bytes(base.peak_tracemalloc_bytes)} -> "
                f"{_fmt_bytes(cur.peak_tracemalloc_bytes)})",
            )


def compare_reports(
    baseline: BenchReport,
    current: BenchReport,
    *,
    thresholds: Thresholds | None = None,
    fail_on: Iterable[str] = DEFAULT_FAIL_ON,
) -> ComparisonResult:
    """Compare ``current`` against ``baseline``; produce the verdict.

    ``fail_on`` selects which regression kinds gate (see
    :data:`DEFAULT_FAIL_ON`); unknown kinds raise ``ValueError``.
    A workload-configuration mismatch suppresses counter comparison
    (the counts are incomparable) but still reports timing deltas as
    warnings for the curious.
    """
    if thresholds is None:
        thresholds = Thresholds()
    gate = frozenset(fail_on)
    unknown = gate - _VALID_FAIL_KINDS
    if unknown:
        raise ValueError(
            f"unknown fail_on kinds: {sorted(unknown)} "
            f"(valid: {sorted(_VALID_FAIL_KINDS)})"
        )
    result = ComparisonResult(baseline_tag=baseline.tag, current_tag=current.tag)

    workload = baseline.env.workload_mismatches(current.env)
    for field_name, b, c in workload:
        result.findings.append(
            Finding(
                _severity("config", gate), "config", None, field_name, b, c,
                f"workload config differs: {field_name} {b!r} vs {c!r} — "
                f"deterministic counters are not comparable",
            )
        )
    for field_name, b, c in baseline.env.machine_mismatches(current.env):
        result.findings.append(
            Finding(
                "info", "machine", None, field_name, b, c,
                f"machine differs: {field_name} {b!r} vs {c!r} "
                f"(timing deltas may reflect hardware, not code)",
            )
        )

    counters_comparable = not workload
    for name, base_exp in baseline.experiments.items():
        cur_exp = current.experiments.get(name)
        if cur_exp is None:
            result.findings.append(
                Finding(
                    _severity("missing", gate), "missing", name, "experiment",
                    "present", None,
                    f"{name}: in baseline but not in current run",
                )
            )
            continue
        result.experiments_compared += 1
        result.findings.extend(
            _compare_experiment(base_exp, cur_exp, thresholds, gate, counters_comparable)
        )
    for name in current.experiments:
        if name not in baseline.experiments:
            result.findings.append(
                Finding(
                    "info", "new", name, "experiment", None, "present",
                    f"{name}: new experiment (not in baseline)",
                )
            )
    return result


_SEVERITY_ORDER = {"fail": 0, "warn": 1, "info": 2}
_MD_BADGE = {"fail": "❌", "warn": "⚠️", "info": "ℹ️"}


def _sorted_findings(result: ComparisonResult) -> list[Finding]:
    return sorted(
        result.findings,
        key=lambda f: (_SEVERITY_ORDER[f.severity], f.experiment or "", f.metric),
    )


def _render_human(result: ComparisonResult) -> str:
    lines = [
        f"bench compare: {result.current_tag!r} vs baseline {result.baseline_tag!r}",
        f"  experiments compared: {result.experiments_compared}",
    ]
    if not result.findings:
        lines.append("  no differences beyond thresholds")
    for f in _sorted_findings(result):
        lines.append(f"  [{f.severity.upper():4s}] {f.message}")
    verdict = "PASS" if result.ok else f"FAIL ({len(result.failures)} regression(s))"
    lines.append(f"verdict: {verdict}")
    return "\n".join(lines)


def _render_markdown(result: ComparisonResult) -> str:
    badge = "✅ PASS" if result.ok else f"❌ FAIL — {len(result.failures)} regression(s)"
    lines = [
        f"## Bench comparison: `{result.current_tag}` vs `{result.baseline_tag}`",
        "",
        f"**{badge}** · {result.experiments_compared} experiment(s) compared, "
        f"{len(result.warnings)} warning(s)",
        "",
    ]
    if result.findings:
        lines += [
            "| | Kind | Experiment | Metric | Baseline | Current |",
            "|---|---|---|---|---|---|",
        ]
        for f in _sorted_findings(result):
            lines.append(
                f"| {_MD_BADGE[f.severity]} | {f.kind} | {f.experiment or '—'} "
                f"| `{f.metric}` | {f.baseline if f.baseline is not None else '—'} "
                f"| {f.current if f.current is not None else '—'} |"
            )
        lines.append("")
        lines.append("<details><summary>Details</summary>")
        lines.append("")
        for f in _sorted_findings(result):
            lines.append(f"- **{f.severity}**: {f.message}")
        lines.append("")
        lines.append("</details>")
    else:
        lines.append("No differences beyond thresholds.")
    return "\n".join(lines)


def render_comparison(result: ComparisonResult, fmt: str = "human") -> str:
    """Render a verdict as ``human``, ``json``, or ``markdown`` text."""
    if fmt == "human":
        return _render_human(result)
    if fmt == "json":
        return json.dumps(result.to_dict(), indent=2)
    if fmt == "markdown":
        return _render_markdown(result)
    raise ValueError(f"unknown comparison format: {fmt!r}")


#: Which span-path components realize each coarse timing phase.  Phases
#: not listed match span components of the same name (warmup, install,
#: reconcile, score, ...).
_PHASE_SPAN_COMPONENTS: dict[str, tuple[str, ...]] = {
    "emulate": ("emulate.sample", "emulate.step", "engine.switch", "engine.move"),
    "interactions": ("emulate.pairs",),
    "reconcile": ("reconcile", "predict", "match"),
    "predictor_fit": ("predict.fit",),
    "predictor_series": ("predict.series",),
    "predictor_timing": ("predict.timing",),
}


def _phase_delta(phase: str, deltas: list[PathDelta]) -> PathDelta | None:
    """The span-path delta that best explains a phase's movement."""
    components = set(_PHASE_SPAN_COMPONENTS.get(phase, (phase,)))
    candidates = [
        d for d in deltas if components.intersection(d.path.split("/"))
    ]
    if not candidates:
        return None
    # Largest movement wins; deeper paths break ties (more specific).
    return max(
        candidates, key=lambda d: (abs(d.delta_seconds), d.path.count("/"))
    )


def render_span_attribution(
    baseline: BenchReport,
    current: BenchReport,
    base_rec: TraceRecording,
    cur_rec: TraceRecording,
    *,
    top: int = 5,
) -> str:
    """Markdown linking each worst-shifted phase to its span path.

    Deepens :func:`worst_phase_shift`'s per-phase attribution with the
    per-span-path deltas of two ``repro trace`` recordings: for every
    experiment both reports ran, the worst-moving phase is resolved to
    the span path that moved with it, plus the ``top`` overall span-path
    deltas for context.  Returns ``""`` when nothing moved.
    """
    deltas = [
        d
        for d in diff_recordings(base_rec, cur_rec)
        if abs(d.delta_seconds) >= 1e-9
    ]
    attributions: list[str] = []
    for name in sorted(set(baseline.experiments) & set(current.experiments)):
        shift = worst_phase_shift(
            baseline.experiments[name], current.experiments[name]
        )
        if shift is None:
            continue
        phase, phase_delta = shift
        line = (
            f"- `{name}`: worst phase `{phase}` ({phase_delta:+.3f}s)"
        )
        span_delta = _phase_delta(phase, deltas)
        if span_delta is not None:
            line += (
                f" → span path `{span_delta.path}` "
                f"({span_delta.delta_seconds:+.4f}s over "
                f"{span_delta.base_count}→{span_delta.cur_count} calls)"
            )
        else:
            line += " (no recorded span path moved with it)"
        attributions.append(line)
    if not attributions and not deltas:
        return ""
    lines = ["### Trace span attribution", ""]
    lines += attributions or ["No per-experiment phase shifts to attribute."]
    if deltas:
        lines += [
            "",
            f"Top span-path deltas (`{cur_rec.name}` vs `{base_rec.name}`):",
            "",
            "| Δ seconds | baseline | current | calls (b→c) | span path |",
            "|---:|---:|---:|---|---|",
        ]
        for d in deltas[:top]:
            lines.append(
                f"| {d.delta_seconds:+.4f} | {d.base_seconds:.4f} "
                f"| {d.cur_seconds:.4f} | {d.base_count}→{d.cur_count} "
                f"| `{d.path}` |"
            )
    return "\n".join(lines)

"""Exporters: MetricsRegistry snapshots as Prometheus text and JSONL.

Two wire formats for pushing the suite-level registry beyond the repo:

* :func:`prometheus_text` — the Prometheus text exposition format
  (version 0.0.4): dotted metric names flatten to underscores,
  counters/gauges become single samples, histograms become *summaries*
  with ``quantile`` labels plus ``_sum``/``_count`` series — matching
  the p50/p90/p99 sketch the registry actually keeps (no cumulative
  ``le`` buckets are invented).
* :func:`metrics_jsonl` — one self-describing JSON object per line per
  instrument, for ad-hoc ``jq`` analysis and log-pipeline ingestion.

Both are pure functions of the registry: deterministic output for a
deterministic run, so exporter text is golden-testable.
"""

from __future__ import annotations

import json
import re
from typing import Iterator

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["prometheus_name", "prometheus_text", "metrics_jsonl"]

_INVALID_PROM_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_QUANTILES = (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"))


def prometheus_name(name: str) -> str:
    """Flatten a dotted metric name to a legal Prometheus name.

    ``matching.rejected.latency`` -> ``repro_matching_rejected_latency``
    (the ``repro_`` prefix namespaces the series).
    """
    flat = _INVALID_PROM_CHARS.sub("_", name)
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return f"repro_{flat}"


def _fmt(value: float) -> str:
    # Prometheus accepts Go-style floats; repr keeps full precision
    # while integers render without a trailing .0 noise via %g-ish form.
    # Coerce first: numpy scalars repr as ``np.float64(...)``, which no
    # scrape parser accepts.
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _prom_lines(registry: MetricsRegistry) -> Iterator[str]:
    for inst in registry:
        name = prometheus_name(inst.name)
        if isinstance(inst, Counter):
            yield f"# TYPE {name} counter"
            yield f"{name} {_fmt(inst.value)}"
        elif isinstance(inst, Gauge):
            yield f"# TYPE {name} gauge"
            yield f"{name} {_fmt(inst.value)}"
        elif isinstance(inst, Histogram):
            summary = inst.summary()
            yield f"# TYPE {name} summary"
            for label, key in _QUANTILES:
                yield f'{name}{{quantile="{label}"}} {_fmt(summary[key])}'
            yield f"{name}_sum {_fmt(summary['sum'])}"
            yield f"{name}_count {_fmt(summary['count'])}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (0.0.4)."""
    lines = list(_prom_lines(registry))
    return "\n".join(lines) + ("\n" if lines else "")


def _jsonl_records(registry: MetricsRegistry) -> Iterator[dict[str, object]]:
    for inst in registry:
        if isinstance(inst, Histogram):
            yield {"name": inst.name, "kind": "histogram", **inst.summary()}
        elif isinstance(inst, Counter):
            yield {"name": inst.name, "kind": "counter", "value": inst.value}
        else:
            yield {"name": inst.name, "kind": "gauge", "value": inst.value}


def metrics_jsonl(registry: MetricsRegistry) -> str:
    """One JSON object per line per instrument (sorted by name)."""
    lines = [json.dumps(rec, sort_keys=False) for rec in _jsonl_records(registry)]
    return "\n".join(lines) + ("\n" if lines else "")

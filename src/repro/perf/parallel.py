"""Multiprocess experiment fan-out: ``repro experiments --parallel N``.

ROADMAP item 2 scales the simulation across worker processes; this is
the first, deliberately boring consumer of that boundary.  Whole
*experiments* are the unit of distribution — each is an independent
deterministic computation with its own seeded RNG stream
(:func:`repro.experiments.common.experiment_rng`), so fanning them
across processes cannot change any result or any deterministic work
counter.  ``BENCH_parallel.json`` vs ``BENCH_vec.json`` in CI holds the
runner to that: counters must be *identical* regardless of worker
count.

Design constraints, in the order they bit:

* **spawn, not fork** — fork would copy the parent's warm caches and
  any module state into workers, making results depend on what the
  parent had already computed; spawn gives every worker the same cold
  interpreter a serial run starts from (and matches Windows/macOS).
* **cold cache per experiment** — a pool worker outlives one task, so
  the worker clears the shared experiment cache before each run, same
  as the serial bench loop; otherwise counters would depend on which
  experiments shared a worker.
* **results travel by return value** — the worker returns its
  ``(ExperimentBench, MetricsRegistry)`` and the parent merges via
  :meth:`~repro.obs.registry.MetricsRegistry.merge_from`; nothing is
  communicated through module globals (RA012 checks this, and the
  payload types, at every fan-out site).
* **order-preserving merge** — ``imap`` yields results in submission
  order no matter which worker finishes first, so the merged registry
  and the report layout are bit-stable across worker counts.
"""

from __future__ import annotations

import importlib
import multiprocessing
from datetime import datetime, timezone
from typing import Any, Callable, Iterable

from repro.cli import EXPERIMENTS
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import (
    SpanRecorder,
    TraceRecording,
    current_recorder,
    export_context,
    recording,
)
from repro.perf.env import capture_environment
from repro.perf.runner import measure_callable, resolve_names
from repro.perf.schema import BenchReport, ExperimentBench

__all__ = ["run_parallel", "spawn_map"]


def spawn_map(
    fn: Callable[..., object],
    items: Iterable[object],
    *,
    workers: int,
) -> list[object]:
    """Order-preserving map over spawn-pool workers.

    The generic fan-out helper behind ``repro analyze --jobs N``: the
    same design constraints as :func:`run_parallel` (spawn semantics so
    workers start cold, ``imap`` so results come back in submission
    order, results travel by return value only), packaged for any
    module-level picklable ``fn`` — the payload and callable cross a
    multiprocessing boundary, so every call site is RA012-checked.

    ``workers == 1`` (or a single item) short-circuits to a plain
    in-process loop, which makes a caller's serial and parallel outputs
    identical by construction.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    todo = list(items)
    if workers == 1 or len(todo) <= 1:
        return [fn(item) for item in todo]
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(processes=min(workers, len(todo))) as pool:
        # Chunked dispatch amortises pickling; imap keeps submission
        # order no matter which worker finishes first.
        chunk = max(1, len(todo) // (workers * 4))
        return list(pool.imap(fn, todo, chunksize=chunk))


def _bench_worker(
    payload: tuple[str, str, bool, "dict[str, Any] | None"],
) -> tuple[ExperimentBench, MetricsRegistry, "dict[str, Any] | None"]:
    """Run one experiment in a worker process (RA012-checked payload).

    The payload is ``(experiment_name, module_path, mem, trace_ctx)`` —
    the parent resolves the registry so the worker never consults
    shared state, and the return value carries everything back.  When
    a trace context rides along (the parent bench ran under a
    :class:`~repro.obs.trace.SpanRecorder`), the worker records its own
    spans under an adopted copy of that context and returns the
    recording dict for the parent to merge; ``None`` context means no
    tracing and no recording — byte-for-byte the pre-trace behaviour.
    """
    from repro.experiments.common import clear_cache

    name, module_path, mem, trace_ctx = payload
    # Same hygiene as the serial bench loop: a pool worker may run
    # several experiments, and each must start from a cold cache so its
    # counters are self-contained.
    clear_cache()
    module = importlib.import_module(module_path)
    if trace_ctx is None:
        run = measure_callable(name, module.run, mem=mem)
        return run.bench, run.registry, None
    recorder = SpanRecorder(name, trace_id=str(trace_ctx.get("trace_id", "")))
    recorder.adopt(trace_ctx)
    with recording(recorder):
        run = measure_callable(name, module.run, mem=mem)
    trace = recorder.finish(wall_seconds=run.bench.wall_seconds)
    return run.bench, run.registry, trace.to_dict()


def run_parallel(
    names: Iterable[str] | None = None,
    *,
    tag: str = "parallel",
    workers: int = 2,
    mem: bool = True,
    progress: Callable[[ExperimentBench], None] | None = None,
) -> tuple[BenchReport, MetricsRegistry]:
    """Fan experiments across ``workers`` processes; build the report.

    Drop-in for :func:`repro.perf.runner.run_bench`: same report schema,
    same merged suite-level registry, same progress hook — only the
    execution strategy differs, and (by the determinism argument in the
    module docstring) none of the recorded counters may.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    selected = resolve_names(names)
    env = capture_environment()
    merged = MetricsRegistry()
    experiments: dict[str, ExperimentBench] = {}
    # When the parent runs under a recorder, every worker inherits its
    # context through the payload and returns a recording; each worker's
    # spans land on their own track (tid = submission index + 1).
    rec = current_recorder()
    trace_ctx = export_context()
    payloads = [(name, EXPERIMENTS[name], mem, trace_ctx) for name in selected]
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(processes=workers) as pool:
        for index, (bench, registry, trace) in enumerate(
            pool.imap(_bench_worker, payloads)
        ):
            merged.merge_from(registry)
            experiments[bench.name] = bench
            if rec is not None and trace is not None:
                rec.merge_recording(
                    TraceRecording.from_dict(trace), tid=index + 1
                )
            if progress is not None:
                progress(bench)
    report = BenchReport(
        tag=tag,
        created=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        env=env,
        experiments=experiments,
    )
    return report, merged

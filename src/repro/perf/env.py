"""Environment fingerprinting for BENCH reports.

A recorded wall-clock number is meaningless without knowing *what ran
it*: interpreter, platform, CPU budget, library versions, source
revision, and the evaluation-window configuration that scales every
experiment's work.  :func:`capture_environment` gathers all of that
into an :class:`EnvironmentFingerprint`; ``repro bench --compare``
refuses to equate counter trajectories whose workload configuration
(eval/warmup days, base seed) differs, and annotates — but does not
fail on — machine differences.

This module reads the wall clock, the environment, and the git
repository by design: ``repro.perf`` sits outside the deterministic
simulation packages, on the sanctioned observability boundary alongside
``repro.obs`` (see ``docs/static_analysis.md``).
"""

from __future__ import annotations

import os
import platform
import subprocess
from dataclasses import asdict, dataclass
from typing import Any, Mapping

__all__ = ["EnvironmentFingerprint", "capture_environment"]


@dataclass(frozen=True)
class EnvironmentFingerprint:
    """Everything needed to interpret a recorded benchmark number.

    ``eval_days`` / ``warmup_days`` / ``base_seed`` define the *work
    amount* (they scale each experiment's trace); the rest describes
    the machine that did the work.
    """

    python: str
    implementation: str
    platform: str
    machine: str
    cpu_count: int
    numpy: str
    scipy: str
    git_sha: str
    eval_days: float
    warmup_days: float
    base_seed: int

    #: Fields that define the workload: a mismatch makes counter
    #: comparison meaningless, so ``--compare`` treats it as a failure.
    WORKLOAD_FIELDS = ("eval_days", "warmup_days", "base_seed")

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EnvironmentFingerprint":
        """Inverse of :meth:`to_dict`; unknown keys are ignored so old
        readers survive additive schema growth."""
        fields = {
            "python": str(data.get("python", "unknown")),
            "implementation": str(data.get("implementation", "unknown")),
            "platform": str(data.get("platform", "unknown")),
            "machine": str(data.get("machine", "unknown")),
            "cpu_count": int(data.get("cpu_count", 0)),
            "numpy": str(data.get("numpy", "unknown")),
            "scipy": str(data.get("scipy", "unknown")),
            "git_sha": str(data.get("git_sha", "unknown")),
            "eval_days": float(data.get("eval_days", 0.0)),
            "warmup_days": float(data.get("warmup_days", 0.0)),
            "base_seed": int(data.get("base_seed", 1)),
        }
        return cls(**fields)

    def workload_mismatches(
        self, other: "EnvironmentFingerprint"
    ) -> list[tuple[str, Any, Any]]:
        """``(field, self_value, other_value)`` for workload fields that
        differ — each one invalidates counter comparison."""
        out: list[tuple[str, Any, Any]] = []
        for field in self.WORKLOAD_FIELDS:
            a, b = getattr(self, field), getattr(other, field)
            if a != b:
                out.append((field, a, b))
        return out

    def machine_mismatches(
        self, other: "EnvironmentFingerprint"
    ) -> list[tuple[str, Any, Any]]:
        """Differences that merely contextualize timing deltas."""
        out: list[tuple[str, Any, Any]] = []
        for field in ("python", "implementation", "platform", "machine",
                      "cpu_count", "numpy", "scipy"):
            a, b = getattr(self, field), getattr(other, field)
            if a != b:
                out.append((field, a, b))
        return out


def _git_sha() -> str:
    """HEAD revision of the working tree, or ``"unknown"``."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


def _scipy_version() -> str:
    try:
        import scipy
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        return "unavailable"
    return str(scipy.__version__)


def capture_environment() -> EnvironmentFingerprint:
    """Fingerprint the current process and workload configuration."""
    import numpy

    from repro.experiments.common import eval_days, warmup_days

    return EnvironmentFingerprint(
        python=platform.python_version(),
        implementation=platform.python_implementation(),
        platform=platform.platform(),
        machine=platform.machine(),
        cpu_count=os.cpu_count() or 0,
        numpy=str(numpy.__version__),
        scipy=_scipy_version(),
        git_sha=_git_sha(),
        eval_days=eval_days(),
        warmup_days=warmup_days(),
        base_seed=int(os.environ.get("REPRO_BASE_SEED", "1")),
    )

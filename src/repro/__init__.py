"""repro — dynamic data-center resource provisioning for MMOGs.

A full reproduction of Nae, Iosup, Podlipnig, Prodan, Epema, Fahringer,
*Efficient Management of Data Center Resources for Massively Multiplayer
Online Games* (SC 2008): the MMOG ecosystem model, workload analysis,
the neural-network load predictor and its six baselines, and the
trace-driven provisioning simulator behind every table and figure of
the paper's evaluation.

Packages
--------
``repro.core``
    The paper's contribution: update models, demand estimation,
    request-offer matching, dynamic/static provisioning, the Ω/Υ
    metrics and the multi-MMOG multi-data-center simulator.
``repro.datacenter``
    Hosting substrate: resources, hosting policies (Table IV), machines,
    data centers (Table III), geography and latency classes.
``repro.predictors``
    Load prediction: the (6,3,1) MLP with polynomial preprocessing and
    the simple baselines of Sec. IV.
``repro.emulator``
    The game emulator generating the Table I data sets.
``repro.traces``
    RuneScape-like workload synthesis and the Sec. III analyses.
``repro.nettrace``
    Packet-level session traces (Fig. 4).
``repro.market``
    MMOG market growth (Fig. 1).
``repro.experiments``
    One module per paper table/figure plus ablations.

Quickstart
----------
>>> from repro import quick_simulation
>>> result = quick_simulation(n_days=2, warmup_days=0.5)
>>> result.eval_steps
1080
"""

from typing import TYPE_CHECKING

from repro.core import (
    DemandModel,
    DynamicProvisioner,
    EcosystemConfig,
    EcosystemSimulator,
    GameOperator,
    GameSpec,
    MatchingPolicy,
    MetricsTimeline,
    SimulationResult,
    StaticProvisioner,
    UpdateModel,
    update_model,
)
from repro.datacenter import (
    CPU,
    EXTNET_IN,
    EXTNET_OUT,
    MEMORY,
    DataCenter,
    HostingPolicy,
    LatencyClass,
    ResourceType,
    ResourceVector,
    build_paper_datacenters,
    policy,
)
from repro.predictors import (
    AveragePredictor,
    ExponentialSmoothingPredictor,
    LastValuePredictor,
    MovingAveragePredictor,
    NeuralPredictor,
    SlidingWindowMedianPredictor,
)
from repro.traces import GameTrace, RegionTrace, synthesize_runescape_like

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Callable

    from repro.obs.registry import MetricsRegistry
    from repro.obs.tracer import StepTracer
    from repro.predictors.base import Predictor

__version__ = "1.0.0"

__all__ = [
    "DemandModel",
    "DynamicProvisioner",
    "EcosystemConfig",
    "EcosystemSimulator",
    "GameOperator",
    "GameSpec",
    "MatchingPolicy",
    "MetricsTimeline",
    "SimulationResult",
    "StaticProvisioner",
    "UpdateModel",
    "update_model",
    "CPU",
    "MEMORY",
    "EXTNET_IN",
    "EXTNET_OUT",
    "DataCenter",
    "HostingPolicy",
    "LatencyClass",
    "ResourceType",
    "ResourceVector",
    "build_paper_datacenters",
    "policy",
    "AveragePredictor",
    "ExponentialSmoothingPredictor",
    "LastValuePredictor",
    "MovingAveragePredictor",
    "NeuralPredictor",
    "SlidingWindowMedianPredictor",
    "GameTrace",
    "RegionTrace",
    "synthesize_runescape_like",
    "quick_simulation",
]


def quick_simulation(
    *,
    n_days: float = 3.0,
    warmup_days: float = 1.0,
    predictor: "Callable[[], Predictor]" = NeuralPredictor,
    update: str = "O(n^2)",
    mode: str = "dynamic",
    seed: int = 1,
    metrics: "MetricsRegistry | None" = None,
    tracer: "StepTracer | None" = None,
    check_invariants: bool = False,
) -> SimulationResult:
    """Run a small end-to-end provisioning simulation with defaults.

    Synthesizes a RuneScape-like trace, builds the Table III platform
    under the paper's HP-1/HP-2 policies, and simulates ``mode``
    provisioning with the given predictor and update model.  Intended
    for quickstarts and smoke tests; the full-scale experiments live in
    :mod:`repro.experiments`.  The observability hooks (``metrics``,
    ``tracer``, ``check_invariants``) are forwarded to
    :class:`EcosystemConfig` and default to off.
    """
    trace = synthesize_runescape_like(n_days=n_days, seed=seed)
    game = GameSpec(
        name="quickstart",
        trace=trace,
        demand_model=DemandModel(update=update_model(update)),
        predictor_factory=predictor,
    )
    config = EcosystemConfig(
        games=[game],
        centers=build_paper_datacenters(),
        mode=mode,
        warmup_steps=int(round(warmup_days * 720)),
        metrics=metrics,
        tracer=tracer,
        check_invariants=check_invariants,
    )
    return EcosystemSimulator(config).run()

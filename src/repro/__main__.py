"""``python -m repro`` — the CLI without an installed entry point.

CI and fresh checkouts run the tool as ``PYTHONPATH=src python -m
repro ...``; an installed distribution uses the ``repro`` console
script.  Both paths converge on :func:`repro.cli.main`.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())

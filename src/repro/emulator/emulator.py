"""The emulation loop: configuration, stepping, sampling.

One :class:`GameEmulator` run simulates a configured day of play and
samples the per-sub-zone entity counts every two minutes — "running one
simulated day for each set and sampling the game state every two
minutes" (Sec. IV-D1).  Four aspects besides the AI profile mix are
modelled, exactly as the paper lists them:

* **peak hours** — a late-afternoon population swell;
* **peak load** — the maximum entity count (relative game popularity);
* **overall dynamics** — variability of the interaction over the day
  (population amplitude + hotspot strength drift);
* **instantaneous dynamics** — variability over a two-minute window
  (entity speed + hotspot churn).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.emulator.engine import VectorizedPopulation
from repro.emulator.profiles import AIProfile, DynamicsLevel
from repro.emulator.world import GameWorld
from repro.emulator.entities import EntityPopulation
from repro.obs.ambient import ambient_metrics, record_ambient_phases
from repro.obs.timing import PhaseTimer
from repro.obs.trace import current_recorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry

__all__ = ["EmulatorConfig", "EmulationTrace", "GameEmulator"]

_N_PROFILES = len(AIProfile)

#: Entity speed multiplier per instantaneous-dynamics level.
#: The scales are chosen so that crowd relocations span several samples
#: (a hotspot-to-hotspot transit takes ~5-10 samples at HIGH): load
#: changes then appear as traveling waves across zones — large but
#: *structured* two-minute dynamics, as in fast-paced games where
#: battles build up and disperse over minutes.
_SPEED_SCALE = {
    DynamicsLevel.LOW: 0.012,
    DynamicsLevel.MEDIUM: 0.04,
    DynamicsLevel.HIGH: 0.12,
}
#: Hotspot churn probability per tick, per instantaneous-dynamics level.
#: Relocations are rare; the round schedule provides the dynamics.
_CHURN_PROB = {
    DynamicsLevel.LOW: 0.0002,
    DynamicsLevel.MEDIUM: 0.0008,
    DynamicsLevel.HIGH: 0.002,
}
#: Hotspot pulse amplitude (minigame-round oscillation) per
#: instantaneous-dynamics level: fast-paced games cycle players through
#: arena rounds every few minutes, calm games barely oscillate.
_PULSE_AMPLITUDE = {
    DynamicsLevel.LOW: 0.15,
    DynamicsLevel.MEDIUM: 0.55,
    DynamicsLevel.HIGH: 0.95,
}
#: Daily population amplitude per overall-dynamics level (fraction of peak).
_DAILY_AMPLITUDE = {
    DynamicsLevel.LOW: 0.12,
    DynamicsLevel.MEDIUM: 0.30,
    DynamicsLevel.HIGH: 0.55,
}


@dataclass(frozen=True)
class EmulatorConfig:
    """Configuration of one emulation run (one Table I row).

    Parameters
    ----------
    profile_mix:
        Preferred-profile fractions (aggressive, scout, team, camper);
        must sum to 1.
    peak_hours:
        Whether the population follows a late-afternoon peak curve.
    peak_load:
        Maximum entity count.
    overall_dynamics / instantaneous_dynamics:
        Table I's two dynamics columns.
    duration_days:
        Simulated duration (the paper uses one day per set).
    tick_seconds:
        Integration step of the movement simulation.
    sample_minutes:
        Sampling interval of the output signal (paper: 2 minutes).
    zones_x, zones_y:
        Sub-zone grid.
    seed:
        Seed pinning the whole run.
    """

    profile_mix: tuple[float, float, float, float]
    peak_hours: bool = False
    peak_load: int = 1000
    overall_dynamics: DynamicsLevel = DynamicsLevel.MEDIUM
    instantaneous_dynamics: DynamicsLevel = DynamicsLevel.MEDIUM
    duration_days: float = 1.0
    tick_seconds: float = 20.0
    sample_minutes: float = 2.0
    zones_x: int = 8
    zones_y: int = 8
    n_hotspots: int = 4
    seed: int = 7

    def __post_init__(self) -> None:
        mix = np.asarray(self.profile_mix, dtype=np.float64)
        if mix.shape != (_N_PROFILES,) or mix.min() < 0 or not np.isclose(mix.sum(), 1.0):
            raise ValueError("profile_mix must be 4 non-negative fractions summing to 1")
        if self.peak_load <= 0:
            raise ValueError("peak_load must be positive")
        if self.duration_days <= 0 or self.tick_seconds <= 0 or self.sample_minutes <= 0:
            raise ValueError("durations must be positive")
        if self.sample_minutes * 60 < self.tick_seconds:
            raise ValueError("sampling must not be finer than the tick")

    @property
    def n_samples(self) -> int:
        """Number of output samples."""
        return int(round(self.duration_days * 24 * 60 / self.sample_minutes))

    @property
    def ticks_per_sample(self) -> int:
        """Simulation ticks between consecutive samples."""
        return max(int(round(self.sample_minutes * 60 / self.tick_seconds)), 1)


@dataclass
class EmulationTrace:
    """Output of one emulation run.

    Attributes
    ----------
    zone_counts:
        Shape ``(n_samples, n_zones)``: entities per sub-zone per sample.
    config:
        The configuration that produced the trace.
    """

    zone_counts: np.ndarray
    config: EmulatorConfig

    @property
    def totals(self) -> np.ndarray:
        """Total entity count per sample."""
        return self.zone_counts.sum(axis=1)

    @property
    def n_samples(self) -> int:
        """Number of samples."""
        return int(self.zone_counts.shape[0])

    @property
    def n_zones(self) -> int:
        """Number of sub-zones."""
        return int(self.zone_counts.shape[1])

    def instantaneous_variability(self) -> float:
        """Mean absolute per-zone change between consecutive samples,
        normalized by the mean zone count — the empirical measure of
        Table I's *instantaneous dynamics*."""
        diffs = np.abs(np.diff(self.zone_counts, axis=0)).mean()
        level = max(self.zone_counts.mean(), 1e-9)
        return float(diffs / level)

    def overall_variability(self) -> float:
        """Relative swing of the total population over the run — the
        empirical measure of Table I's *overall dynamics*."""
        totals = self.totals.astype(np.float64)
        peak = totals.max()
        if peak <= 0:
            return 0.0
        return float((peak - totals.min()) / peak)


class GameEmulator:
    """Runs one emulation and produces an :class:`EmulationTrace`."""

    def __init__(self, config: EmulatorConfig) -> None:
        self.config = config

    def _population_curve(self, t_days: np.ndarray) -> np.ndarray:
        """Target population per sample as a fraction of ``peak_load``."""
        cfg = self.config
        amp = _DAILY_AMPLITUDE[cfg.overall_dynamics]
        if cfg.peak_hours:
            # Raised cosine peaking at 19:00, like the trace synthesizer.
            hour = (t_days * 24.0) % 24.0
            delta = np.abs(hour - 19.0)
            delta = np.minimum(delta, 24.0 - delta)
            shape = np.where(delta < 9.0, 0.5 * (1 + np.cos(np.pi * delta / 9.0)), 0.0)
            return (1.0 - amp) + amp * shape
        # No peak hours: slow sinusoidal wander around a high plateau.
        wander = 0.5 * (1 + np.sin(2 * np.pi * (t_days * 3.0)))
        return (1.0 - amp) + amp * wander

    def run(
        self,
        *,
        metrics: "MetricsRegistry | None" = None,
        reference: bool = False,
    ) -> EmulationTrace:
        """Execute the emulation (deterministic given the seed).

        ``metrics`` (or an ambient probe, when none is passed) receives
        the deterministic work counters ``emulator.ticks`` /
        ``emulator.samples`` / ``emulator.entities_spawned`` /
        ``emulator.entities_despawned`` plus an ``emulate`` phase
        timing; observability never alters the trace.

        ``reference=True`` runs the readable
        :class:`~repro.emulator.entities.EntityPopulation` specification
        instead of the default preallocated
        :class:`~repro.emulator.engine.VectorizedPopulation` engine.
        Both consume the same random stream and perform the same
        IEEE-754 arithmetic, so the trace and every counter are
        *bitwise identical* either way — the differential tests and the
        bench gate's exact-counter comparison hold this contract.
        """
        if metrics is None:
            metrics = ambient_metrics()
        timer = PhaseTimer() if metrics is not None else None
        if metrics is not None:
            c_ticks = metrics.counter("emulator.ticks")
            c_samples = metrics.counter("emulator.samples")
            c_spawned = metrics.counter("emulator.entities_spawned")
            c_despawned = metrics.counter("emulator.entities_despawned")
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        world = GameWorld(
            zones_x=cfg.zones_x,
            zones_y=cfg.zones_y,
            n_hotspots=cfg.n_hotspots,
            pulse_amplitude=_PULSE_AMPLITUDE[cfg.instantaneous_dynamics],
            rng=rng,
        )
        population_cls = EntityPopulation if reference else VectorizedPopulation
        population = population_cls(
            world,
            np.asarray(cfg.profile_mix),
            speed_scale=_SPEED_SCALE[cfg.instantaneous_dynamics],
            rng=rng,
        )
        churn = _CHURN_PROB[cfg.instantaneous_dynamics]

        n_samples = cfg.n_samples
        sample_days = np.arange(n_samples) * (cfg.sample_minutes / (24.0 * 60.0))
        targets = np.round(self._population_curve(sample_days) * cfg.peak_load).astype(int)

        # Warm start at the initial target population.
        population.spawn(int(targets[0]))
        if metrics is not None:
            c_spawned.inc(int(targets[0]))
        counts = np.empty((n_samples, world.n_zones), dtype=np.int64)

        t_mark = timer.mark() if timer is not None else 0.0
        rec = current_recorder()
        advance_time = world.advance_time
        churn_hotspots = world.churn_hotspots
        pop_step = population.step
        tick_seconds = cfg.tick_seconds
        ticks_per_sample = cfg.ticks_per_sample
        for s in range(n_samples):
            h_sample = rec.begin("emulate.sample") if rec is not None else None
            # Track the target population with gradual join/leave churn.
            deficit = int(targets[s]) - population.size
            if deficit > 0:
                population.spawn(deficit)
            elif deficit < 0:
                population.despawn(-deficit)
            h_step = rec.begin("emulate.step") if rec is not None else None
            for _ in range(ticks_per_sample):
                advance_time(tick_seconds)
                churn_hotspots(churn)
                pop_step(tick_seconds)
            if h_step is not None:
                h_step.end()
            counts[s] = population.zone_counts()
            if h_sample is not None:
                h_sample.end()
            if metrics is not None:
                c_samples.inc()
                c_ticks.inc(cfg.ticks_per_sample)
                if deficit > 0:
                    c_spawned.inc(deficit)
                elif deficit < 0:
                    c_despawned.inc(-deficit)
        if timer is not None:
            timer.lap("emulate", t_mark)
            record_ambient_phases(timer)
        return EmulationTrace(zone_counts=counts, config=cfg)

"""The eight Table I trace data sets and their signal taxonomy.

Table I fixes, per data set, the preferred-profile mix (aggressive /
scout / team / camper percentages), whether peak hours are modelled,
and coarse ratings for peak load, overall dynamics and instantaneous
dynamics.  Sets 1-4 have no peak hours and high instantaneous dynamics
(fast-paced, FPS-like play); sets 5-8 model peak hours with calmer
instantaneous behaviour (MMORPG-like play).

The paper groups the resulting signals into three types used to discuss
Fig. 5:

* **Type I** — high instantaneous, medium overall dynamics (sets 2-4);
* **Type II** — low instantaneous dynamics (sets 6-8);
* **Type III** — medium instantaneous dynamics (sets 1 and 5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.emulator.emulator import EmulatorConfig, EmulationTrace, GameEmulator
from repro.emulator.profiles import DynamicsLevel

__all__ = [
    "SignalType",
    "DatasetSpec",
    "TABLE_I_SPECS",
    "generate_dataset",
    "generate_table1_datasets",
]


class SignalType(enum.Enum):
    """The paper's three signal classes."""

    TYPE_I = "Type I"  # high instantaneous, medium overall dynamics
    TYPE_II = "Type II"  # low instantaneous dynamics
    TYPE_III = "Type III"  # medium instantaneous dynamics

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class DatasetSpec:
    """One Table I row.

    ``profile_mix`` is (aggressive, scout, team, camper) percentages.
    """

    name: str
    profile_mix: tuple[float, float, float, float]
    peak_hours: bool
    peak_load: int
    overall_dynamics: DynamicsLevel
    instantaneous_dynamics: DynamicsLevel
    signal_type: SignalType
    seed: int

    def to_config(self, **overrides) -> EmulatorConfig:
        """Build the emulator configuration for this data set.

        Mixes are normalized to sum to 1 — the published Table I row for
        Set 2 (60/10/0/20) sums to 90 %, so normalization is required to
        interpret it as a probability vector.
        """
        total = float(sum(self.profile_mix))
        mix = tuple(p / total for p in self.profile_mix)
        params = dict(
            profile_mix=mix,
            peak_hours=self.peak_hours,
            peak_load=self.peak_load,
            overall_dynamics=self.overall_dynamics,
            instantaneous_dynamics=self.instantaneous_dynamics,
            seed=self.seed,
        )
        params.update(overrides)
        return EmulatorConfig(**params)


_L, _M, _H = DynamicsLevel.LOW, DynamicsLevel.MEDIUM, DynamicsLevel.HIGH

#: Table I: player-behaviour percentages (Aggr., Scout, Team, Camp.),
#: peak hours, and the dynamics ratings.  The published table prints the
#: ratings as '+' bars; we use the signal-type discussion (Sec. IV-D1)
#: to pin instantaneous dynamics — high for sets 2-4, low for 6-8,
#: medium for 1 and 5 — and give the peak-hours sets the larger daily
#: amplitude (overall dynamics) that MMORPG-style play implies.
TABLE_I_SPECS: tuple[DatasetSpec, ...] = (
    DatasetSpec("Set 1", (80, 10, 0, 10), False, 3600, _M, _M, SignalType.TYPE_III, 101),
    DatasetSpec("Set 2", (60, 10, 0, 20), False, 4000, _M, _H, SignalType.TYPE_I, 102),
    DatasetSpec("Set 3", (70, 20, 0, 10), False, 3200, _M, _H, SignalType.TYPE_I, 103),
    DatasetSpec("Set 4", (70, 30, 0, 0), False, 4400, _M, _H, SignalType.TYPE_I, 104),
    DatasetSpec("Set 5", (30, 40, 30, 0), True, 4800, _H, _M, SignalType.TYPE_III, 105),
    DatasetSpec("Set 6", (10, 80, 10, 0), True, 3600, _H, _L, SignalType.TYPE_II, 106),
    DatasetSpec("Set 7", (20, 40, 40, 0), True, 4000, _H, _L, SignalType.TYPE_II, 107),
    DatasetSpec("Set 8", (20, 80, 0, 0), True, 4400, _H, _L, SignalType.TYPE_II, 108),
)


def generate_dataset(spec: DatasetSpec, **overrides) -> EmulationTrace:
    """Run the emulator for one Table I data set."""
    return GameEmulator(spec.to_config(**overrides)).run()


def generate_table1_datasets(
    *, specs: tuple[DatasetSpec, ...] = TABLE_I_SPECS, **overrides
) -> dict[str, EmulationTrace]:
    """Run all (or a subset of) Table I data sets.

    Returns ``{set name: EmulationTrace}`` in table order.  Keyword
    overrides are forwarded to every emulator configuration (useful to
    shrink ``duration_days`` in tests).
    """
    return {spec.name: generate_dataset(spec, **overrides) for spec in specs}

"""The MMOG game emulator (paper Sec. IV-D1).

The paper's authors could not instrument RuneScape's servers, so they
built a distributed game emulator that "realistically emulates the
behavior of the game players" to generate load traces for predictor
evaluation.  This package is that emulator:

* a 2-D **game world** partitioned into sub-zones, with interaction
  *hotspots* (:mod:`repro.emulator.world`),
* an **entity population** driven by the paper's four AI profiles —
  aggressive (the *killer*), scout (the *explorer*), team player (the
  *socializer*) and camper (the *achiever* of Bartle's taxonomy) — with
  dynamic profile switching (:mod:`repro.emulator.profiles`,
  :mod:`repro.emulator.entities`),
* the **emulation loop** producing per-sub-zone entity counts at the
  2-minute sampling interval (:mod:`repro.emulator.emulator`), and
* the **Table I data sets** — eight configurations spanning the three
  signal types used in the Fig. 5 predictor comparison
  (:mod:`repro.emulator.datasets`).
"""

from repro.emulator.profiles import AIProfile, ProfileParams, PROFILE_PARAMS, DynamicsLevel
from repro.emulator.world import GameWorld, Hotspot
from repro.emulator.entities import EntityPopulation
from repro.emulator.emulator import EmulatorConfig, GameEmulator, EmulationTrace
from repro.emulator.interactions import (
    InteractionTrace,
    count_interacting_pairs,
    emulate_with_interactions,
    interaction_counts_per_zone,
    load_interaction_correlation,
)
from repro.emulator.datasets import (
    DatasetSpec,
    TABLE_I_SPECS,
    SignalType,
    generate_dataset,
    generate_table1_datasets,
)

__all__ = [
    "AIProfile",
    "ProfileParams",
    "PROFILE_PARAMS",
    "DynamicsLevel",
    "GameWorld",
    "Hotspot",
    "EntityPopulation",
    "EmulatorConfig",
    "GameEmulator",
    "EmulationTrace",
    "InteractionTrace",
    "count_interacting_pairs",
    "emulate_with_interactions",
    "interaction_counts_per_zone",
    "load_interaction_correlation",
    "DatasetSpec",
    "TABLE_I_SPECS",
    "SignalType",
    "generate_dataset",
    "generate_table1_datasets",
]

"""Entity-interaction measurement inside the emulator.

A fundamental premise of the paper is that MMOG server load depends on
the number *and type* of interactions between entities (Sec. III-D);
the emulator exists partly "to give further evidence that the player
interaction determines the server load" (Sec. IV-D1).  This module
provides that evidence: it counts, per sub-zone, the *interacting
pairs* — entities within each other's interaction radius — which is
exactly the quantity an ``O(n^2)``-style update loop iterates over.

Counting uses a KD-tree, so a full day of samples with thousands of
entities stays fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np
from scipy.spatial import cKDTree

from repro.emulator.emulator import EmulatorConfig, GameEmulator
from repro.emulator.entities import EntityPopulation
from repro.emulator.world import GameWorld
from repro.obs.ambient import ambient_metrics, record_ambient_phases
from repro.obs.timing import PhaseTimer
from repro.obs.trace import current_recorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry

__all__ = [
    "count_interacting_pairs",
    "interaction_counts_per_zone",
    "InteractionTrace",
    "emulate_with_interactions",
    "load_interaction_correlation",
]


def _cumsum0(a: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum: ``[0, a0, a0+a1, ...]`` without the total."""
    out = np.empty(a.shape[0], dtype=np.int64)
    out[0] = 0
    np.cumsum(a[:-1], out=out[1:])
    return out


def _close_pairs_grid(
    positions: np.ndarray, radius: float
) -> tuple[np.ndarray, np.ndarray]:
    """All index pairs within ``radius``, by uniform-grid bucketing.

    Buckets points into square cells of side ``radius / 2``; a close
    pair then spans at most two cells in each dimension, so comparing
    each cell against itself and twelve forward neighbours (a half
    stencil in cell space) enumerates every candidate exactly once.
    Half-radius cells keep the candidate volume tight *and* make every
    intra-cell pair close by construction (cell diagonal
    ``r/√2 < r``), so the densest buckets — hotspot crowds — skip the
    distance predicate entirely.  Inter-cell candidates are filtered
    with the same closed predicate as ``cKDTree.query_pairs``
    (``dx² + dy² <= radius²``), making the result a permutation of the
    KD-tree's pair list — identical counts, found with whole-array
    NumPy passes instead of per-node tree recursion.

    Returns ``(i, j)`` original-index arrays (unsorted pair order).
    """
    x = np.ascontiguousarray(positions[:, 0])
    y = np.ascontiguousarray(positions[:, 1])
    inv = 2.0 / radius
    cellx = (x * inv).astype(np.int64)
    celly = (y * inv).astype(np.int64)
    celly += 2  # shift so southern neighbours never wrap a grid row
    row = int(celly.max()) + 3
    keys = cellx * row + celly
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys.take(order)
    # Occupied-cell runs of the sorted order (the keys are sorted, so a
    # run boundary is just a key change — no extra sort needed).
    n = x.shape[0]
    boundary = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1])
    start = np.empty(boundary.shape[0] + 1, dtype=np.int64)
    start[0] = 0
    np.add(boundary, 1, out=start[1:])
    count = np.diff(start, append=n)
    cells = sorted_keys.take(start)

    # Sorted coordinate copies: candidate gathers hit contiguous memory
    # and failed candidates never pay the back-to-original mapping.
    xs = x.take(order)
    ys = y.take(order)
    r2 = radius * radius
    pos = np.arange(n, dtype=np.int64)
    parts_i: list[np.ndarray] = []
    parts_j: list[np.ndarray] = []

    def _sift(ii_s: np.ndarray, jj_s: np.ndarray) -> None:
        """Apply the distance predicate; keep survivors (original ids)."""
        dx = xs.take(ii_s)
        dx -= xs.take(jj_s)
        dy = ys.take(ii_s)
        dy -= ys.take(jj_s)
        dx *= dx
        dy *= dy
        dx += dy
        close = dx <= r2
        parts_i.append(order.take(ii_s[close]))
        parts_j.append(order.take(jj_s[close]))

    # Intra-cell pairs: each sorted point against the later points of
    # its own cell (cells are contiguous runs of the sorted order).
    # With half-radius cells every such pair is within the radius —
    # no distance test required.
    later = np.repeat(start + count, count)
    later -= 1
    later -= pos
    total = int(later.sum())
    if total:
        ii_s = np.repeat(pos, later)
        jj_s = np.arange(total, dtype=np.int64)
        jj_s -= np.repeat(_cumsum0(later), later)
        jj_s += ii_s
        jj_s += 1
        parts_i.append(order.take(ii_s))
        parts_j.append(order.take(jj_s))

    # Inter-cell pairs: match each occupied cell against its twelve
    # forward neighbours (key offsets in the flattened cell space), and
    # pair every point of the left cell with the right cell's full run.
    n_cells = cells.shape[0]
    offsets = (
        1, 2,
        row - 2, row - 1, row, row + 1, row + 2,
        2 * row - 2, 2 * row - 1, 2 * row, 2 * row + 1, 2 * row + 2,
    )
    for offset in offsets:
        shifted = cells + offset
        neighbour = np.searchsorted(cells, shifted)
        has = neighbour < n_cells
        has &= cells.take(np.minimum(neighbour, n_cells - 1)) == shifted
        a = np.flatnonzero(has)
        if a.size == 0:
            continue
        b = neighbour.take(a)
        na = count.take(a)
        # Per-point expansion of the left cells (contiguous runs).
        a_total = int(na.sum())
        loc = np.arange(a_total, dtype=np.int64)
        loc -= np.repeat(_cumsum0(na), na)
        apts = np.repeat(start.take(a), na)
        apts += loc
        nb_pt = np.repeat(count.take(b), na)  # right-run length per point
        total = int(nb_pt.sum())
        if total == 0:
            continue
        ii_s = np.repeat(apts, nb_pt)
        jj_s = np.arange(total, dtype=np.int64)
        jj_s -= np.repeat(_cumsum0(nb_pt), nb_pt)
        jj_s += np.repeat(start.take(b), na).repeat(nb_pt)
        _sift(ii_s, jj_s)

    if not parts_i:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(parts_i), np.concatenate(parts_j)


def count_interacting_pairs(
    positions: np.ndarray, radius: float, *, reference: bool = False
) -> int:
    """Number of entity pairs within ``radius`` of each other.

    The default grid-bucketed counter and the ``reference=True`` KD-tree
    enumerate the identical pair set (the differential tests assert so).
    """
    if positions.shape[0] < 2 or radius <= 0.0:
        return 0
    if reference:
        tree = cKDTree(positions)
        return int(len(tree.query_pairs(radius)))
    return int(_close_pairs_grid(positions, radius)[0].shape[0])


def interaction_counts_per_zone(
    world: GameWorld, positions: np.ndarray, radius: float, *, reference: bool = False
) -> np.ndarray:
    """Interacting pairs per sub-zone (a pair counts where it starts).

    Each close pair is attributed to the zone of its lower-indexed
    member — the server simulating that zone computes the interaction.
    """
    counts = np.zeros(world.n_zones, dtype=np.int64)
    if positions.shape[0] < 2 or radius <= 0.0:
        return counts
    if reference:
        tree = cKDTree(positions)
        pairs = tree.query_pairs(radius, output_type="ndarray")
        if pairs.size == 0:
            return counts
        zones = world.zone_of(positions[pairs[:, 0]])
        np.add.at(counts, zones, 1)
        return counts
    ii, jj = _close_pairs_grid(positions, radius)
    if ii.shape[0] == 0:
        return counts
    first = np.minimum(ii, jj)  # query_pairs yields i < j: same member
    zones = world.zone_of_xy(positions[first, 0], positions[first, 1])
    counts += np.bincount(zones, minlength=world.n_zones)
    return counts


@dataclass
class InteractionTrace:
    """Per-sample entity counts *and* interaction counts per sub-zone."""

    zone_counts: np.ndarray  # (n_samples, n_zones) entities
    zone_interactions: np.ndarray  # (n_samples, n_zones) interacting pairs
    config: EmulatorConfig

    @property
    def total_interactions(self) -> np.ndarray:
        """World-wide interacting pairs per sample."""
        return self.zone_interactions.sum(axis=1)


def emulate_with_interactions(
    config: EmulatorConfig,
    *,
    interaction_radius: float = 25.0,
    metrics: "MetricsRegistry | None" = None,
    reference: bool = False,
) -> InteractionTrace:
    """Run the emulator, sampling interactions alongside entity counts.

    Re-implements the :meth:`GameEmulator.run` loop with an extra
    pair-counting pass per sample.  ``interaction_radius`` is in world
    units (the default is a quarter of a sub-zone edge on the standard
    map).  ``metrics`` (or an ambient probe) receives the
    ``emulator.ticks`` / ``emulator.samples`` /
    ``emulator.interaction_pairs`` work counters and ``emulate`` /
    ``interactions`` phase timings.

    ``reference=True`` selects the readable slow path end to end — the
    per-entity :class:`~repro.emulator.entities.EntityPopulation` plus
    the KD-tree pair counter — and produces bitwise-identical traces
    and counters (the same contract as :meth:`GameEmulator.run`).
    """
    from repro.emulator.emulator import _CHURN_PROB, _PULSE_AMPLITUDE, _SPEED_SCALE
    from repro.emulator.engine import VectorizedPopulation

    if metrics is None:
        metrics = ambient_metrics()
    timer = PhaseTimer() if metrics is not None else None
    if metrics is not None:
        c_ticks = metrics.counter("emulator.ticks")
        c_samples = metrics.counter("emulator.samples")
        c_pairs = metrics.counter("emulator.interaction_pairs")

    rng = np.random.default_rng(config.seed)
    world = GameWorld(
        zones_x=config.zones_x,
        zones_y=config.zones_y,
        n_hotspots=config.n_hotspots,
        pulse_amplitude=_PULSE_AMPLITUDE[config.instantaneous_dynamics],
        rng=rng,
    )
    population_cls = EntityPopulation if reference else VectorizedPopulation
    population = population_cls(
        world,
        np.asarray(config.profile_mix),
        speed_scale=_SPEED_SCALE[config.instantaneous_dynamics],
        rng=rng,
    )
    churn = _CHURN_PROB[config.instantaneous_dynamics]
    emulator = GameEmulator(config)

    n_samples = config.n_samples
    sample_days = np.arange(n_samples) * (config.sample_minutes / (24.0 * 60.0))
    targets = np.round(
        emulator._population_curve(sample_days) * config.peak_load
    ).astype(int)

    population.spawn(int(targets[0]))
    counts = np.empty((n_samples, world.n_zones), dtype=np.int64)
    interactions = np.empty((n_samples, world.n_zones), dtype=np.int64)
    t_mark = timer.mark() if timer is not None else 0.0
    rec = current_recorder()
    for s in range(n_samples):
        h_sample = rec.begin("emulate.sample") if rec is not None else None
        deficit = int(targets[s]) - population.size
        if deficit > 0:
            population.spawn(deficit)
        elif deficit < 0:
            population.despawn(-deficit)
        h_step = rec.begin("emulate.step") if rec is not None else None
        for _ in range(config.ticks_per_sample):
            world.advance_time(config.tick_seconds)
            world.churn_hotspots(churn)
            population.step(config.tick_seconds)
        if h_step is not None:
            h_step.end()
        counts[s] = population.zone_counts()
        if timer is not None:
            t_mark = timer.lap("emulate", t_mark)
        h_pairs = rec.begin("emulate.pairs") if rec is not None else None
        interactions[s] = interaction_counts_per_zone(
            world, population.positions, interaction_radius, reference=reference
        )
        if h_pairs is not None:
            h_pairs.end()
        if metrics is not None:
            c_samples.inc()
            c_ticks.inc(config.ticks_per_sample)
            c_pairs.inc(int(interactions[s].sum()))
            if timer is not None:
                t_mark = timer.lap("interactions", t_mark)
        if h_sample is not None:
            h_sample.end()
    if timer is not None:
        record_ambient_phases(timer)
    return InteractionTrace(
        zone_counts=counts, zone_interactions=interactions, config=config
    )


def load_interaction_correlation(trace: InteractionTrace) -> float:
    """Correlation between per-zone entity count and interaction count.

    Pooled over all (sample, zone) cells.  A strongly positive value —
    but far from a deterministic mapping — is the paper's point: load is
    driven by interactions, which entity counts only proxy; crowded
    zones hosting an arena fight generate disproportionately many pairs.
    """
    x = trace.zone_counts.reshape(-1).astype(np.float64)
    y = trace.zone_interactions.reshape(-1).astype(np.float64)
    if x.std() == 0 or y.std() == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])

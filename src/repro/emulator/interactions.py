"""Entity-interaction measurement inside the emulator.

A fundamental premise of the paper is that MMOG server load depends on
the number *and type* of interactions between entities (Sec. III-D);
the emulator exists partly "to give further evidence that the player
interaction determines the server load" (Sec. IV-D1).  This module
provides that evidence: it counts, per sub-zone, the *interacting
pairs* — entities within each other's interaction radius — which is
exactly the quantity an ``O(n^2)``-style update loop iterates over.

Counting uses a KD-tree, so a full day of samples with thousands of
entities stays fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np
from scipy.spatial import cKDTree

from repro.emulator.emulator import EmulatorConfig, GameEmulator
from repro.emulator.entities import EntityPopulation
from repro.emulator.world import GameWorld
from repro.obs.ambient import ambient_metrics, record_ambient_phases
from repro.obs.timing import PhaseTimer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry

__all__ = [
    "count_interacting_pairs",
    "interaction_counts_per_zone",
    "InteractionTrace",
    "emulate_with_interactions",
    "load_interaction_correlation",
]


def count_interacting_pairs(positions: np.ndarray, radius: float) -> int:
    """Number of entity pairs within ``radius`` of each other."""
    if positions.shape[0] < 2:
        return 0
    tree = cKDTree(positions)
    return int(len(tree.query_pairs(radius)))


def interaction_counts_per_zone(
    world: GameWorld, positions: np.ndarray, radius: float
) -> np.ndarray:
    """Interacting pairs per sub-zone (a pair counts where it starts).

    Each close pair is attributed to the zone of its first member —
    the server simulating that zone computes the interaction.
    """
    counts = np.zeros(world.n_zones, dtype=np.int64)
    if positions.shape[0] < 2:
        return counts
    tree = cKDTree(positions)
    pairs = tree.query_pairs(radius, output_type="ndarray")
    if pairs.size == 0:
        return counts
    zones = world.zone_of(positions[pairs[:, 0]])
    np.add.at(counts, zones, 1)
    return counts


@dataclass
class InteractionTrace:
    """Per-sample entity counts *and* interaction counts per sub-zone."""

    zone_counts: np.ndarray  # (n_samples, n_zones) entities
    zone_interactions: np.ndarray  # (n_samples, n_zones) interacting pairs
    config: EmulatorConfig

    @property
    def total_interactions(self) -> np.ndarray:
        """World-wide interacting pairs per sample."""
        return self.zone_interactions.sum(axis=1)


def emulate_with_interactions(
    config: EmulatorConfig,
    *,
    interaction_radius: float = 25.0,
    metrics: "MetricsRegistry | None" = None,
) -> InteractionTrace:
    """Run the emulator, sampling interactions alongside entity counts.

    Re-implements the :meth:`GameEmulator.run` loop with an extra
    KD-tree pass per sample.  ``interaction_radius`` is in world units
    (the default is a quarter of a sub-zone edge on the standard map).
    ``metrics`` (or an ambient probe) receives the ``emulator.ticks`` /
    ``emulator.samples`` / ``emulator.interaction_pairs`` work counters
    and ``emulate`` / ``interactions`` phase timings.
    """
    from repro.emulator.emulator import _CHURN_PROB, _PULSE_AMPLITUDE, _SPEED_SCALE

    if metrics is None:
        metrics = ambient_metrics()
    timer = PhaseTimer() if metrics is not None else None
    if metrics is not None:
        c_ticks = metrics.counter("emulator.ticks")
        c_samples = metrics.counter("emulator.samples")
        c_pairs = metrics.counter("emulator.interaction_pairs")

    rng = np.random.default_rng(config.seed)
    world = GameWorld(
        zones_x=config.zones_x,
        zones_y=config.zones_y,
        n_hotspots=config.n_hotspots,
        pulse_amplitude=_PULSE_AMPLITUDE[config.instantaneous_dynamics],
        rng=rng,
    )
    population = EntityPopulation(
        world,
        np.asarray(config.profile_mix),
        speed_scale=_SPEED_SCALE[config.instantaneous_dynamics],
        rng=rng,
    )
    churn = _CHURN_PROB[config.instantaneous_dynamics]
    emulator = GameEmulator(config)

    n_samples = config.n_samples
    sample_days = np.arange(n_samples) * (config.sample_minutes / (24.0 * 60.0))
    targets = np.round(
        emulator._population_curve(sample_days) * config.peak_load
    ).astype(int)

    population.spawn(int(targets[0]))
    counts = np.empty((n_samples, world.n_zones), dtype=np.int64)
    interactions = np.empty((n_samples, world.n_zones), dtype=np.int64)
    t_mark = timer.mark() if timer is not None else 0.0
    for s in range(n_samples):
        deficit = int(targets[s]) - population.size
        if deficit > 0:
            population.spawn(deficit)
        elif deficit < 0:
            population.despawn(-deficit)
        for _ in range(config.ticks_per_sample):
            world.advance_time(config.tick_seconds)
            world.churn_hotspots(churn)
            population.step(config.tick_seconds)
        counts[s] = population.zone_counts()
        if timer is not None:
            t_mark = timer.lap("emulate", t_mark)
        interactions[s] = interaction_counts_per_zone(
            world, population.positions, interaction_radius
        )
        if metrics is not None:
            c_samples.inc()
            c_ticks.inc(config.ticks_per_sample)
            c_pairs.inc(int(interactions[s].sum()))
            if timer is not None:
                t_mark = timer.lap("interactions", t_mark)
    if timer is not None:
        record_ambient_phases(timer)
    return InteractionTrace(
        zone_counts=counts, zone_interactions=interactions, config=config
    )


def load_interaction_correlation(trace: InteractionTrace) -> float:
    """Correlation between per-zone entity count and interaction count.

    Pooled over all (sample, zone) cells.  A strongly positive value —
    but far from a deterministic mapping — is the paper's point: load is
    driven by interactions, which entity counts only proxy; crowded
    zones hosting an arena fight generate disproportionately many pairs.
    """
    x = trace.zone_counts.reshape(-1).astype(np.float64)
    y = trace.zone_interactions.reshape(-1).astype(np.float64)
    if x.std() == 0 or y.std() == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])

"""The emulated entity population.

A structure-of-arrays container for all live entities: positions,
current and preferred AI profiles, movement targets and team
assignments.  All per-tick updates are vectorized over the population.
"""

from __future__ import annotations

import numpy as np

from repro.emulator.profiles import AIProfile, PROFILE_PARAMS
from repro.emulator.world import GameWorld

__all__ = ["EntityPopulation", "DEFAULT_ENTITY_SEED"]

_N_PROFILES = len(AIProfile)

#: Seed for the deterministic fallback generator used when no ``rng`` is
#: injected (distinct from the world's so the streams do not collide).
DEFAULT_ENTITY_SEED = 0x5EED + 1


class EntityPopulation:
    """All live entities of one emulation, stored as parallel arrays.

    Parameters
    ----------
    world:
        The game world entities inhabit.
    profile_mix:
        Preferred-profile probabilities, an array of length 4 summing
        to 1 in :class:`~repro.emulator.profiles.AIProfile` order.
    n_teams:
        Number of teams the TEAM-profile entities organize into.
    speed_scale:
        Global multiplier on profile speeds (instantaneous-dynamics
        lever).
    switch_prob:
        Per-tick probability that an entity deviates from / returns to
        its preferred profile (the paper's dynamic profile switching).
    rng:
        Source of randomness.
    """

    def __init__(
        self,
        world: GameWorld,
        profile_mix: np.ndarray,
        *,
        n_teams: int = 8,
        speed_scale: float = 1.0,
        switch_prob: float = 0.002,
        rng: np.random.Generator | None = None,
    ) -> None:
        mix = np.asarray(profile_mix, dtype=np.float64)
        if mix.shape != (_N_PROFILES,):
            raise ValueError(f"profile_mix must have shape ({_N_PROFILES},)")
        if mix.min() < 0 or not np.isclose(mix.sum(), 1.0):
            raise ValueError("profile_mix must be a probability vector")
        if n_teams <= 0:
            raise ValueError("n_teams must be positive")
        self.world = world
        self.profile_mix = mix
        self.n_teams = int(n_teams)
        self.speed_scale = float(speed_scale)
        self.switch_prob = float(switch_prob)
        # Deterministic fallback (RL001): mirrors GameWorld's seeded default.
        self._rng = rng if rng is not None else np.random.default_rng(DEFAULT_ENTITY_SEED)

        self.positions = np.empty((0, 2))
        self.preferred = np.empty(0, dtype=np.int64)
        self.profile = np.empty(0, dtype=np.int64)
        self.targets = np.empty((0, 2))
        self.team = np.empty(0, dtype=np.int64)
        # Index of the hotspot an entity is heading to (-1 = free target).
        self.target_hotspot = np.empty(0, dtype=np.int64)

        # Pre-extract per-profile parameter arrays for vectorized lookup.
        self._speeds = np.array(
            [PROFILE_PARAMS[AIProfile(i)].speed for i in range(_N_PROFILES)]
        )
        self._directedness = np.array(
            [PROFILE_PARAMS[AIProfile(i)].directedness for i in range(_N_PROFILES)]
        )
        self._retarget = np.array(
            [PROFILE_PARAMS[AIProfile(i)].retarget_prob for i in range(_N_PROFILES)]
        )

    # -- population management ----------------------------------------------

    @property
    def size(self) -> int:
        """Number of live entities."""
        return self.positions.shape[0]

    def spawn(self, n: int) -> None:
        """Add ``n`` entities with preferred profiles drawn from the mix.

        New arrivals spawn either near a hotspot (players log in where
        the action is) or at a random position, 50/50.
        """
        if n <= 0:
            return
        pos = self.world.random_positions(n)
        near_hotspot = self._rng.random(n) < 0.5
        k = int(near_hotspot.sum())
        if k:
            hpos = self.world.hotspot_positions()
            weights = self.world.hotspot_weights()
            chosen = self._rng.choice(len(hpos), size=k, p=weights)
            jitter = self._rng.normal(0.0, self.world.width * 0.02, size=(k, 2))
            pos[near_hotspot] = hpos[chosen] + jitter
        self.world.clamp(pos)
        preferred = self._rng.choice(_N_PROFILES, size=n, p=self.profile_mix)
        targets, target_hotspot = self._new_targets(preferred, pos)
        self.positions = np.vstack([self.positions, pos])
        self.preferred = np.concatenate([self.preferred, preferred])
        self.profile = np.concatenate([self.profile, preferred.copy()])
        self.targets = np.vstack([self.targets, targets])
        self.target_hotspot = np.concatenate([self.target_hotspot, target_hotspot])
        self.team = np.concatenate(
            [self.team, self._rng.integers(0, self.n_teams, size=n)]
        )

    def despawn(self, n: int) -> None:
        """Remove ``n`` uniformly chosen entities (player logouts)."""
        if n <= 0 or self.size == 0:
            return
        n = min(n, self.size)
        keep = np.ones(self.size, dtype=bool)
        gone = self._rng.choice(self.size, size=n, replace=False)
        keep[gone] = False
        self.positions = self.positions[keep]
        self.preferred = self.preferred[keep]
        self.profile = self.profile[keep]
        self.targets = self.targets[keep]
        self.target_hotspot = self.target_hotspot[keep]
        self.team = self.team[keep]

    # -- behaviour ------------------------------------------------------------

    def _new_targets(
        self, profiles: np.ndarray, positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Pick a fresh movement target per entity based on its profile.

        Returns ``(targets, target_hotspot)`` where ``target_hotspot``
        holds the chosen hotspot index for hotspot-seeking entities and
        -1 for free-roaming targets.
        """
        n = profiles.shape[0]
        targets = self.world.random_positions(n)  # default: scout waypoints
        target_hotspot = np.full(n, -1, dtype=np.int64)
        # Aggressive entities target hotspots (weighted by current rounds).
        agg = profiles == AIProfile.AGGRESSIVE
        k = int(agg.sum())
        if k:
            hpos = self.world.hotspot_positions()
            weights = self.world.hotspot_weights()
            chosen = self._rng.choice(len(hpos), size=k, p=weights)
            targets[agg] = hpos[chosen]
            target_hotspot[agg] = chosen
        # Campers hide near their current position.
        camp = profiles == AIProfile.CAMPER
        k = int(camp.sum())
        if k:
            targets[camp] = positions[camp] + self._rng.normal(
                0.0, self.world.width * 0.01, size=(k, 2)
            )
        # Team players' target is maintained per tick (team centroid).
        return targets, target_hotspot

    def _team_centroids(self) -> np.ndarray:
        """Centroid of each team (teams without members get the world centre)."""
        centroids = np.full(
            (self.n_teams, 2), [self.world.width / 2.0, self.world.height / 2.0]
        )
        counts = np.bincount(self.team, minlength=self.n_teams).astype(np.float64)
        sums_x = np.bincount(self.team, weights=self.positions[:, 0], minlength=self.n_teams)
        sums_y = np.bincount(self.team, weights=self.positions[:, 1], minlength=self.n_teams)
        nonzero = counts > 0
        centroids[nonzero, 0] = sums_x[nonzero] / counts[nonzero]
        centroids[nonzero, 1] = sums_y[nonzero] / counts[nonzero]
        return centroids

    def step(self, dt_seconds: float) -> None:
        """Advance all entities by one tick of ``dt_seconds``."""
        n = self.size
        if n == 0:
            return
        rng = self._rng

        # Dynamic profile switching: deviate from or revert to preference.
        switching = rng.random(n) < self.switch_prob
        k = int(switching.sum())
        if k:
            reverts = rng.random(k) < 0.5
            new_profiles = np.where(
                reverts,
                self.preferred[switching],
                rng.integers(0, _N_PROFILES, size=k),
            )
            self.profile[switching] = new_profiles
            t, th = self._new_targets(new_profiles, self.positions[switching])
            self.targets[switching] = t
            self.target_hotspot[switching] = th

        # Retargeting: per-profile spontaneous rates.  Hotspot-seeking
        # entities re-pick according to the *current* popularity
        # weights, so crowds continuously rebalance toward the rising
        # spots and drain from the fading ones — a first-order tracking
        # of the popularity cycle.
        retarget = rng.random(n) < self._retarget[self.profile]
        k = int(retarget.sum())
        if k:
            t, th = self._new_targets(
                self.profile[retarget], self.positions[retarget]
            )
            self.targets[retarget] = t
            self.target_hotspot[retarget] = th

        # Team players chase their team centroid every tick.
        team_mask = self.profile == AIProfile.TEAM
        if team_mask.any():
            centroids = self._team_centroids()
            self.targets[team_mask] = centroids[self.team[team_mask]]

        # Move: directed component toward target + random jitter.
        speeds = self._speeds[self.profile] * self.speed_scale * dt_seconds
        direct = self._directedness[self.profile]
        delta = self.targets - self.positions
        dist = np.linalg.norm(delta, axis=1)
        np.maximum(dist, 1e-9, out=dist)
        unit = delta / dist[:, None]
        jitter = rng.normal(0.0, 1.0, size=(n, 2))
        jn = np.linalg.norm(jitter, axis=1)
        np.maximum(jn, 1e-9, out=jn)
        jitter /= jn[:, None]
        step_len = np.minimum(speeds, dist)  # do not overshoot the target
        motion = (
            unit * (direct * step_len)[:, None]
            + jitter * ((1.0 - direct) * speeds)[:, None]
        )
        self.positions += motion
        self.world.clamp(self.positions)

    def zone_counts(self) -> np.ndarray:
        """Entity count per sub-zone (delegates to the world)."""
        return self.world.zone_counts(self.positions)

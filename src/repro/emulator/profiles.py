"""AI behaviour profiles of the emulated players.

The four profiles (Sec. IV-D1) match the four behavioural archetypes
most encountered in MMOGs (Bartle's taxonomy):

=============  ==============  ===========================================
profile        archetype       emulated behaviour
=============  ==============  ===========================================
``AGGRESSIVE`` the *killer*    seeks and interacts with opponents — moves
                               fast toward the nearest combat hotspot
``SCOUT``      the *explorer*  discovers uncharted zones — wanders toward
                               random far-away waypoints
``TEAM``       the *socializer* acts in a group — steers toward its
                               team's centroid
``CAMPER``     the *achiever*  hides and waits for opponents — nearly
                               stationary, occasionally relocating
=============  ==============  ===========================================

Each entity has a *preferred* profile but "can change the profiles
dynamically during the emulation"; switching is a sticky Markov process
parameterized on :class:`repro.emulator.emulator.EmulatorConfig`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["AIProfile", "ProfileParams", "PROFILE_PARAMS", "DynamicsLevel"]


class AIProfile(enum.IntEnum):
    """The four behavioural profiles (values index parameter arrays)."""

    AGGRESSIVE = 0
    SCOUT = 1
    TEAM = 2
    CAMPER = 3

    @property
    def archetype(self) -> str:
        """The Bartle archetype this profile models."""
        return _ARCHETYPES[self]


_ARCHETYPES = {
    AIProfile.AGGRESSIVE: "killer",
    AIProfile.SCOUT: "explorer",
    AIProfile.TEAM: "socializer",
    AIProfile.CAMPER: "achiever",
}


class DynamicsLevel(enum.IntEnum):
    """Coarse dynamics ratings, the ``+`` scale of Table I."""

    LOW = 1
    MEDIUM = 3
    HIGH = 5

    @property
    def plusses(self) -> str:
        """Table I-style rendering, e.g. ``'+++'``."""
        return "+" * int(self)


@dataclass(frozen=True)
class ProfileParams:
    """Movement parameters of one AI profile.

    Parameters
    ----------
    speed:
        Base movement speed in world units per second.
    directedness:
        Fraction of each step aimed at the profile's target (the rest is
        random jitter); 0 = pure random walk, 1 = beeline.
    retarget_prob:
        Per-tick probability of picking a new target (waypoint, hotspot
        or hiding place).
    """

    speed: float
    directedness: float
    retarget_prob: float

    def __post_init__(self) -> None:
        if self.speed < 0:
            raise ValueError("speed must be non-negative")
        if not 0.0 <= self.directedness <= 1.0:
            raise ValueError("directedness must be in [0, 1]")
        if not 0.0 <= self.retarget_prob <= 1.0:
            raise ValueError("retarget_prob must be in [0, 1]")


#: Baseline movement parameters per profile.  The emulator scales speeds
#: by its instantaneous-dynamics knob.
PROFILE_PARAMS: dict[AIProfile, ProfileParams] = {
    # Killers sprint between fights and stay locked on their target.
    AIProfile.AGGRESSIVE: ProfileParams(speed=6.0, directedness=0.95, retarget_prob=0.05),
    # Explorers move steadily toward far-away waypoints.
    AIProfile.SCOUT: ProfileParams(speed=3.5, directedness=0.7, retarget_prob=0.01),
    # Socializers drift with their group.
    AIProfile.TEAM: ProfileParams(speed=2.5, directedness=0.8, retarget_prob=0.005),
    # Achievers camp: barely move, rarely relocate.
    AIProfile.CAMPER: ProfileParams(speed=0.3, directedness=0.5, retarget_prob=0.002),
}

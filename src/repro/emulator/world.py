"""The emulated game world: a zoned 2-D map with interaction hotspots.

Following Sec. IV-B, the world is partitioned into equal rectangular
*sub-zones*; the emulator's output — and the predictor's input — is the
entity count per sub-zone.  *Hotspots* are the attraction points where
interaction concentrates (arena fights, markets, quest events); their
churn rate is the lever behind the *instantaneous dynamics* of Table I:
fast-moving hotspots drag crowds across zone boundaries within a couple
of samples, producing the spiky Type I signals of fast-paced games.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Hotspot", "GameWorld", "DEFAULT_WORLD_SEED"]

#: Seed for the deterministic fallback generator used when no ``rng`` is
#: injected; pass your own seeded generator to vary runs.
DEFAULT_WORLD_SEED = 0x5EED


@dataclass
class Hotspot:
    """One interaction hotspot.

    Attributes
    ----------
    position:
        World coordinates, shape ``(2,)``.
    strength:
        Baseline attractiveness; entities pick hotspots with
        probability proportional to (effective) strength.
    period_seconds / phase / pulse_amplitude:
        Periodic attraction pulsing, modelling *minigame rounds*
        (arena battles, market hours): the effective strength
        oscillates as ``strength * (1 + A * sin(2*pi*t/T + phase))``.
        ``pulse_amplitude = 0`` disables pulsing.
    """

    position: np.ndarray
    strength: float = 1.0
    period_seconds: float = 0.0
    phase: float = 0.0
    pulse_amplitude: float = 0.0

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=np.float64)
        if self.position.shape != (2,):
            raise ValueError("position must have shape (2,)")
        if self.strength <= 0:
            raise ValueError("strength must be positive")
        if not 0.0 <= self.pulse_amplitude <= 1.0:
            raise ValueError("pulse_amplitude must be in [0, 1]")
        if self.pulse_amplitude > 0 and self.period_seconds <= 0:
            raise ValueError("pulsing hotspots need a positive period")

    def is_active(self, time_seconds: float) -> bool:
        """Whether the spot is in the high half of its popularity cycle
        (non-pulsing spots are always active)."""
        if self.pulse_amplitude <= 0:
            return True
        return bool(
            np.sin(2.0 * np.pi * time_seconds / self.period_seconds + self.phase) >= 0.0
        )

    def effective_strength(self, time_seconds: float) -> float:
        """Attractiveness at a given time (>= a small positive floor).

        The popularity oscillates smoothly — minigame arenas and event
        areas fill and drain over tens of minutes as their rotation
        comes up — so crowd sizes track a smooth, learnable cycle.
        """
        if self.pulse_amplitude <= 0:
            return self.strength
        osc = 1.0 + self.pulse_amplitude * np.sin(
            2.0 * np.pi * time_seconds / self.period_seconds + self.phase
        )
        return max(self.strength * osc, 0.02 * self.strength)


class GameWorld:
    """A rectangular world split into a grid of sub-zones.

    Parameters
    ----------
    width, height:
        World extent in world units.
    zones_x, zones_y:
        Sub-zone grid resolution; ``n_zones = zones_x * zones_y``.
    n_hotspots:
        Number of concurrently active hotspots.
    rng:
        Random generator for hotspot placement/churn.
    """

    def __init__(
        self,
        width: float = 1000.0,
        height: float = 1000.0,
        zones_x: int = 8,
        zones_y: int = 8,
        *,
        n_hotspots: int = 6,
        pulse_amplitude: float = 0.0,
        pulse_period_range: tuple[float, float] = (2400.0, 6000.0),
        rng: np.random.Generator | None = None,
    ) -> None:
        if width <= 0 or height <= 0:
            raise ValueError("world extent must be positive")
        if zones_x <= 0 or zones_y <= 0:
            raise ValueError("zone grid must be positive")
        if n_hotspots <= 0:
            raise ValueError("need at least one hotspot")
        if not 0.0 <= pulse_amplitude <= 1.0:
            raise ValueError("pulse_amplitude must be in [0, 1]")
        if pulse_period_range[0] <= 0 or pulse_period_range[1] < pulse_period_range[0]:
            raise ValueError("pulse_period_range must be a positive (lo, hi)")
        self.width = float(width)
        self.height = float(height)
        self.zones_x = int(zones_x)
        self.zones_y = int(zones_y)
        self.pulse_amplitude = float(pulse_amplitude)
        self.pulse_period_range = (float(pulse_period_range[0]), float(pulse_period_range[1]))
        self.time_seconds = 0.0
        # Deterministic fallback (RL001): an unseeded generator here would
        # make default-constructed worlds irreproducible across runs.
        self._rng = rng if rng is not None else np.random.default_rng(DEFAULT_WORLD_SEED)
        self.hotspots: list[Hotspot] = [self._spawn_hotspot() for _ in range(n_hotspots)]
        self._hotspot_version = -1
        self._weights_cache = np.empty(0)
        self._cdf_cache = np.empty(0)
        self.refresh_hotspot_cache()

    def advance_time(self, dt_seconds: float) -> None:
        """Advance the world clock (drives hotspot pulsing)."""
        self.time_seconds += float(dt_seconds)

    # -- geometry -----------------------------------------------------------

    @property
    def n_zones(self) -> int:
        """Number of sub-zones."""
        return self.zones_x * self.zones_y

    def clamp(self, positions: np.ndarray) -> np.ndarray:
        """Clamp positions into the world rectangle (in place; returned)."""
        np.clip(positions[:, 0], 0.0, self.width, out=positions[:, 0])
        np.clip(positions[:, 1], 0.0, self.height, out=positions[:, 1])
        return positions

    def zone_of_xy(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Sub-zone index per coordinate pair; shape ``(n,)``.

        Column-wise twin of :meth:`zone_of` — same arithmetic on the
        separated coordinate arrays, so identical results on any
        layout.
        """
        ix = np.minimum((x / self.width * self.zones_x).astype(np.int64), self.zones_x - 1)
        iy = np.minimum((y / self.height * self.zones_y).astype(np.int64), self.zones_y - 1)
        ix = np.maximum(ix, 0)
        iy = np.maximum(iy, 0)
        return ix + iy * self.zones_x

    def zone_of(self, positions: np.ndarray) -> np.ndarray:
        """Sub-zone index of each position; shape ``(n,)``.

        Zones are numbered row-major: ``ix + iy * zones_x``.
        """
        pos = np.asarray(positions, dtype=np.float64)
        if pos.ndim == 1:
            pos = pos[None, :]
        return self.zone_of_xy(pos[:, 0], pos[:, 1])

    def zone_counts_xy(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Entity count per sub-zone from coordinate columns."""
        if x.shape[0] == 0:
            return np.zeros(self.n_zones, dtype=np.int64)
        return np.bincount(self.zone_of_xy(x, y), minlength=self.n_zones)

    def zone_counts(self, positions: np.ndarray) -> np.ndarray:
        """Entity count per sub-zone; shape ``(n_zones,)``."""
        if positions.shape[0] == 0:
            return np.zeros(self.n_zones, dtype=np.int64)
        return np.bincount(self.zone_of(positions), minlength=self.n_zones)

    def random_positions(self, n: int) -> np.ndarray:
        """``n`` uniform positions in the world; shape ``(n, 2)``."""
        out = np.empty((n, 2))
        out[:, 0] = self._rng.uniform(0.0, self.width, size=n)
        out[:, 1] = self._rng.uniform(0.0, self.height, size=n)
        return out

    # -- hotspots -----------------------------------------------------------

    def refresh_hotspot_cache(self) -> None:
        """Rebuild the structure-of-arrays view of :attr:`hotspots`.

        The per-tick readers (:meth:`hotspot_positions`,
        :meth:`hotspot_weights`, :meth:`hotspot_cdf`,
        :meth:`hotspot_active`) serve preallocated arrays instead of
        rebuilding Python lists every call — the emulator's hot path
        touches them several times per tick.  Call this after mutating
        :attr:`hotspots` directly; :meth:`churn_hotspots` calls it
        automatically.
        """
        spots = self.hotspots
        self._hs_pos = np.array([h.position for h in spots])
        self._hs_pos.flags.writeable = False
        self._hs_x = np.ascontiguousarray(self._hs_pos[:, 0])
        self._hs_x.flags.writeable = False
        self._hs_y = np.ascontiguousarray(self._hs_pos[:, 1])
        self._hs_y.flags.writeable = False
        self._hs_strength = np.array([h.strength for h in spots])
        self._hs_phase = np.array([h.phase for h in spots])
        self._hs_amp = np.array([h.pulse_amplitude for h in spots])
        # Non-pulsing spots may carry period 0; substitute 1 so the
        # vectorized oscillator never divides by zero (their oscillator
        # output is discarded by the pulsing mask below).
        period = np.array([h.period_seconds for h in spots])
        self._hs_period = np.where(self._hs_amp > 0, period, 1.0)
        self._hs_pulsing = self._hs_amp > 0
        self._hs_all_pulsing = bool(self._hs_pulsing.all())
        self._hs_floor = 0.02 * self._hs_strength
        # Persistent weight/CDF buffers, rewritten in place on refresh
        # (exposed read-only; the writeable flag is toggled around each
        # rewrite).  Holders of a previous return value observe the
        # update — they are caches keyed by world time, not snapshots.
        n = len(spots)
        self._osc_buf = np.empty(n)
        # The refresh writes through the writeable ``_buf`` aliases; the
        # ``_cache`` views handed to callers stay read-only throughout.
        self._weights_buf = np.empty(n)
        self._weights_cache = self._weights_buf.view()
        self._weights_cache.flags.writeable = False
        self._cdf_buf = np.empty(n)
        self._cdf_cache = self._cdf_buf.view()
        self._cdf_cache.flags.writeable = False
        self._hotspot_version += 1
        # Scalar cache key (cheaper to probe per tick than a tuple).
        self._w_time = np.nan  # nan never compares equal: first read refreshes
        self._w_ver = -1
        # A world with no pulsing hotspot has time-independent weights:
        # compute them once per hotspot set and skip the per-read probe.
        self._weights_static = not self._hs_pulsing.any()
        if self._weights_static:
            self._refresh_weights()

    def _refresh_weights(self) -> None:
        """Recompute the cached effective-strength weights and their CDF.

        Value-identical to evaluating :meth:`Hotspot.effective_strength`
        per spot (the scalar specification): same elementwise operations,
        so the same IEEE-754 results — the equivalence tests assert
        bitwise equality.
        """
        t = self.time_seconds
        w = self._weights_buf
        if self._weights_static:
            # No pulsing spot: weights reduce to the normalized strengths.
            np.divide(self._hs_strength, self._hs_strength.sum(), out=w)
        else:
            # The scalar specification, op for op over persistent buffers:
            # eff = max(strength * (1 + amp * sin(2*pi*t/T + phase)), floor)
            b = self._osc_buf
            np.divide(2.0 * np.pi * t, self._hs_period, out=b)
            np.add(b, self._hs_phase, out=b)
            np.sin(b, out=b)
            np.multiply(b, self._hs_amp, out=b)
            np.add(b, 1.0, out=b)
            np.multiply(self._hs_strength, b, out=b)
            np.maximum(b, self._hs_floor, out=b)
            if self._hs_all_pulsing:
                np.divide(b, b.sum(), out=w)
            else:
                np.copyto(w, self._hs_strength)
                np.copyto(w, b, where=self._hs_pulsing)  # == where(pulsing, eff, s)
                np.divide(w, w.sum(), out=w)
        cdf = self._cdf_buf
        w.cumsum(out=cdf)
        np.divide(cdf, cdf[-1], out=cdf)
        self._w_time = t
        self._w_ver = self._hotspot_version

    def _spawn_hotspot(self) -> Hotspot:
        pos = np.array(
            [self._rng.uniform(0, self.width), self._rng.uniform(0, self.height)]
        )
        if self.pulse_amplitude > 0:
            lo, hi = self.pulse_period_range
            return Hotspot(
                position=pos,
                strength=float(self._rng.uniform(0.5, 1.5)),
                period_seconds=float(self._rng.uniform(lo, hi)),
                phase=float(self._rng.uniform(0, 2 * np.pi)),
                pulse_amplitude=self.pulse_amplitude,
            )
        return Hotspot(position=pos, strength=float(self._rng.uniform(0.5, 1.5)))

    def hotspot_positions(self) -> np.ndarray:
        """Positions of all hotspots; shape ``(n_hotspots, 2)``.

        Returns a cached read-only array (rebuilt on churn); copy before
        mutating.
        """
        return self._hs_pos

    def hotspot_xy(self) -> tuple[np.ndarray, np.ndarray]:
        """Hotspot coordinates as separate cached read-only columns."""
        return self._hs_x, self._hs_y

    def hotspot_weights(self) -> np.ndarray:
        """Normalized hotspot selection probabilities at the current time.

        Cached per ``(time, hotspot set)`` and returned read-only, so
        the several per-tick readers (spawning, retargeting) share one
        computation.
        """
        if not self._weights_static and (
            self._w_time != self.time_seconds or self._w_ver != self._hotspot_version
        ):
            self._refresh_weights()
        return self._weights_cache

    def hotspot_cdf(self) -> np.ndarray:
        """Cumulative distribution over :meth:`hotspot_weights`.

        ``cdf.searchsorted(rng.random(k), side="right")`` draws hotspot
        indices exactly as ``rng.choice(n, size=k, p=weights)`` would —
        same consumed stream, same values — without re-deriving the CDF
        on every call.  Cached alongside the weights; read-only.
        """
        if not self._weights_static and (
            self._w_time != self.time_seconds or self._w_ver != self._hotspot_version
        ):
            self._refresh_weights()
        return self._cdf_cache

    def hotspot_active(self) -> np.ndarray:
        """Boolean round-in-progress flag per hotspot at the current time."""
        active = np.sin(
            2.0 * np.pi * self.time_seconds / self._hs_period + self._hs_phase
        ) >= 0.0
        return active | ~self._hs_pulsing

    def churn_hotspots(self, churn_prob: float) -> int:
        """Respawn each hotspot with probability ``churn_prob``.

        Returns the number of hotspots that moved.  This is the
        instantaneous-dynamics lever: each respawn relocates a crowd
        attractor, causing rapid zone-count shifts.
        """
        moved = 0
        spots = self.hotspots
        draw = self._rng.random
        for i in range(len(spots)):
            if draw() < churn_prob:
                spots[i] = self._spawn_hotspot()
                moved += 1
        if moved:
            self.refresh_hotspot_cache()
        return moved

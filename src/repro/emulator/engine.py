"""The vectorized emulator hot path.

:class:`VectorizedPopulation` is the performance twin of
:class:`~repro.emulator.entities.EntityPopulation`: same constructor,
same public surface (``spawn`` / ``despawn`` / ``step`` /
``zone_counts`` / ``positions``), and — crucially — the **same random
stream and the same IEEE-754 arithmetic**, so a run produces *bitwise
identical* traces and work counters.  The differential test battery
(``tests/emulator/test_differential.py``) enforces that contract; the
bench gate's exact-counter comparison enforces it end to end.

What makes it fast where the reference is slow:

* **Preallocated paired-row SoA.**  Entity state lives in ``(2, cap)``
  coordinate blocks and a ``(4, cap)`` attribute block with
  capacity-managed (amortized-doubling) growth: each row is contiguous,
  and x/y operations fuse into *single* ufunc calls over both rows
  (``(2, n) ∘ (n,)`` broadcasting iterates contiguously, unlike the
  reference's ``delta / dist[:, None]`` column broadcast, which costs
  4-5× more at emulation population sizes).  ``spawn`` writes into tail
  slots instead of ``vstack``-ing six arrays per sample.
* **Scratch buffers + size-cached views.**  Every per-tick intermediate
  (deltas, norms, jitter, masks) is a reusable ``out=`` buffer, and the
  population-sized views over the blocks are rebuilt only when the size
  changes (once per *sample*, at spawn/despawn).  The tick loop
  allocates almost nothing — which also collapses the ``tracemalloc``
  overhead the bench harness measures.
* **Incrementally maintained per-entity parameters.**  Movement speed,
  directedness, and retarget rate are materialized per entity and
  updated only at spawn/profile-switch time, replacing full-population
  table gathers on every tick.  The values come from the same 4-entry
  profile tables, pre-combined per tick length (``(speed * scale) * dt``
  gathered equals the reference's per-entity expression).
* **Exact RNG replays.**  ``rng.uniform(0, w, n)`` is ``w * rng.random(n)``
  bit for bit, so ``random_positions`` collapses into one fused
  ``random(2n)`` draw; hotspot selection replays ``Generator.choice``'s
  documented algorithm against the world's cached CDF
  (:meth:`~repro.emulator.world.GameWorld.hotspot_cdf`);
  ``standard_normal(out=)`` consumes the stream exactly like
  ``rng.normal(0, 1, (n, 2))``.  ``np.linalg.norm`` becomes the
  explicit multiply/add/sqrt chain (bitwise-identical: ``abs(x)**2``
  *is* ``x*x``).

The reference implementation stays the readable specification; pass
``reference=True`` to :meth:`~repro.emulator.emulator.GameEmulator.run`
to use it.
"""

from __future__ import annotations

import numpy as np

from repro.emulator.entities import DEFAULT_ENTITY_SEED
from repro.emulator.profiles import AIProfile, PROFILE_PARAMS
from repro.emulator.world import GameWorld
from repro.obs.trace import current_recorder

__all__ = ["VectorizedPopulation"]

_N_PROFILES = len(AIProfile)
_AGGRESSIVE = int(AIProfile.AGGRESSIVE)
_TEAM = int(AIProfile.TEAM)
_CAMPER = int(AIProfile.CAMPER)


class VectorizedPopulation:
    """Entity population with preallocated SoA state and scratch buffers.

    Constructor-compatible with
    :class:`~repro.emulator.entities.EntityPopulation` and bit-exact
    with it under the same seed (see the module docstring for how).
    """

    def __init__(
        self,
        world: GameWorld,
        profile_mix: np.ndarray,
        *,
        n_teams: int = 8,
        speed_scale: float = 1.0,
        switch_prob: float = 0.002,
        rng: np.random.Generator | None = None,
        capacity: int = 256,
    ) -> None:
        mix = np.asarray(profile_mix, dtype=np.float64)
        if mix.shape != (_N_PROFILES,):
            raise ValueError(f"profile_mix must have shape ({_N_PROFILES},)")
        if mix.min() < 0 or not np.isclose(mix.sum(), 1.0):
            raise ValueError("profile_mix must be a probability vector")
        if n_teams <= 0:
            raise ValueError("n_teams must be positive")
        self.world = world
        self.profile_mix = mix
        self.n_teams = int(n_teams)
        self.speed_scale = float(speed_scale)
        self.switch_prob = float(switch_prob)
        # Deterministic fallback (RL001): mirrors GameWorld's seeded default.
        self._rng = rng if rng is not None else np.random.default_rng(DEFAULT_ENTITY_SEED)

        # Preferred-profile CDF: searchsorted against it replays
        # Generator.choice(4, size=n, p=mix) draw for draw.
        self._mix_cdf = mix.cumsum()
        self._mix_cdf /= self._mix_cdf[-1]

        # Per-profile parameter tables (reference keeps the same three).
        self._speeds = np.array(
            [PROFILE_PARAMS[AIProfile(i)].speed for i in range(_N_PROFILES)]
        )
        self._directedness = np.array(
            [PROFILE_PARAMS[AIProfile(i)].directedness for i in range(_N_PROFILES)]
        )
        self._retarget = np.array(
            [PROFILE_PARAMS[AIProfile(i)].retarget_prob for i in range(_N_PROFILES)]
        )
        self._tables_dt: float | None = None
        self._spd_table = np.empty(_N_PROFILES)
        self._inv_direct = 1.0 - self._directedness
        # Stacked parameter table: one fancy gather `_ptable[:, profiles]`
        # fills all four per-entity parameter rows at once.  Row 1
        # (dt-scaled speed) is rewritten by :meth:`_refresh_params`.
        self._ptable = np.empty((4, _N_PROFILES))
        self._ptable[0] = self._retarget
        self._ptable[2] = self._directedness
        self._ptable[3] = self._inv_direct
        self._centre_x = world.width / 2.0
        self._centre_y = world.height / 2.0
        self._clip_lo = np.zeros((2, 1))
        self._clip_hi = np.array([[world.width], [world.height]])

        # Kernel-granularity tracing: resolved once at construction and
        # only when the installed recorder opted into fine spans (two
        # spans per tick is real overhead; the coarse default records
        # nothing here).  Spans never touch the RNG stream.
        rec = current_recorder()
        self._trace_rec = rec if rec is not None and rec.fine else None

        self._n = 0
        self._allocate(max(int(capacity), 16))

    # -- storage management -------------------------------------------------

    def _allocate(self, cap: int) -> None:
        """Allocate state + scratch blocks for ``cap`` entities."""
        self._cap = cap
        # State blocks (survive across ticks; copied on growth).
        self._P = np.empty((2, cap))  # positions: rows x, y
        self._T = np.empty((2, cap))  # targets: rows x, y
        self._S = np.empty((4, cap), dtype=np.int64)  # pref, prof, team, tgt_hs
        self._par = np.empty((4, cap))  # rate, speed*scale*dt, direct, 1-direct
        # Scratch (per-tick intermediates; never copied on growth).
        self._D = np.empty((2, cap))  # delta -> unit -> motion
        self._J = np.empty((2, cap))  # normalized jitter
        self._jit = np.empty((cap, 2))  # raw jitter (RNG fill order)
        self._jit2 = np.empty((cap, 2))  # jitter squares
        self._f = [np.empty(cap) for _ in range(4)]  # u, dist, jn, tmp
        self._bool = np.empty(cap, dtype=bool)
        self._bound_n = -1

    def _blocks(self) -> tuple[np.ndarray, ...]:
        return (self._P, self._T, self._S, self._par)

    def _bind(self) -> None:
        """Rebuild the size-``n`` working views over the SoA blocks.

        Runs only when the population size changed (spawn/despawn —
        once per sample), so the tick loop itself never slices.
        """
        n = self._n
        self._bound_n = n
        self.v_P = self._P[:, :n]
        self.v_px = self._P[0, :n]
        self.v_py = self._P[1, :n]
        self.v_T = self._T[:, :n]
        self.v_tx = self._T[0, :n]
        self.v_ty = self._T[1, :n]
        self.v_pref = self._S[0, :n]
        self.v_prof = self._S[1, :n]
        self.v_team = self._S[2, :n]
        self.v_tgt_hs = self._S[3, :n]
        self.v_rate = self._par[0, :n]
        self.v_spd = self._par[1, :n]
        self.v_dir = self._par[2, :n]
        self.v_inv = self._par[3, :n]
        self.v_D = self._D[:, :n]
        self.v_J = self._J[:, :n]
        self.v_jx0 = self._J[0, :n]
        self.v_jy0 = self._J[1, :n]
        self.v_jit = self._jit[:n]
        self.v_jx = self._jit[:n, 0]
        self.v_jy = self._jit[:n, 1]
        self.v_jit2 = self._jit2[:n]
        self.v_j2x = self._jit2[:n, 0]
        self.v_j2y = self._jit2[:n, 1]
        self.v_u, self.v_dist, self.v_jn, self.v_tmp = (f[:n] for f in self._f)
        self.v_mask = self._bool[:n]

    def _ensure_capacity(self, n: int) -> None:
        if n <= self._cap:
            return
        cap = self._cap
        while cap < n:
            cap *= 2
        old = self._blocks()
        live = self._n
        self._allocate(cap)
        for dst, src in zip(self._blocks(), old):
            dst[:, :live] = src[:, :live]

    def _refresh_params(self, dt_seconds: float) -> None:
        """Re-derive the per-entity parameter rows for a new tick length."""
        np.multiply(self._speeds, self.speed_scale, out=self._spd_table)
        self._spd_table *= dt_seconds
        self._ptable[1] = self._spd_table
        self._tables_dt = dt_seconds
        n = self._n
        # RA010 allowlist: this gather re-derives every per-entity row,
        # but only when the tick length changes (once per run in
        # practice), not per tick.
        self._par[:, :n] = self._ptable[:, self._S[1, :n]]  # reprolint: disable=RA010 - runs on dt change only

    def _set_params(self, idx: np.ndarray, profiles: np.ndarray) -> None:
        """Update the parameter rows for the entities at ``idx``."""
        # RA010 allowlist: k-sized gather for the k entities that
        # switched profile this tick (k ≪ n; zero most ticks).
        self._par[:, idx] = self._ptable[:, profiles]  # reprolint: disable=RA010 - k-sized profile-switch slow path

    # -- population management ----------------------------------------------

    @property
    def size(self) -> int:
        """Number of live entities."""
        return self._n

    @property
    def positions(self) -> np.ndarray:
        """Positions of the live entities; shape ``(n, 2)``.

        Assembled on demand from the coordinate rows (a copy, not a
        view — mutate via the engine API, not through this array).
        """
        return np.ascontiguousarray(self._P[:, : self._n].T)

    @property
    def targets(self) -> np.ndarray:
        """Movement target per live entity; shape ``(n, 2)`` (a copy)."""
        return np.ascontiguousarray(self._T[:, : self._n].T)

    @property
    def preferred(self) -> np.ndarray:
        """Preferred profile per live entity (view)."""
        return self._S[0, : self._n]

    @property
    def profile(self) -> np.ndarray:
        """Current profile per live entity (view)."""
        return self._S[1, : self._n]

    @property
    def team(self) -> np.ndarray:
        """Team id per live entity (view)."""
        return self._S[2, : self._n]

    @property
    def target_hotspot(self) -> np.ndarray:
        """Hotspot index per live entity, -1 for free targets (view)."""
        return self._S[3, : self._n]

    def spawn(self, n: int) -> None:
        """Add ``n`` entities (same draw sequence as the reference)."""
        if n <= 0:
            return
        world = self.world
        rng = self._rng
        # random_positions(n), fused: uniform(0, w, n) is w * random(n)
        # bit for bit, so one random(2n) covers the x then y draws.
        u2 = rng.random(n + n)
        px = world.width * u2[:n]
        py = world.height * u2[n:]
        near_hotspot = rng.random(n) < 0.5
        k = int(near_hotspot.sum())
        if k:
            chosen = self.world.hotspot_cdf().searchsorted(
                rng.random(k), side="right"
            )  # == rng.choice(n_hotspots, k, p=weights)
            jitter = rng.normal(0.0, world.width * 0.02, size=(k, 2))
            hx, hy = world.hotspot_xy()
            px[near_hotspot] = hx.take(chosen) + jitter[:, 0]
            py[near_hotspot] = hy.take(chosen) + jitter[:, 1]
        np.clip(px, 0.0, world.width, out=px)  # world.clamp, column-wise
        np.clip(py, 0.0, world.height, out=py)
        preferred = self._mix_cdf.searchsorted(rng.random(n), side="right")
        tx, ty, target_hotspot = self._new_targets(preferred, px, py)
        team = rng.integers(0, self.n_teams, size=n)

        base = self._n
        self._ensure_capacity(base + n)
        end = base + n
        self._P[0, base:end] = px
        self._P[1, base:end] = py
        self._S[0, base:end] = preferred
        self._S[1, base:end] = preferred
        self._T[0, base:end] = tx
        self._T[1, base:end] = ty
        self._S[3, base:end] = target_hotspot
        self._S[2, base:end] = team
        if self._tables_dt is not None:
            self._par[:, base:end] = self._ptable[:, preferred]
        self._n = end

    def despawn(self, n: int) -> None:
        """Remove ``n`` uniformly chosen entities (player logouts)."""
        if n <= 0 or self._n == 0:
            return
        n = min(n, self._n)
        live = self._n
        keep = np.ones(live, dtype=bool)
        gone = self._rng.choice(live, size=n, replace=False)
        keep[gone] = False
        idx = np.flatnonzero(keep)
        m = idx.size
        # take() materializes the gather before the slice assignment,
        # so compacting each block in place is safe.
        for a in self._blocks():
            a[:, :m] = a[:, :live].take(idx, axis=1)
        self._n = m

    # -- behaviour ------------------------------------------------------------

    def _new_targets(
        self, profiles: np.ndarray, px: np.ndarray, py: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fresh movement targets per entity (reference draw order).

        Takes and returns coordinate columns; ``px``/``py`` are the
        current positions of the affected entities.
        """
        world = self.world
        rng = self._rng
        # random_positions(k), fused (scout waypoints by default): the
        # uniforms are scaled in place inside the freshly drawn block.
        #
        # RA010 allowlist (whole function): retargeting draws k-sized
        # buffers where k is the number of entities retargeting *this
        # tick* — data-dependent, small, and the draw sizes are pinned
        # by the bitwise RNG contract (RA011), so they cannot move into
        # fixed out= scratch without changing the consumed stream shape.
        k = profiles.shape[0]
        u2 = rng.random(k + k)  # reprolint: disable=RA010 - k-sized draw, size pinned by the RNG contract
        tx = u2[:k]
        tx *= world.width
        ty = u2[k:]
        ty *= world.height
        target_hotspot = np.empty(k, dtype=np.int64)  # reprolint: disable=RA010 - k-sized result buffer
        target_hotspot.fill(-1)
        counts = np.bincount(profiles, minlength=_N_PROFILES)  # reprolint: disable=RA010 - N_PROFILES-sized, k-bounded
        if counts[_AGGRESSIVE]:
            agg = profiles == _AGGRESSIVE
            chosen = world.hotspot_cdf().searchsorted(  # reprolint: disable=RA010 - k-sized inverse-transform choice
                rng.random(int(counts[_AGGRESSIVE])), side="right"  # reprolint: disable=RA010 - draw size pinned by the RNG contract
            )  # == rng.choice(n_hotspots, ka, p=weights)
            hx, hy = world.hotspot_xy()
            tx[agg] = hx.take(chosen)  # reprolint: disable=RA010 - k-sized gather
            ty[agg] = hy.take(chosen)  # reprolint: disable=RA010 - k-sized gather
            target_hotspot[agg] = chosen
        if counts[_CAMPER]:
            camp = profiles == _CAMPER
            jitter = rng.normal(0.0, world.width * 0.01, size=(int(counts[_CAMPER]), 2))  # reprolint: disable=RA010 - draw size pinned by the RNG contract
            tx[camp] = px[camp] + jitter[:, 0]  # reprolint: disable=RA010 - k-sized camper adjustment
            ty[camp] = py[camp] + jitter[:, 1]  # reprolint: disable=RA010 - k-sized camper adjustment
        return tx, ty, target_hotspot

    def _team_centroids(self) -> tuple[np.ndarray, np.ndarray]:
        """Centroid coordinates per team (empty teams: world centre)."""
        team = self.v_team
        n_teams = self.n_teams
        # RA010 allowlist: three O(n_teams) outputs (n_teams is a small
        # config constant); bincount has no out= form and the inputs are
        # scanned once.
        counts = np.bincount(team, minlength=n_teams).astype(np.float64)  # reprolint: disable=RA010 - O(n_teams) accumulator
        cx = np.bincount(team, weights=self.v_px, minlength=n_teams)  # reprolint: disable=RA010 - O(n_teams) accumulator
        cy = np.bincount(team, weights=self.v_py, minlength=n_teams)  # reprolint: disable=RA010 - O(n_teams) accumulator
        if counts.min() > 0.0:  # the common case: every team populated
            cx /= counts
            cy /= counts
            return cx, cy
        nonzero = counts > 0
        np.divide(cx, counts, out=cx, where=nonzero)
        np.divide(cy, counts, out=cy, where=nonzero)
        empty = ~nonzero
        cx[empty] = self._centre_x
        cy[empty] = self._centre_y
        return cx, cy

    def step(self, dt_seconds: float) -> None:
        """Advance all entities by one tick of ``dt_seconds``.

        The body is the reference ``EntityPopulation.step`` unrolled
        row-wise over preallocated scratch: every elementwise operation
        (and its operand values) is preserved, so positions and the
        consumed random stream are bitwise identical — only the memory
        traffic changes.
        """
        if self._n == 0:
            return
        rng = self._rng
        if self._bound_n != self._n:
            self._bind()
        if self._tables_dt != dt_seconds:
            self._refresh_params(dt_seconds)

        prof = self.v_prof
        px, py = self.v_px, self.v_py
        tx, ty = self.v_tx, self.v_ty
        u = self.v_u
        mask = self.v_mask
        frec = self._trace_rec

        # Dynamic profile switching: deviate from or revert to preference.
        h_fine = frec.begin("engine.switch") if frec is not None else None
        rng.random(out=u)
        np.less(u, self.switch_prob, out=mask)
        # RA010 allowlist (rest of step): the guarded blocks below run
        # only for the k entities switching/retargeting this tick; their
        # k-sized buffers and draws are pinned by the bitwise RNG
        # contract (RA011).  The per-tick whole-array kernels stay out=.
        switching = mask.nonzero()[0]  # reprolint: disable=RA010 - index extraction, k-sized
        k = switching.size
        if k:
            reverts = rng.random(k) < 0.5  # reprolint: disable=RA010 - draw size pinned by the RNG contract
            new_profiles = np.where(  # reprolint: disable=RA010 - k-sized select
                reverts,
                self.v_pref.take(switching),  # reprolint: disable=RA010 - k-sized gather
                rng.integers(0, _N_PROFILES, size=k),  # reprolint: disable=RA010 - draw size pinned by the RNG contract
            )
            prof[switching] = new_profiles
            self._set_params(switching, new_profiles)
            t_x, t_y, th = self._new_targets(
                new_profiles, px.take(switching), py.take(switching)  # reprolint: disable=RA010 - k-sized gather
            )
            tx[switching] = t_x
            ty[switching] = t_y
            self.v_tgt_hs[switching] = th

        # Retargeting: per-profile spontaneous rates against the
        # *current* hotspot popularity (first-order crowd rebalancing).
        rng.random(out=u)
        np.less(u, self.v_rate, out=mask)
        retarget = mask.nonzero()[0]  # reprolint: disable=RA010 - index extraction, k-sized
        k = retarget.size
        if k:
            t_x, t_y, th = self._new_targets(
                prof.take(retarget), px.take(retarget), py.take(retarget)  # reprolint: disable=RA010 - k-sized gather
            )
            tx[retarget] = t_x
            ty[retarget] = t_y
            self.v_tgt_hs[retarget] = th

        # Team players chase their team centroid every tick.
        np.equal(prof, _TEAM, out=mask)
        members = mask.nonzero()[0]  # reprolint: disable=RA010 - index extraction, k-sized
        if members.size:
            cx, cy = self._team_centroids()
            tids = self.v_team.take(members)  # reprolint: disable=RA010 - k-sized gather
            tx[members] = cx.take(tids)  # reprolint: disable=RA010 - k-sized gather
            ty[members] = cy.take(tids)  # reprolint: disable=RA010 - k-sized gather
        if h_fine is not None:
            h_fine.end()
        h_fine = frec.begin("engine.move") if frec is not None else None

        # Move: directed component toward target + random jitter.  The
        # reference chain runs pairwise over the (2, n) coordinate
        # blocks — each row contiguous, x and y fused per ufunc call —
        # and is elementwise identical to the reference's (n, 2) ops.
        D = self.v_D
        J = self.v_J
        dist, jn = self.v_dist, self.v_jn
        np.subtract(self.v_T, self.v_P, out=D)
        np.multiply(D, D, out=J)  # squares, both rows in one call
        np.add(self.v_jx0, self.v_jy0, out=dist)
        np.sqrt(dist, out=dist)  # == np.linalg.norm(delta, axis=1)
        np.maximum(dist, 1e-9, out=dist)
        np.divide(D, dist, out=D)  # delta becomes `unit`
        rng.standard_normal(out=self.v_jit)  # == rng.normal(0, 1, (n, 2))
        np.multiply(self.v_jit, self.v_jit, out=self.v_jit2)
        np.add(self.v_j2x, self.v_j2y, out=jn)
        np.sqrt(jn, out=jn)
        np.maximum(jn, 1e-9, out=jn)
        np.divide(self.v_jx, jn, out=self.v_jx0)  # normalized jitter, rows
        np.divide(self.v_jy, jn, out=self.v_jy0)
        step_len = self.v_tmp
        np.minimum(self.v_spd, dist, out=step_len)
        step_len *= self.v_dir  # direct * step_len (commutative, bit-exact)
        scale2 = dist  # dist is dead past this point
        np.multiply(self.v_inv, self.v_spd, out=scale2)  # (1 - direct) * speeds
        np.multiply(D, step_len, out=D)  # unit * (direct * step_len)
        np.multiply(J, scale2, out=J)  # jitter * ((1 - direct) * speeds)
        np.add(D, J, out=D)  # delta becomes `motion`
        np.add(self.v_P, D, out=self.v_P)
        np.clip(self.v_P, self._clip_lo, self._clip_hi, out=self.v_P)  # clamp
        if h_fine is not None:
            h_fine.end()

    def zone_counts(self) -> np.ndarray:
        """Entity count per sub-zone (delegates to the world)."""
        n = self._n
        return self.world.zone_counts_xy(self._P[0, :n], self._P[1, :n])

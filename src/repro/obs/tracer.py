"""Opt-in step tracing: structured JSONL events from the inner loop.

A :class:`StepTracer` writes one JSON object per line to a file-like
sink.  Every event carries an ``event`` discriminator and the fields
listed in ``docs/observability.md``; numeric resource vectors are
serialized as 4-element lists ordered ``[cpu, memory, extnet_in,
extnet_out]``.

Events emitted by the instrumented simulator:

========================  =====================================================
``step``                  start of a simulation step (``step``, ``mode``)
``reconcile``             one (operator, region) reconciliation request
``lease_open``            a lease was created
``lease_expire``          a lease's requested duration elapsed
``match_reject``          a center was rejected while matching (``reason``)
``match``                 outcome of one match_request call
``score``                 per-game Ω/Υ contributions for one step
``violation``            an invariant violation (checker in collect mode)
``run_end``               simulation finished (totals)
========================  =====================================================

Tracing is opt-in and pays its cost only when installed: the simulator
holds ``tracer=None`` by default and guards every emit site with a
single ``is None`` test, mirroring the metrics registry.
"""

from __future__ import annotations

import json
from typing import IO, Any

__all__ = ["StepTracer"]


class StepTracer:
    """Writes structured JSONL trace events to a sink.

    Parameters
    ----------
    sink:
        A path (opened for writing, owned and closed by the tracer) or
        an open text file-like object (borrowed; caller closes).
    """

    def __init__(self, sink: str | IO[str]) -> None:
        if isinstance(sink, str):
            self._file: IO[str] = open(sink, "w", encoding="utf-8")
            self._owns_sink = True
        else:
            self._file = sink
            self._owns_sink = False
        self.events_written = 0
        self._closed = False

    def emit(self, event: str, **fields: Any) -> None:
        """Write one event line.  ``event`` is the discriminator."""
        if self._closed:
            raise ValueError("tracer is closed")
        record = {"event": event}
        record.update(fields)
        self._file.write(json.dumps(record, separators=(",", ":")))
        self._file.write("\n")
        self.events_written += 1

    def close(self) -> None:
        """Flush and (when the tracer opened the sink) close it."""
        if self._closed:
            return
        self._closed = True
        self._file.flush()
        if self._owns_sink:
            self._file.close()

    def __enter__(self) -> "StepTracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

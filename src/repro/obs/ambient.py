"""Ambient observation: a process-scoped probe the hot paths fall back to.

The ``repro bench`` harness must run *unmodified* experiment modules
(``repro.experiments.fig08_static_vs_dynamic.run()`` takes no
arguments) while still collecting deterministic work counters and
per-phase timings from every simulation, emulation, and predictor
evaluation the experiment performs.  Threading a
:class:`~repro.obs.registry.MetricsRegistry` argument through two dozen
experiment signatures would couple them all to the bench harness;
instead, this module keeps an explicit, opt-in **probe stack**:

* :func:`probe` pushes an :class:`AmbientProbe` for the duration of a
  ``with`` block;
* instrumented entry points (the ecosystem simulator, the game
  emulator, the predictor evaluators) resolve their ``metrics=None``
  default through :func:`ambient_metrics` — one call at entry, after
  which the usual ``if metrics is not None`` guards apply unchanged;
* the same entry points report their :class:`~repro.obs.timing.
  PhaseTimer` breakdowns via :func:`record_ambient_phases`, which the
  probe accumulates as a :class:`~repro.obs.timing.PhaseSnapshot` sum.

The stack lives in this module precisely because ``repro.obs`` is the
sanctioned impurity boundary (see RA001 in ``docs/static_analysis.md``):
like ``REPRO_INVARIANTS``, ambient observation is process-global state
by design, is empty unless a harness installed a probe, and never feeds
values back into simulation behaviour.  The simulator is
single-threaded, so a plain list suffices; nesting is supported (the
innermost probe wins) so a bench run can wrap code that itself probes.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.registry import MetricsRegistry
from repro.obs.timing import PhaseSnapshot, PhaseTimer

__all__ = [
    "AmbientProbe",
    "ambient_metrics",
    "current_probe",
    "probe",
    "record_ambient_phases",
]


class AmbientProbe:
    """One installed observation scope: a registry plus a phase roll-up."""

    __slots__ = ("registry", "phases")

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.phases = PhaseSnapshot()

    def record_phases(self, snapshot: PhaseSnapshot) -> None:
        """Fold one run's phase breakdown into the roll-up."""
        self.phases = self.phases + snapshot


#: The probe stack (innermost last).  Empty in normal operation: every
#: reader below then returns ``None``/no-ops and the instrumented entry
#: points behave exactly as before this module existed.
_PROBES: list[AmbientProbe] = []


def current_probe() -> AmbientProbe | None:
    """The innermost installed probe, or ``None``."""
    return _PROBES[-1] if _PROBES else None


def ambient_metrics() -> MetricsRegistry | None:
    """The innermost probe's registry, or ``None``.

    Instrumented entry points call this once to resolve a ``metrics=
    None`` default; all subsequent hot-path guards stay the usual
    ``if metrics is not None`` pointer test.
    """
    return _PROBES[-1].registry if _PROBES else None


def record_ambient_phases(timer: "PhaseTimer | PhaseSnapshot | None") -> None:
    """Report a finished run's phase breakdown to the innermost probe.

    No-op when no probe is installed or ``timer`` is ``None``, so call
    sites need no guard of their own.
    """
    if timer is None or not _PROBES:
        return
    snapshot = timer.snapshot() if isinstance(timer, PhaseTimer) else timer
    _PROBES[-1].record_phases(snapshot)


@contextmanager
def probe(registry: MetricsRegistry | None = None) -> Iterator[AmbientProbe]:
    """Install an :class:`AmbientProbe` for the duration of the block.

    ``registry`` defaults to a fresh :class:`MetricsRegistry`; the
    yielded probe exposes it (``probe.registry``) along with the
    accumulated ``probe.phases`` snapshot after the block exits.
    """
    installed = AmbientProbe(registry)
    _PROBES.append(installed)
    try:
        yield installed
    finally:
        _PROBES.remove(installed)

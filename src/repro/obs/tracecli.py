"""The ``repro trace`` subcommand: record, report, diff, export.

``record`` runs one registered experiment under a
:class:`~repro.obs.trace.SpanRecorder` (plus the sampling profiler) and
writes a ``trace_<name>.json`` recording.  ``--check`` additionally
runs the experiment *untraced* first and asserts the tracing contract
the CI ``trace`` job gates on:

* every deterministic work counter of the traced run is **exactly
  equal** to the untraced run (observability never changes the work);
* the measured self-overhead — traced wall time over untraced wall
  time — stays under ``--overhead-budget`` (default 3%).

``report`` summarizes a recording (top span paths, profiler stacks,
the overhead verdict).  ``diff`` attributes wall-time deltas between
two recordings per span path — the per-kernel deepening of ``repro
bench --compare``'s per-phase attribution.  ``export`` converts a
recording to Chrome trace-event JSON (loadable at
https://ui.perfetto.dev) or StepTracer-compatible JSONL.

Like the service and scenario CLIs, this module only parses arguments
and sequences library calls; everything testable lives in
:mod:`repro.obs.trace`.
"""

from __future__ import annotations

import argparse
import importlib
import sys
from pathlib import Path
from typing import Any

from repro.obs.registry import Histogram, MetricsRegistry
from repro.obs.trace import (
    SamplingProfiler,
    SpanRecorder,
    TraceRecording,
    chrome_trace,
    derive_trace_id,
    diff_recordings,
    recording,
    render_diff,
    render_report,
    steptracer_jsonl,
)

__all__ = ["add_trace_arguments", "run_from_args"]

#: The CI self-overhead budget: traced wall time may exceed the
#: untraced wall time by at most this fraction.
DEFAULT_OVERHEAD_BUDGET = 0.03


def add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``trace`` subcommand tree to ``parser``."""
    sub = parser.add_subparsers(dest="trace_command", required=True)

    record = sub.add_parser(
        "record",
        help="run one experiment under the span recorder + profiler "
        "and write a trace_<name>.json recording",
    )
    record.add_argument("experiment", help="registered experiment name (e.g. fig06)")
    record.add_argument(
        "--out", metavar="FILE", default=None,
        help="recording path (default: trace_<experiment>.json)",
    )
    record.add_argument(
        "--check", action="store_true",
        help="also run untraced first and assert exact counter equality "
        "plus the self-overhead budget (non-zero exit on violation)",
    )
    record.add_argument(
        "--overhead-budget", type=float, default=DEFAULT_OVERHEAD_BUDGET,
        metavar="FRAC",
        help="max traced/untraced wall-time overhead fraction for --check "
        f"(default: {DEFAULT_OVERHEAD_BUDGET})",
    )
    record.add_argument(
        "--check-runs", type=int, default=2, metavar="N",
        help="untraced/traced run pairs for --check; overhead compares "
        "the per-side minima, so noise spikes and first-run warmup "
        "cannot fake a regression (default: 2)",
    )
    record.add_argument(
        "--fine", action="store_true",
        help="record kernel-granularity spans too (per-tick engine "
        "kernels, per-region predict/match) — more detail, more overhead",
    )
    record.add_argument(
        "--capacity", type=int, default=1 << 15, metavar="N",
        help="ring-buffer capacity in events, a power of two (default: "
        "32768; older events are dropped on wrap, aggregates never are)",
    )
    record.add_argument(
        "--no-profile", action="store_true",
        help="disable the sampling profiler",
    )
    record.add_argument(
        "--profile-interval", type=float, default=0.005, metavar="SECONDS",
        help="profiler sampling interval (default: 0.005)",
    )
    record.add_argument(
        "--export-chrome", metavar="FILE", default=None,
        help="also write the Chrome trace-event/Perfetto export to FILE",
    )

    report = sub.add_parser(
        "report", help="summarize a recording (top span paths, profile)"
    )
    report.add_argument("file", help="trace_*.json recording")
    report.add_argument(
        "--top", type=int, default=20, metavar="N",
        help="span paths to show (default: 20)",
    )

    diff = sub.add_parser(
        "diff",
        help="per-span-path wall-time deltas between two recordings",
    )
    diff.add_argument("baseline", help="baseline trace_*.json")
    diff.add_argument("current", help="current trace_*.json")
    diff.add_argument(
        "--top", type=int, default=20, metavar="N",
        help="span paths to show, largest movement first (default: 20)",
    )
    diff.add_argument(
        "--format", choices=("human", "markdown"), default="human",
        help="output format (default: human)",
    )

    export = sub.add_parser(
        "export",
        help="convert a recording to Chrome trace-event JSON or "
        "StepTracer JSONL",
    )
    export.add_argument("file", help="trace_*.json recording")
    export.add_argument(
        "--format", choices=("chrome", "jsonl"), default="chrome",
        help="export format (default: chrome — load it in "
        "https://ui.perfetto.dev)",
    )
    export.add_argument(
        "--out", metavar="FILE", default=None,
        help="output path (default: <recording>.<chrome.json|jsonl>)",
    )


def _scalar_counters(registry: MetricsRegistry) -> dict[str, float]:
    """Every non-histogram instrument value — the determinism fingerprint."""
    return {
        instrument.name: float(instrument.value)
        for instrument in registry
        if not isinstance(instrument, Histogram)
    }


def _cmd_record(args: argparse.Namespace) -> int:
    from repro.cli import EXPERIMENTS
    from repro.experiments.common import clear_cache
    from repro.perf.runner import measure_callable

    name = args.experiment
    module_path = EXPERIMENTS.get(name)
    if module_path is None:
        print(
            f"error: unknown experiment {name!r} "
            f"(see `repro bench --list`)",
            file=sys.stderr,
        )
        return 2
    module = importlib.import_module(module_path)

    def traced_run() -> tuple[SpanRecorder, "dict[str, Any] | None", Any]:
        recorder = SpanRecorder(
            name,
            trace_id=derive_trace_id(name, 0),
            capacity=args.capacity,
            fine=args.fine,
        )
        profiler = (
            None if args.no_profile else SamplingProfiler(args.profile_interval)
        )
        clear_cache()
        with recording(recorder):
            if profiler is not None:
                profiler.start()
            try:
                run = measure_callable(name, module.run, mem=False)
            finally:
                profile = profiler.stop() if profiler is not None else None
        return recorder, profile, run

    # --check alternates untraced/traced pairs and compares the per-side
    # minima: a single A/B pair cannot separate a 3% budget from
    # machine noise (a loaded box jitters far beyond that), but noise
    # and first-run warmup only ever ADD time, so min-of-N converges on
    # the true cost from above.  The runs are deterministic, so every
    # recording is interchangeable; the last one becomes the artifact.
    base_counters: dict[str, float] | None = None
    base_wall = 0.0
    traced_walls: list[float] = []
    if args.check:
        pairs = max(1, args.check_runs)
        untraced_walls: list[float] = []
        for attempt in range(pairs):
            print(
                f"trace: untraced reference run {attempt + 1}/{pairs} "
                f"of {name!r}",
                file=sys.stderr,
            )
            clear_cache()
            base_run = measure_callable(name, module.run, mem=False)
            untraced_walls.append(base_run.bench.wall_seconds)
            base_counters = _scalar_counters(base_run.registry)
            print(
                f"trace: recording {name!r} ({attempt + 1}/{pairs})",
                file=sys.stderr,
            )
            recorder, profile, run = traced_run()
            traced_walls.append(run.bench.wall_seconds)
        base_wall = min(untraced_walls)
    else:
        print(f"trace: recording {name!r}", file=sys.stderr)
        recorder, profile, run = traced_run()
        traced_walls.append(run.bench.wall_seconds)
    traced_wall = min(traced_walls)
    counters = _scalar_counters(run.registry)

    exit_code = 0
    overhead: dict[str, Any] | None = None
    if args.check and base_counters is not None:
        fraction = (
            max(0.0, traced_wall - base_wall) / base_wall if base_wall > 0 else 0.0
        )
        overhead = {
            "fraction": fraction,
            "budget": args.overhead_budget,
            "runs": max(1, args.check_runs),
            "untraced_wall_seconds": base_wall,
            "traced_wall_seconds": traced_wall,
        }
        drift = {
            key
            for key in set(base_counters) | set(counters)
            if base_counters.get(key) != counters.get(key)
        }
        if drift:
            exit_code = 1
            for key in sorted(drift):
                print(
                    f"error: counter {key!r} drifted under tracing: "
                    f"{base_counters.get(key)} -> {counters.get(key)}",
                    file=sys.stderr,
                )
        else:
            print(
                f"trace: all {len(counters)} counters exactly equal the "
                "untraced run",
                file=sys.stderr,
            )
        if fraction >= args.overhead_budget:
            exit_code = 1
            print(
                f"error: tracing self-overhead {fraction * 100:.2f}% is over "
                f"the {args.overhead_budget * 100:.1f}% budget "
                f"({base_wall:.3f}s -> {traced_wall:.3f}s)",
                file=sys.stderr,
            )
        else:
            print(
                f"trace: self-overhead {fraction * 100:.2f}% "
                f"(budget {args.overhead_budget * 100:.1f}%)",
                file=sys.stderr,
            )

    rec = recorder.finish(
        wall_seconds=run.bench.wall_seconds,
        counters=counters,
        profile=profile,
        overhead=overhead,
    )
    out = Path(args.out) if args.out else Path(f"trace_{name}.json")
    rec.save(out)
    print(f"wrote {out}", file=sys.stderr)
    if args.export_chrome:
        _write_chrome(rec, Path(args.export_chrome))
    print(render_report(rec))
    return exit_code


def _write_chrome(rec: TraceRecording, out: Path) -> None:
    import json

    out.write_text(json.dumps(chrome_trace(rec)) + "\n", encoding="utf-8")
    print(f"wrote {out} (load it in https://ui.perfetto.dev)", file=sys.stderr)


def _load(path: str) -> TraceRecording:
    return TraceRecording.load(path)


def _cmd_report(args: argparse.Namespace) -> int:
    try:
        rec = _load(args.file)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_report(rec, top=args.top))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    try:
        base = _load(args.baseline)
        cur = _load(args.current)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    deltas = diff_recordings(base, cur)
    print(
        f"trace diff: {cur.name!r} ({cur.trace_id}) vs "
        f"{base.name!r} ({base.trace_id})"
    )
    if not deltas:
        print("  no span paths recorded on either side")
        return 0
    print(render_diff(deltas, fmt=args.format, top=args.top))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    try:
        rec = _load(args.file)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "chrome":
        out = Path(args.out) if args.out else Path(args.file).with_suffix(
            ".chrome.json"
        )
        _write_chrome(rec, out)
        return 0
    out = Path(args.out) if args.out else Path(args.file).with_suffix(".jsonl")
    lines = steptracer_jsonl(rec, str(out))
    print(f"wrote {out} ({lines} lines)", file=sys.stderr)
    return 0


def run_from_args(args: argparse.Namespace) -> int:
    """Dispatch a parsed ``repro trace ...`` invocation."""
    handlers = {
        "record": _cmd_record,
        "report": _cmd_report,
        "diff": _cmd_diff,
        "export": _cmd_export,
    }
    return handlers[args.trace_command](args)

"""Plain-text rendering of a run's observability data.

``render_report`` turns a :class:`~repro.obs.registry.MetricsRegistry`
snapshot plus an optional :class:`~repro.obs.timing.PhaseTimer` into
the summary the ``repro report`` CLI command prints: top-line counters
(leases, matches, rejections, violations), histogram summaries with
p50/p90/p99 quantiles, and a per-phase wall-clock table.
"""

from __future__ import annotations

from repro.obs.registry import Histogram, MetricsRegistry
from repro.obs.timing import PhaseSnapshot, PhaseTimer
from repro.reporting import render_table

__all__ = ["render_report"]


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return f"{int(value):,}"
    return f"{value:,.3f}"


def render_report(
    metrics: MetricsRegistry,
    timer: "PhaseTimer | PhaseSnapshot | dict[str, float] | None" = None,
    *,
    title: str = "Observability report",
) -> str:
    """Render counters/gauges, histograms, and phase timings as text.

    ``timer`` may be a live :class:`PhaseTimer`, a frozen
    :class:`PhaseSnapshot`, or the plain ``phase -> seconds`` dict a
    :class:`~repro.core.ecosystem.SimulationResult` carries in its
    ``timings`` field.
    """
    phases: PhaseSnapshot | None
    if isinstance(timer, dict):
        # Per-phase visit counts are not preserved in the plain dict.
        phases = PhaseSnapshot(timer, {})
    elif isinstance(timer, PhaseTimer):
        phases = timer.snapshot()
    else:
        phases = timer
    sections: list[str] = []

    scalar_rows = []
    histo_rows = []
    for inst in metrics:
        if isinstance(inst, Histogram):
            quantiles = inst.quantiles()
            histo_rows.append(
                (
                    inst.name,
                    f"{inst.count:,}",
                    _fmt(inst.mean),
                    _fmt(inst.min if inst.count else 0.0),
                    _fmt(quantiles["p50"]),
                    _fmt(quantiles["p90"]),
                    _fmt(quantiles["p99"]),
                    _fmt(inst.max if inst.count else 0.0),
                    _fmt(inst.stddev),
                )
            )
        else:
            scalar_rows.append((inst.name, _fmt(inst.value)))

    if scalar_rows:
        sections.append(
            render_table(["Metric", "Value"], scalar_rows, title=title)
        )
    if histo_rows:
        sections.append(
            render_table(
                ["Histogram", "Count", "Mean", "Min", "p50", "p90", "p99", "Max", "Stddev"],
                histo_rows,
                title="Distributions",
            )
        )
    if phases is not None and phases:
        timing_rows = [
            (phase, f"{secs:.3f}", f"{visits:,}" if visits else "", f"{share * 100:.1f}")
            for phase, secs, visits, share in phases.summary()
        ]
        timing_rows.append(("(total)", f"{phases.total:.3f}", "", "100.0"))
        sections.append(
            render_table(
                ["Phase", "Seconds", "Visits", "Share [%]"],
                timing_rows,
                title="Per-phase wall clock",
            )
        )
    if not sections:
        return f"{title}: no metrics recorded"
    return "\n\n".join(sections)

"""Plain-text rendering of a run's observability data.

``render_report`` turns a :class:`~repro.obs.registry.MetricsRegistry`
snapshot plus an optional :class:`~repro.obs.timing.PhaseTimer` into
the summary the ``repro report`` CLI command prints: top-line counters
(leases, matches, rejections, violations), histogram summaries, and a
per-phase wall-clock table.
"""

from __future__ import annotations

from repro.obs.registry import Histogram, MetricsRegistry
from repro.obs.timing import PhaseTimer
from repro.reporting import render_table

__all__ = ["render_report"]


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return f"{int(value):,}"
    return f"{value:,.3f}"


def render_report(
    metrics: MetricsRegistry,
    timer: "PhaseTimer | dict[str, float] | None" = None,
    *,
    title: str = "Observability report",
) -> str:
    """Render counters/gauges, histograms, and phase timings as text.

    ``timer`` may be a live :class:`PhaseTimer` or the plain
    ``phase -> seconds`` dict a :class:`~repro.core.ecosystem.
    SimulationResult` carries in its ``timings`` field.
    """
    if isinstance(timer, dict):
        seconds = timer
        timer = PhaseTimer()
        for phase, secs in seconds.items():
            timer.add(phase, secs)
            timer.visits[phase] = 0  # per-phase visit counts not preserved
    sections: list[str] = []

    scalar_rows = []
    histo_rows = []
    for inst in metrics:
        if isinstance(inst, Histogram):
            histo_rows.append(
                (
                    inst.name,
                    f"{inst.count:,}",
                    _fmt(inst.mean),
                    _fmt(inst.min if inst.count else 0.0),
                    _fmt(inst.max if inst.count else 0.0),
                    _fmt(inst.stddev),
                )
            )
        else:
            scalar_rows.append((inst.name, _fmt(inst.value)))

    if scalar_rows:
        sections.append(
            render_table(["Metric", "Value"], scalar_rows, title=title)
        )
    if histo_rows:
        sections.append(
            render_table(
                ["Histogram", "Count", "Mean", "Min", "Max", "Stddev"],
                histo_rows,
                title="Distributions",
            )
        )
    if timer is not None and timer.seconds:
        timing_rows = [
            (phase, f"{secs:.3f}", f"{visits:,}" if visits else "", f"{share * 100:.1f}")
            for phase, secs, visits, share in timer.summary()
        ]
        timing_rows.append(("(total)", f"{timer.total:.3f}", "", "100.0"))
        sections.append(
            render_table(
                ["Phase", "Seconds", "Visits", "Share [%]"],
                timing_rows,
                title="Per-phase wall clock",
            )
        )
    if not sections:
        return f"{title}: no metrics recorded"
    return "\n\n".join(sections)

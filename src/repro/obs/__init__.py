"""Simulation observability: metrics, step tracing, invariant checks.

The trace-driven inner loop (Sec. V) runs ~10,000 steps per
simulation; when a paper figure drifts there must be a way to see
*which* step, lease, or matching decision moved it.  This package
supplies the three instruments a serving stack would have:

* :mod:`repro.obs.registry` — a lightweight **metrics registry**
  (counters, gauges, histograms) threaded through the provisioner,
  the matching mechanism, the data centers, and the ecosystem
  simulator.  Near-zero overhead when not installed: hot paths guard
  every record with a single ``is None`` test;
* :mod:`repro.obs.tracer` — an opt-in **step tracer** emitting
  structured JSONL events (lease opens/expiries, match decisions,
  per-step scores) behind the ``trace=`` hook and the CLI ``--trace``
  flag;
* :mod:`repro.obs.invariants` — a sanitizer-style **runtime invariant
  checker** asserting conservation laws every simulation step
  (enabled in tests via ``REPRO_INVARIANTS=1``, off by default);
* :mod:`repro.obs.timing` — per-phase wall-clock accounting so
  benchmark regressions are attributable to reconcile vs. score vs.
  observe;
* :mod:`repro.obs.report` — plain-text rendering of the above
  (``repro report``);
* :mod:`repro.obs.ambient` — an opt-in process-scoped probe the
  instrumented entry points fall back to when no registry was passed
  explicitly, so the ``repro bench`` harness can observe unmodified
  experiment modules;
* :mod:`repro.obs.trace` — causal **span tracing** (Dapper-style
  trace/span ids with ``contextvars`` propagation across asyncio tasks
  and spawn workers) plus an always-on sampling profiler, recorded
  into a zero-allocation ring buffer and exported as Chrome
  trace-event/Perfetto JSON or StepTracer-compatible JSONL
  (``repro trace record|report|diff|export``).

See ``docs/observability.md`` for metric names, the trace event
schema, and the invariant list.
"""

from repro.obs.ambient import (
    AmbientProbe,
    ambient_metrics,
    current_probe,
    probe,
    record_ambient_phases,
)
from repro.obs.invariants import (
    InvariantChecker,
    InvariantViolation,
    invariants_forced,
)
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import render_report
from repro.obs.timing import PhaseSnapshot, PhaseTimer
from repro.obs.trace import (
    SamplingProfiler,
    SpanHandle,
    SpanRecorder,
    TraceRecording,
    chrome_trace,
    current_recorder,
    derive_trace_id,
    diff_recordings,
    export_context,
    recording,
    span,
    steptracer_jsonl,
)
from repro.obs.tracer import StepTracer

__all__ = [
    "SamplingProfiler",
    "SpanHandle",
    "SpanRecorder",
    "TraceRecording",
    "chrome_trace",
    "current_recorder",
    "derive_trace_id",
    "diff_recordings",
    "export_context",
    "recording",
    "span",
    "steptracer_jsonl",
    "AmbientProbe",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StepTracer",
    "InvariantChecker",
    "InvariantViolation",
    "ambient_metrics",
    "current_probe",
    "invariants_forced",
    "probe",
    "record_ambient_phases",
    "PhaseSnapshot",
    "PhaseTimer",
    "render_report",
]

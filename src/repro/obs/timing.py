"""Per-phase wall-clock accounting for the simulation loop.

A :class:`PhaseTimer` accumulates elapsed seconds per named phase
(``reconcile``, ``score``, ``observe``, ...) so that a benchmark
regression can be attributed to the phase that slowed down instead of
showing up as an opaque total.  Use it either as a context manager::

    with timer.phase("reconcile"):
        ...

or with explicit marks in a hot loop (no context-manager overhead)::

    t0 = timer.mark()
    ...
    t0 = timer.lap("reconcile", t0)   # returns the new mark

:meth:`PhaseTimer.snapshot` freezes the accumulated breakdown into a
:class:`PhaseSnapshot` — an immutable, serializable value that supports
``+`` so per-run breakdowns can be summed across simulations and
experiments (the ``repro bench`` harness stores them in the
``BENCH_*.json`` trajectory).

The timer is opt-in like the rest of the observability layer: the
simulator holds ``timer=None`` unless a metrics registry is installed.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Mapping

__all__ = ["PhaseSnapshot", "PhaseTimer"]


class PhaseSnapshot:
    """An immutable per-phase ``(seconds, visits)`` breakdown.

    Produced by :meth:`PhaseTimer.snapshot`; two snapshots merge with
    ``+`` (phase-wise sums), so the breakdowns of many runs roll up
    into one experiment- or suite-level attribution table.
    """

    __slots__ = ("_seconds", "_visits")

    def __init__(
        self,
        seconds: Mapping[str, float] | None = None,
        visits: Mapping[str, int] | None = None,
    ) -> None:
        self._seconds: dict[str, float] = dict(seconds or {})
        self._visits: dict[str, int] = {
            name: int((visits or {}).get(name, 0)) for name in self._seconds
        }

    @property
    def seconds(self) -> dict[str, float]:
        """Phase -> accumulated seconds (a defensive copy)."""
        return dict(self._seconds)

    @property
    def visits(self) -> dict[str, int]:
        """Phase -> visit count (a defensive copy)."""
        return dict(self._visits)

    @property
    def total(self) -> float:
        """Seconds accounted to all phases."""
        return sum(self._seconds.values())

    def __bool__(self) -> bool:
        return bool(self._seconds)

    def __add__(self, other: "PhaseSnapshot") -> "PhaseSnapshot":
        if not isinstance(other, PhaseSnapshot):
            return NotImplemented  # type: ignore[unreachable]
        seconds = dict(self._seconds)
        visits = dict(self._visits)
        for name, secs in other._seconds.items():
            seconds[name] = seconds.get(name, 0.0) + secs
            visits[name] = visits.get(name, 0) + other._visits.get(name, 0)
        return PhaseSnapshot(seconds, visits)

    def __radd__(self, other: "PhaseSnapshot | int") -> "PhaseSnapshot":
        # Support sum(snapshots) whose implicit start value is 0.
        if isinstance(other, int) and other == 0:
            return self
        if isinstance(other, PhaseSnapshot):
            return other.__add__(self)
        return NotImplemented  # type: ignore[unreachable]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PhaseSnapshot):
            return NotImplemented
        return self._seconds == other._seconds and self._visits == other._visits

    def __repr__(self) -> str:
        phases = ", ".join(
            f"{name}={secs:.3f}s/{self._visits.get(name, 0)}"
            for name, secs in sorted(self._seconds.items())
        )
        return f"PhaseSnapshot({phases})"

    def to_dict(self) -> dict[str, dict[str, float | int]]:
        """JSON-ready ``{phase: {"seconds": s, "visits": n}}`` mapping,
        sorted by phase name for stable serialization."""
        return {
            name: {"seconds": self._seconds[name], "visits": self._visits.get(name, 0)}
            for name in sorted(self._seconds)
        }

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Mapping[str, float | int]]
    ) -> "PhaseSnapshot":
        """Inverse of :meth:`to_dict` (tolerates missing ``visits``)."""
        seconds: dict[str, float] = {}
        visits: dict[str, int] = {}
        for name, entry in data.items():
            seconds[name] = float(entry["seconds"])
            visits[name] = int(entry.get("visits", 0))
        return cls(seconds, visits)

    def summary(self) -> list[tuple[str, float, int, float]]:
        """``(phase, seconds, visits, share-of-total)`` rows, slowest first."""
        total = self.total or 1.0
        return [
            (name, secs, self._visits.get(name, 0), secs / total)
            for name, secs in sorted(self._seconds.items(), key=lambda kv: -kv[1])
        ]


class PhaseTimer:
    """Accumulates wall-clock seconds and visit counts per phase."""

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.visits: dict[str, int] = {}
        self._start = time.perf_counter()

    def add(self, phase: str, seconds: float) -> None:
        self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds
        self.visits[phase] = self.visits.get(phase, 0) + 1

    def mark(self) -> float:
        """A raw timestamp for :meth:`lap`."""
        return time.perf_counter()

    def lap(self, phase: str, since: float) -> float:
        """Charge the time since ``since`` to ``phase``; return now."""
        now = time.perf_counter()
        self.add(phase, now - since)
        return now

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - t0)

    @property
    def total(self) -> float:
        """Seconds accounted to all phases."""
        return sum(self.seconds.values())

    @property
    def elapsed(self) -> float:
        """Wall-clock seconds since the timer was created."""
        return time.perf_counter() - self._start

    def snapshot(self) -> PhaseSnapshot:
        """Freeze the current breakdown into a :class:`PhaseSnapshot`."""
        return PhaseSnapshot(dict(self.seconds), dict(self.visits))

    def __add__(self, other: "PhaseTimer | PhaseSnapshot") -> PhaseSnapshot:
        """Merge with another timer or snapshot into a snapshot sum."""
        if isinstance(other, PhaseTimer):
            return self.snapshot() + other.snapshot()
        if isinstance(other, PhaseSnapshot):
            return self.snapshot() + other
        return NotImplemented  # type: ignore[unreachable]

    def summary(self) -> list[tuple[str, float, int, float]]:
        """``(phase, seconds, visits, share-of-total)`` rows, slowest first."""
        total = self.total or 1.0
        return [
            (name, secs, self.visits[name], secs / total)
            for name, secs in sorted(
                self.seconds.items(), key=lambda kv: -kv[1]
            )
        ]

"""Per-phase wall-clock accounting for the simulation loop.

A :class:`PhaseTimer` accumulates elapsed seconds per named phase
(``reconcile``, ``score``, ``observe``, ...) so that a benchmark
regression can be attributed to the phase that slowed down instead of
showing up as an opaque total.  Use it either as a context manager::

    with timer.phase("reconcile"):
        ...

or with explicit marks in a hot loop (no context-manager overhead)::

    t0 = timer.mark()
    ...
    t0 = timer.lap("reconcile", t0)   # returns the new mark

The timer is opt-in like the rest of the observability layer: the
simulator holds ``timer=None`` unless a metrics registry is installed.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["PhaseTimer"]


class PhaseTimer:
    """Accumulates wall-clock seconds and visit counts per phase."""

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.visits: dict[str, int] = {}
        self._start = time.perf_counter()

    def add(self, phase: str, seconds: float) -> None:
        self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds
        self.visits[phase] = self.visits.get(phase, 0) + 1

    def mark(self) -> float:
        """A raw timestamp for :meth:`lap`."""
        return time.perf_counter()

    def lap(self, phase: str, since: float) -> float:
        """Charge the time since ``since`` to ``phase``; return now."""
        now = time.perf_counter()
        self.add(phase, now - since)
        return now

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - t0)

    @property
    def total(self) -> float:
        """Seconds accounted to all phases."""
        return sum(self.seconds.values())

    @property
    def elapsed(self) -> float:
        """Wall-clock seconds since the timer was created."""
        return time.perf_counter() - self._start

    def summary(self) -> list[tuple[str, float, int, float]]:
        """``(phase, seconds, visits, share-of-total)`` rows, slowest first."""
        total = self.total or 1.0
        return [
            (name, secs, self.visits[name], secs / total)
            for name, secs in sorted(
                self.seconds.items(), key=lambda kv: -kv[1]
            )
        ]

"""Sanitizer-style runtime invariant checks for the simulator.

The provisioning loop maintains three ledgers that must agree at every
step: the per-center allocation totals, the provisioner's per-key
running totals, and the live leases themselves (the ground truth).
The bookkeeping is deliberately incremental (never recomputed by
summing leases — see ``core/provisioner.py``), which is exactly the
kind of code a drifting float or a missed release corrupts silently.

:class:`InvariantChecker` recomputes the ground truth and asserts the
conservation laws:

I1. **Center ledger**: each center's allocated total equals the sum of
    its live leases' resource vectors.
I2. **Capacity**: no center exceeds its capacity on any of the four
    resource types.
I3. **Provisioner ledger**: each (operator, game, region) running
    total equals the sum of that key's live leases, and the per-center
    breakdown agrees.
I4. **Lease lifetime**: no live lease has outlived its requested
    duration (after the step's expiry pass), and every lease respects
    its policy's minimum duration.
I5. **Scoring consistency**: a zero recorded deficit implies demand ≤
    allocation for that resource (Υ(t) = 0 ⇒ no shortfall) — checked
    from the simulator where the actual load is known.

Checks are O(total live leases), far too slow for always-on use in a
10,000-step run at full scale — they are enabled in tests and forced
globally with ``REPRO_INVARIANTS=1`` (the CI invariants job).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.provisioner import _ProvisionerBase
    from repro.datacenter.center import DataCenter
    from repro.obs.registry import MetricsRegistry
    from repro.obs.tracer import StepTracer

__all__ = ["InvariantChecker", "InvariantViolation", "invariants_forced"]


def invariants_forced() -> bool:
    """Whether ``REPRO_INVARIANTS`` forces checking on globally."""
    return os.environ.get("REPRO_INVARIANTS", "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


class InvariantViolation(AssertionError):
    """A conservation law did not hold at some simulation step."""


class InvariantChecker:
    """Recomputes ground truth each step and asserts the ledgers agree.

    Parameters
    ----------
    centers:
        The platform under check.
    tol:
        Absolute tolerance on resource-unit comparisons (incremental
        float bookkeeping accumulates rounding at ~1e-12 per op).
    collect:
        When ``True``, violations are appended to :attr:`violations`
        instead of raising — used by the checker's own tests and by
        trace-everything debugging runs.
    tracer:
        Optional :class:`~repro.obs.tracer.StepTracer`; every
        violation is also emitted as a ``violation`` trace event.
    metrics:
        Optional registry; violations increment
        ``invariants.violations``.
    """

    def __init__(
        self,
        centers: Sequence["DataCenter"],
        *,
        tol: float = 1e-6,
        collect: bool = False,
        tracer: "StepTracer | None" = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.centers = list(centers)
        self.tol = float(tol)
        self.collect = bool(collect)
        self.tracer = tracer
        self.metrics = metrics
        self.violations: list[str] = []
        self.checks_run = 0

    # -- violation plumbing -------------------------------------------------

    def _fail(self, invariant: str, step: int, message: str) -> None:
        full = f"[{invariant}] {message}"
        self.violations.append(full)
        if self.metrics is not None:
            self.metrics.counter("invariants.violations").inc()
        if self.tracer is not None:
            self.tracer.emit("violation", step=step, invariant=invariant, message=full)
        if not self.collect:
            raise InvariantViolation(full)

    # -- per-step checks ----------------------------------------------------

    def check_centers(self, step: int) -> None:
        """I1 + I2: center ledgers vs. live leases, and capacity."""
        self.checks_run += 1
        for center in self.centers:
            recomputed = np.zeros(4)
            for lease in center.leases():
                recomputed += lease.resources.values
            ledger = center.allocated.values
            if not np.allclose(ledger, recomputed, atol=self.tol):
                self._fail(
                    "I1",
                    step,
                    f"step {step}: {center.name} ledger {ledger.tolist()} != "
                    f"sum of live leases {recomputed.tolist()}",
                )
            cap = center.capacity.values
            over = ledger - cap
            if np.any(over > self.tol):
                self._fail(
                    "I2",
                    step,
                    f"step {step}: {center.name} allocated {ledger.tolist()} "
                    f"exceeds capacity {cap.tolist()}",
                )

    def check_provisioner(self, provisioner: "_ProvisionerBase", step: int) -> None:
        """I3 + I4: provisioner running totals and lease lifetimes."""
        for key, heap in provisioner._heaps.items():
            recomputed = np.zeros(4)
            per_center: dict[str, np.ndarray] = {}
            for end_step, _, center, lease in heap:
                recomputed += lease.resources.values
                acc = per_center.get(center.name)
                if acc is None:
                    per_center[center.name] = lease.resources.values.copy()
                else:
                    acc += lease.resources.values
                if end_step <= step:
                    self._fail(
                        "I4",
                        step,
                        f"step {step}: lease {lease.lease_id} ({key}) outlived its "
                        f"requested duration (end_step {end_step})",
                    )
                if lease.end_step - lease.start_step <= 0:
                    self._fail(
                        "I4",
                        step,
                        f"step {step}: lease {lease.lease_id} ({key}) has a "
                        f"non-positive duration",
                    )
            total = provisioner._totals.get(key)
            total_arr = np.zeros(4) if total is None else total
            if not np.allclose(total_arr, recomputed, atol=self.tol):
                self._fail(
                    "I3",
                    step,
                    f"step {step}: running total for {key} {total_arr.tolist()} != "
                    f"sum of live leases {recomputed.tolist()}",
                )
            tracked = provisioner._by_center.get(key, {})
            for name, vec in per_center.items():
                entry = tracked.get(name)
                entry_arr = np.zeros(4) if entry is None else entry.total
                if not np.allclose(entry_arr, vec, atol=self.tol):
                    self._fail(
                        "I3",
                        step,
                        f"step {step}: per-center total for {key}@{name} "
                        f"{entry_arr.tolist()} != lease sum {vec.tolist()}",
                    )

    def check_score(
        self,
        game: str,
        step: int,
        allocated: np.ndarray,
        load: np.ndarray,
        deficit: np.ndarray,
    ) -> None:
        """I5: zero deficit implies demand ≤ allocation, per resource."""
        zero_deficit = deficit <= self.tol
        shortfall = load - allocated
        bad = zero_deficit & (shortfall > self.tol)
        if np.any(bad):
            idx = int(np.argmax(bad))
            self._fail(
                "I5",
                step,
                f"step {step}: game {game!r} reports zero deficit on resource "
                f"{idx} but load {load[idx]:.6f} exceeds allocation "
                f"{allocated[idx]:.6f}",
            )

    def check_step(self, provisioner: "_ProvisionerBase", step: int) -> None:
        """Run the ledger checks (I1-I4) for one step."""
        self.check_centers(step)
        self.check_provisioner(provisioner, step)

    @property
    def ok(self) -> bool:
        """Whether no violation has been observed so far."""
        return not self.violations

"""A lightweight metrics registry: counters, gauges, histograms.

Design constraints, in order:

1. **Near-zero overhead when disabled.**  Observability is off by
   default; every instrumented hot path holds an optional registry and
   guards with ``if metrics is not None`` — one pointer test per
   record, no call, no allocation.  (The Fig. 8 benchmark budget is a
   <5 % wall-clock envelope for the whole layer.)
2. **Cheap when enabled.**  Instruments are plain attribute updates —
   no locks (the simulator is single-threaded), no label hashing on
   the hot path: callers bind the instrument once
   (``self._c_opened = metrics.counter("provisioner.leases_opened")``)
   and call ``inc()`` / ``observe()`` afterwards.
3. **Introspectable.**  ``snapshot()`` returns one flat
   ``name -> value`` dict suitable for reports, golden tests, and
   JSON serialization.

Metric names are dotted paths (``matching.rejected.latency``); the
conventional names used by the simulator are listed in
``docs/observability.md``.
"""

from __future__ import annotations

import math
from typing import Iterator, TypeVar

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Value-constrained so ``_get(name, Counter)`` types as ``Counter``.
_InstrumentT = TypeVar("_InstrumentT", "Counter", "Gauge", "Histogram")


class Counter:
    """A monotonically increasing count (events, units)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value:g})"


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value:g})"


#: Geometric bucket resolution: 8 buckets per power of two, i.e. bucket
#: edges at ``2**(k/8)`` — every reported quantile is within ~±4.5 % of
#: the true value.  Deterministic (no reservoir sampling), O(1) memory
#: per touched bucket, and mergeable across registries.
_BUCKETS_PER_OCTAVE = 8


class Histogram:
    """Streaming summary of a value distribution.

    Tracks count / sum / min / max / sum-of-squares (for the standard
    deviation) plus a sparse geometric bucket sketch, so p50/p90/p99
    quantile summaries are available without keeping samples.  Buckets
    are sign-partitioned (Υ contributions are negative) with an exact
    zero bucket; quantiles carry the bucket grid's ~±4.5 % relative
    error and are clamped into the observed ``[min, max]`` range.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_sumsq", "_pos", "_neg", "_zero")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._sumsq = 0.0
        self._pos: dict[int, int] = {}
        self._neg: dict[int, int] = {}
        self._zero = 0

    @staticmethod
    def _bucket_index(magnitude: float) -> int:
        return math.floor(math.log2(magnitude) * _BUCKETS_PER_OCTAVE)

    @staticmethod
    def _bucket_value(index: int) -> float:
        # Geometric bucket midpoint.
        return 2.0 ** ((index + 0.5) / _BUCKETS_PER_OCTAVE)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self._sumsq += value * value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value > 0.0:
            idx = self._bucket_index(value)
            self._pos[idx] = self._pos.get(idx, 0) + 1
        elif value < 0.0:
            idx = self._bucket_index(-value)
            self._neg[idx] = self._neg.get(idx, 0) + 1
        else:
            self._zero += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        if self.count < 2:
            return 0.0
        var = self._sumsq / self.count - self.mean**2
        return math.sqrt(max(var, 0.0))

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (``0 <= q <= 1``) of the stream.

        Walks the sign-partitioned bucket sketch in value order; the
        result is a bucket midpoint clamped into ``[min, max]``, with
        the grid's ~±4.5 % relative error.  0.0 for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        cumulative = 0
        # Negative values, most negative (largest magnitude) first.
        for idx in sorted(self._neg, reverse=True):
            cumulative += self._neg[idx]
            if cumulative >= rank:
                return self._clamp(-self._bucket_value(idx))
        cumulative += self._zero
        if cumulative >= rank:
            return self._clamp(0.0)
        for idx in sorted(self._pos):
            cumulative += self._pos[idx]
            if cumulative >= rank:
                return self._clamp(self._bucket_value(idx))
        return self.max  # unreachable in practice: counts always cover rank

    def _clamp(self, value: float) -> float:
        return min(max(value, self.min), self.max)

    def quantiles(self) -> dict[str, float]:
        """The conventional p50/p90/p99 summary of the stream."""
        return {
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    def summary(self) -> dict[str, float]:
        """Full JSON-ready summary: moments plus quantiles."""
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "stddev": self.stddev,
            **self.quantiles(),
        }

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's stream into this one (bucket-exact)."""
        self.count += other.count
        self.total += other.total
        self._sumsq += other._sumsq
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        self._zero += other._zero
        for idx, n in other._pos.items():
            self._pos[idx] = self._pos.get(idx, 0) + n
        for idx, n in other._neg.items():
            self._neg[idx] = self._neg.get(idx, 0) + n

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.count}, mean={self.mean:g})"


class MetricsRegistry:
    """Factory and container for named instruments.

    Instruments are memoized by name: asking twice for
    ``counter("x")`` returns the same object, so independently wired
    components (provisioner, centers, matcher) share series.  Asking
    for an existing name with a *different* instrument kind is an
    error — silent type confusion would corrupt reports.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type[_InstrumentT]) -> _InstrumentT:
        inst = self._instruments.get(name)
        if inst is None:
            inst = kind(name)
            self._instruments[name] = inst
        elif type(inst) is not kind:
            raise TypeError(
                f"metric {name!r} already registered as {type(inst).__name__}, "
                f"requested {kind.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        return iter(sorted(self._instruments.values(), key=lambda i: i.name))

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        """Look up an instrument without creating it."""
        return self._instruments.get(name)

    def value(self, name: str, default: float = 0.0) -> float:
        """Scalar value of a counter/gauge (0 when never touched)."""
        inst = self._instruments.get(name)
        if inst is None:
            return default
        if isinstance(inst, Histogram):
            raise TypeError(f"metric {name!r} is a histogram; read .snapshot()")
        return inst.value

    def snapshot(self) -> dict[str, float | dict[str, float]]:
        """Flat ``name -> value`` view (histograms become summary dicts
        including the p50/p90/p99 quantiles)."""
        out: dict[str, float | dict[str, float]] = {}
        for inst in self:
            if isinstance(inst, Histogram):
                out[inst.name] = inst.summary()
            else:
                out[inst.name] = inst.value
        return out

    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold another registry's instruments into this one.

        Counters and gauges add their values; histograms merge their
        streams bucket-exactly.  Same-name instruments of different
        kinds raise ``TypeError`` (as in :meth:`_get`).  Used by the
        bench harness to roll per-experiment registries into one
        suite-level registry for the exporters.
        """
        for inst in other:
            if isinstance(inst, Histogram):
                self.histogram(inst.name).merge(inst)
            elif isinstance(inst, Counter):
                self.counter(inst.name).inc(inst.value)
            else:
                self.gauge(inst.name).inc(inst.value)

    def reset(self) -> None:
        """Drop every instrument (tests, repeated runs)."""
        self._instruments.clear()

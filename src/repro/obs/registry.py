"""A lightweight metrics registry: counters, gauges, histograms.

Design constraints, in order:

1. **Near-zero overhead when disabled.**  Observability is off by
   default; every instrumented hot path holds an optional registry and
   guards with ``if metrics is not None`` — one pointer test per
   record, no call, no allocation.  (The Fig. 8 benchmark budget is a
   <5 % wall-clock envelope for the whole layer.)
2. **Cheap when enabled.**  Instruments are plain attribute updates —
   no locks (the simulator is single-threaded), no label hashing on
   the hot path: callers bind the instrument once
   (``self._c_opened = metrics.counter("provisioner.leases_opened")``)
   and call ``inc()`` / ``observe()`` afterwards.
3. **Introspectable.**  ``snapshot()`` returns one flat
   ``name -> value`` dict suitable for reports, golden tests, and
   JSON serialization.

Metric names are dotted paths (``matching.rejected.latency``); the
conventional names used by the simulator are listed in
``docs/observability.md``.
"""

from __future__ import annotations

import math
from typing import Iterator, TypeVar

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Value-constrained so ``_get(name, Counter)`` types as ``Counter``.
_InstrumentT = TypeVar("_InstrumentT", "Counter", "Gauge", "Histogram")


class Counter:
    """A monotonically increasing count (events, units)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value:g})"


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value:g})"


class Histogram:
    """Streaming summary of a value distribution.

    Tracks count / sum / min / max / sum-of-squares (for the standard
    deviation) — O(1) memory, no reservoir, which is all the timing and
    Ω/Υ summaries need.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_sumsq")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._sumsq = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self._sumsq += value * value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        if self.count < 2:
            return 0.0
        var = self._sumsq / self.count - self.mean**2
        return math.sqrt(max(var, 0.0))

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.count}, mean={self.mean:g})"


class MetricsRegistry:
    """Factory and container for named instruments.

    Instruments are memoized by name: asking twice for
    ``counter("x")`` returns the same object, so independently wired
    components (provisioner, centers, matcher) share series.  Asking
    for an existing name with a *different* instrument kind is an
    error — silent type confusion would corrupt reports.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type[_InstrumentT]) -> _InstrumentT:
        inst = self._instruments.get(name)
        if inst is None:
            inst = kind(name)
            self._instruments[name] = inst
        elif type(inst) is not kind:
            raise TypeError(
                f"metric {name!r} already registered as {type(inst).__name__}, "
                f"requested {kind.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        return iter(sorted(self._instruments.values(), key=lambda i: i.name))

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        """Look up an instrument without creating it."""
        return self._instruments.get(name)

    def value(self, name: str, default: float = 0.0) -> float:
        """Scalar value of a counter/gauge (0 when never touched)."""
        inst = self._instruments.get(name)
        if inst is None:
            return default
        if isinstance(inst, Histogram):
            raise TypeError(f"metric {name!r} is a histogram; read .snapshot()")
        return inst.value

    def snapshot(self) -> dict[str, float | dict[str, float]]:
        """Flat ``name -> value`` view (histograms become summary dicts)."""
        out: dict[str, float | dict[str, float]] = {}
        for inst in self:
            if isinstance(inst, Histogram):
                out[inst.name] = {
                    "count": inst.count,
                    "sum": inst.total,
                    "mean": inst.mean,
                    "min": inst.min if inst.count else 0.0,
                    "max": inst.max if inst.count else 0.0,
                    "stddev": inst.stddev,
                }
            else:
                out[inst.name] = inst.value
        return out

    def reset(self) -> None:
        """Drop every instrument (tests, repeated runs)."""
        self._instruments.clear()

"""Causal span tracing + always-on sampling profiler.

``repro bench`` attributes wall time to coarse phases; this module
attributes it to *causal spans*: named, nested intervals with explicit
parent links (the Dapper model), so a fig06 regression can point at one
emulator kernel, one (game, region) reconcile, or one served tick
instead of at "emulate grew".  Three pieces:

:class:`SpanRecorder`
    The hot-path sink.  Finished span events land in a **preallocated
    numpy ring buffer** — recording a span allocates nothing in the
    event store, and when the ring wraps the oldest events are
    overwritten while the complete per-path aggregates (seconds,
    count) keep accumulating, so ``report``/``diff`` totals are exact
    over the whole run regardless of capacity.  The current span
    travels in a :class:`contextvars.ContextVar`, which asyncio copies
    into every task and ``asyncio.to_thread`` call — spans opened in
    the :class:`~repro.service.server.TickServer` tick loop parent the
    stepper spans computed on a worker thread with no plumbing.

:class:`SamplingProfiler`
    An always-on statistical profiler: a daemon thread samples the
    target thread's stack via ``sys._current_frames()`` at a fixed
    interval into folded-stack counters (the flamegraph format), so a
    recording shows where time went *between* spans too.

:class:`TraceRecording`
    The serialized artifact (``trace_*.json``): span-path aggregates,
    the ring's events, the profile, counters, and the measured
    self-overhead.  Exports: Chrome trace-event JSON
    (:func:`chrome_trace`, loadable in Perfetto / ``chrome://tracing``)
    and :class:`~repro.obs.tracer.StepTracer`-compatible JSONL
    (:func:`steptracer_jsonl`).

Like :mod:`repro.obs.ambient`, the recorder stack is process-global
observability state by design (``repro.obs`` is the sanctioned RA001
boundary): instrumented hot paths resolve :func:`current_recorder`
once at entry, and every span site afterwards is a single
``is None`` pointer test when tracing is off.  Analyzer pass RA021
holds the instrumentation to its contract: every phase root reachable
from the step-loop/service/scenario roots must open a span, spans
unreachable from any root are flagged as orphans, and ``with
span(...)`` blocks spanning an ``await`` are flagged (the manual
``begin``/``end`` API is the documented escape hatch for deliberate
cross-await spans such as the served tick).

Trace ids are **derived, never drawn from the wall clock**
(:func:`derive_trace_id` CRC-folds a label into a seed, the
``scenario_rng`` idiom), so traced scenario runs stay byte-identical
across reruns.
"""

from __future__ import annotations

import json
import sys
import threading
import time
import zlib
from contextlib import contextmanager
from contextvars import ContextVar, Token
from dataclasses import dataclass, field
from pathlib import Path
from types import CodeType, FrameType, TracebackType
from typing import IO, Any, Callable, Iterator, Mapping

import numpy as np

from repro.obs.tracer import StepTracer

__all__ = [
    "SCHEMA_VERSION",
    "PathDelta",
    "SamplingProfiler",
    "SpanHandle",
    "SpanRecorder",
    "TraceRecording",
    "chrome_trace",
    "current_recorder",
    "derive_trace_id",
    "diff_recordings",
    "export_context",
    "recording",
    "render_diff",
    "render_report",
    "span",
    "steptracer_jsonl",
]

#: Bumped on any incompatible ``trace_*.json`` change.
SCHEMA_VERSION = 1

#: Path id of the virtual root every top-level span hangs from.
_ROOT_PATH = 0

#: ``(span_id, path_id)`` of the innermost open span in this task.
#: ``(-1, _ROOT_PATH)`` means "no open span" — new spans become roots.
_CURRENT: ContextVar[tuple[int, int]] = ContextVar(
    "repro_trace_current", default=(-1, _ROOT_PATH)
)


def derive_trace_id(label: str, seed: int) -> str:
    """A deterministic 16-hex-digit trace id from a label and a seed.

    CRC-32-folds the label into the seed (the ``scenario_rng`` /
    ``experiment_rng`` derivation idiom) — no wall clock, no process
    state — so traced reruns of one deterministic workload carry the
    same trace id and stay byte-identical.
    """
    fold = (zlib.crc32(label.encode("utf-8")) << 32) ^ (seed & 0xFFFFFFFFFFFFFFFF)
    return f"{fold & 0xFFFFFFFFFFFFFFFF:016x}"


class SpanHandle:
    """One open span: returned by :meth:`SpanRecorder.begin`.

    A plain mutable cell (no ring slot is held open); ``end()`` closes
    the span on the recorder that issued it.
    """

    __slots__ = ("span_id", "path_id", "t0", "_token", "_recorder")

    span_id: int
    path_id: int
    t0: float
    _token: Token[tuple[int, int]]
    _recorder: "SpanRecorder"

    def end(self) -> None:
        """Close this span (sugar for ``recorder.end(handle)``)."""
        self._recorder.end(self)


class SpanRecorder:
    """Records spans into a preallocated ring + complete path aggregates.

    ``capacity`` must be a power of two; once more than ``capacity``
    spans finish, the oldest ring events are overwritten (``dropped``
    counts them) while the per-path aggregates stay complete.  ``fine``
    opts into kernel-granularity spans (per-tick engine kernels, the
    per-(game, region) predict/match pair) that the default granularity
    skips to hold the self-overhead budget.
    """

    def __init__(
        self,
        name: str = "trace",
        *,
        trace_id: str | None = None,
        capacity: int = 1 << 15,
        fine: bool = False,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if capacity < 2 or capacity & (capacity - 1):
            raise ValueError(f"capacity must be a power of two >= 2, got {capacity}")
        self.name = name
        self.trace_id = trace_id if trace_id is not None else derive_trace_id(name, 0)
        self.fine = fine
        self.capacity = capacity
        self.tid = 0
        self._clock = clock
        self._mask = capacity - 1
        # The zero-allocation event store: preallocated parallel arrays,
        # slot = span_id & mask.  Recording writes scalars into these —
        # no per-event dict, list, or object is ever built.
        self._ev_span = np.full(capacity, -1, dtype=np.int64)
        self._ev_parent = np.full(capacity, -1, dtype=np.int64)
        self._ev_path = np.zeros(capacity, dtype=np.int32)
        self._ev_tid = np.zeros(capacity, dtype=np.int32)
        self._ev_t0 = np.zeros(capacity, dtype=np.float64)
        self._ev_dur = np.full(capacity, -1.0, dtype=np.float64)
        # Span-name interning + the path trie (parent path -> name -> path).
        self._names: list[str] = []
        self._name_ids: dict[str, int] = {}
        self._paths: list[tuple[int, int]] = [(-1, -1)]  # 0 = virtual root
        self._children: list[dict[int, int]] = [{}]
        self._path_names: list[str] = [""]
        # Complete per-path aggregates — these survive ring wrap.
        self._agg_seconds: list[float] = [0.0]
        self._agg_counts: list[int] = [0]
        #: Cross-trace links: (local span, remote trace id, remote span).
        self.links: list[tuple[int, str, int]] = []
        self.spans_started = 0
        self.spans_finished = 0

    # -- interning ---------------------------------------------------------

    def _intern_name(self, name: str) -> int:
        name_id = self._name_ids.get(name)
        if name_id is None:
            name_id = len(self._names)
            self._name_ids[name] = name_id
            self._names.append(name)
        return name_id

    def _child_path(self, parent_path: int, name: str) -> int:
        name_id = self._intern_name(name)
        children = self._children[parent_path]
        path_id = children.get(name_id)
        if path_id is None:
            path_id = len(self._paths)
            children[name_id] = path_id
            self._paths.append((parent_path, name_id))
            self._children.append({})
            prefix = self._path_names[parent_path]
            self._path_names.append(f"{prefix}/{name}" if prefix else name)
            self._agg_seconds.append(0.0)
            self._agg_counts.append(0)
        return path_id

    def path_name(self, path_id: int) -> str:
        """The ``a/b/c`` string of a path id (``""`` for the root)."""
        return self._path_names[path_id]

    def intern_path(self, path: str) -> int:
        """Intern a ``a/b/c`` path string; returns its path id."""
        path_id = _ROOT_PATH
        for part in path.split("/"):
            if part:
                path_id = self._child_path(path_id, part)
        return path_id

    # -- the hot path ------------------------------------------------------

    def begin(self, name: str) -> SpanHandle:
        """Open a span named ``name`` under the task's current span."""
        parent_span, parent_path = _CURRENT.get()
        if not 0 <= parent_path < len(self._paths):
            # Stale context from a different recorder's lifetime (e.g. an
            # adopt() that outlived it): start a fresh root rather than
            # indexing a foreign path table.
            parent_span, parent_path = -1, _ROOT_PATH
        path_id = self._child_path(parent_path, name)
        span_id = self.spans_started
        self.spans_started = span_id + 1
        handle = SpanHandle()
        handle.span_id = span_id
        handle.path_id = path_id
        handle._recorder = self
        handle._token = _CURRENT.set((span_id, path_id))
        slot = span_id & self._mask
        self._ev_span[slot] = span_id
        self._ev_parent[slot] = parent_span
        self._ev_path[slot] = path_id
        self._ev_tid[slot] = self.tid
        self._ev_dur[slot] = -1.0
        # Read the clock last so interning/bookkeeping is charged to the
        # parent, not to this span's measured duration.
        handle.t0 = self._clock()
        self._ev_t0[slot] = handle.t0
        return handle

    def end(self, handle: SpanHandle) -> None:
        """Close a span; duration lands in the ring and the aggregates."""
        duration = self._clock() - handle.t0
        slot = handle.span_id & self._mask
        if self._ev_span[slot] == handle.span_id:  # not overwritten by wrap
            self._ev_dur[slot] = duration
        self._agg_seconds[handle.path_id] += duration
        self._agg_counts[handle.path_id] += 1
        self.spans_finished += 1
        try:
            _CURRENT.reset(handle._token)
        except ValueError:
            # The handle crossed into a different context (e.g. ended in
            # a task that copied the begin-side context): restore the
            # parent explicitly instead of via the foreign token.
            parent = self._ev_parent[slot]
            parent_path = self._paths[handle.path_id][0]
            _CURRENT.set((int(parent), parent_path))

    def link(self, handle: SpanHandle, trace_id: str, span_id: int) -> None:
        """Record a causal link from ``handle`` to a remote span."""
        self.links.append((handle.span_id, trace_id, span_id))

    @property
    def dropped(self) -> int:
        """Finished spans whose ring events were overwritten by wrap."""
        return max(0, self.spans_started - self.capacity)

    # -- cross-boundary propagation ---------------------------------------

    def adopt(self, ctx: Mapping[str, Any]) -> None:
        """Continue a remote context: future root spans nest under it.

        ``ctx`` is an :func:`export_context` dict from another process
        (a spawn worker's parent, a wire peer).  The remote path prefix
        is interned locally so this recorder's span paths line up with
        the parent's; the remote span id is out of this recorder's id
        space, so local parent links stay ``-1`` and the relationship
        is carried by the path prefix (and by wire-level links).
        """
        self.trace_id = str(ctx.get("trace_id", self.trace_id))
        path_id = self.intern_path(str(ctx.get("path", "")))
        _CURRENT.set((-1, path_id))

    # -- packaging ---------------------------------------------------------

    def events(self) -> list[tuple[int, int, int, int, float, float]]:
        """Retained ring events, oldest first.

        Each item is ``(span_id, parent_id, path_id, tid, t0, dur)``;
        still-open spans (dur < 0) are excluded.
        """
        out: list[tuple[int, int, int, int, float, float]] = []
        lo = max(0, self.spans_started - self.capacity)
        for span_id in range(lo, self.spans_started):
            slot = span_id & self._mask
            if self._ev_span[slot] != span_id or self._ev_dur[slot] < 0.0:
                continue
            out.append(
                (
                    span_id,
                    int(self._ev_parent[slot]),
                    int(self._ev_path[slot]),
                    int(self._ev_tid[slot]),
                    float(self._ev_t0[slot]),
                    float(self._ev_dur[slot]),
                )
            )
        return out

    def merge_recording(
        self, child: "TraceRecording", *, tid: int, offset: float = 0.0
    ) -> None:
        """Fold a child process's recording into this recorder.

        Paths are matched by string (a child that :meth:`adopt`-ed this
        recorder's context already carries the full prefix); aggregates
        add, and the child's ring events are replayed into this ring
        with fresh span ids, ``tid`` as their track, and ``offset``
        added to their timestamps (child clocks are process-local, so
        the caller picks the alignment).
        """
        path_ids: dict[int, int] = {}
        for index, path in enumerate(child.paths):
            if index == _ROOT_PATH:
                continue
            local = self.intern_path(path)
            path_ids[index] = local
            agg = child.span_paths.get(path)
            if agg is not None:
                self._agg_seconds[local] += agg["seconds"]
                self._agg_counts[local] += int(agg["count"])
        for event in child.events:
            span_id = self.spans_started
            self.spans_started = span_id + 1
            self.spans_finished += 1
            slot = span_id & self._mask
            self._ev_span[slot] = span_id
            self._ev_parent[slot] = -1  # parent ids are child-local
            self._ev_path[slot] = path_ids.get(int(event[2]), _ROOT_PATH)
            self._ev_tid[slot] = tid
            self._ev_t0[slot] = float(event[4]) + offset
            self._ev_dur[slot] = float(event[5])

    def finish(
        self,
        *,
        wall_seconds: float = 0.0,
        counters: Mapping[str, float] | None = None,
        profile: Mapping[str, Any] | None = None,
        overhead: Mapping[str, Any] | None = None,
    ) -> "TraceRecording":
        """Freeze this recorder into a serializable recording."""
        span_paths = {
            self._path_names[path_id]: {
                "seconds": self._agg_seconds[path_id],
                "count": float(self._agg_counts[path_id]),
            }
            for path_id in range(1, len(self._paths))
            if self._agg_counts[path_id]
        }
        return TraceRecording(
            name=self.name,
            trace_id=self.trace_id,
            wall_seconds=wall_seconds,
            counters=dict(counters or {}),
            paths=list(self._path_names),
            span_paths=span_paths,
            events=[list(event) for event in self.events()],
            links=[list(link) for link in self.links],
            spans_started=self.spans_started,
            spans_finished=self.spans_finished,
            dropped=self.dropped,
            profile=dict(profile) if profile is not None else None,
            overhead=dict(overhead) if overhead is not None else None,
        )


#: The recorder stack (innermost last) — the ambient-probe idiom: empty
#: in normal operation, at which point every span site below is one
#: pointer test and the hot paths behave exactly as before this module.
_RECORDERS: list[SpanRecorder] = []


def current_recorder() -> SpanRecorder | None:
    """The innermost installed recorder, or ``None``."""
    return _RECORDERS[-1] if _RECORDERS else None


@contextmanager
def recording(recorder: SpanRecorder | None = None) -> Iterator[SpanRecorder]:
    """Install a :class:`SpanRecorder` for the duration of the block."""
    installed = recorder if recorder is not None else SpanRecorder()
    _RECORDERS.append(installed)
    try:
        yield installed
    finally:
        _RECORDERS.remove(installed)


class span:
    """``with span("reconcile"):`` — a span on the current recorder.

    No-op (one pointer test) when no recorder is installed.  RA021
    flags ``await`` inside the block: a context-manager span must open
    and close in one task.  For deliberate cross-await spans (the
    served tick around ``asyncio.to_thread``) use ``begin``/``end``.
    """

    __slots__ = ("_name", "_handle")

    def __init__(self, name: str) -> None:
        self._name = name
        self._handle: SpanHandle | None = None

    def __enter__(self) -> "span":
        recorder = current_recorder()
        if recorder is not None:
            self._handle = recorder.begin(self._name)
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        handle = self._handle
        if handle is not None:
            self._handle = None
            handle.end()


def export_context() -> dict[str, Any] | None:
    """The current trace context as a wire/payload-safe dict.

    ``None`` when no recorder is installed.  The dict travels in spawn
    payloads and protocol messages; the receiving side calls
    :meth:`SpanRecorder.adopt` (worker) or records a link (peer).
    """
    recorder = current_recorder()
    if recorder is None:
        return None
    span_id, path_id = _CURRENT.get()
    if not 0 <= path_id < len(recorder._path_names):
        span_id, path_id = -1, _ROOT_PATH
    return {
        "trace_id": recorder.trace_id,
        "span_id": int(span_id),
        "path": recorder.path_name(path_id),
    }


# -- the sampling profiler -------------------------------------------------


class SamplingProfiler:
    """Folded-stack statistical profiler for one target thread.

    A daemon thread wakes every ``interval`` seconds, grabs the target
    thread's frame from ``sys._current_frames()``, folds it into a
    ``module.function;module.function;...`` stack string, and counts
    it.  Monotonic clocks only; the sampled thread is never paused, so
    the cost is one stack walk per sample (~10 µs) off-thread.
    """

    def __init__(
        self,
        interval: float = 0.005,
        *,
        max_depth: int = 48,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval
        self.max_depth = max_depth
        self.samples = 0
        self.stacks: dict[str, int] = {}
        # Per-code-object label cache: folding holds the GIL, so every
        # Path() and f-string it avoids is main-thread time given back.
        self._labels: dict[CodeType, str] = {}
        self._target_ident: int | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _fold(self, frame: FrameType, max_depth: int) -> str:
        labels = self._labels
        parts: list[str] = []
        current: FrameType | None = frame
        while current is not None and len(parts) < max_depth:
            code = current.f_code
            label = labels.get(code)
            if label is None:
                label = f"{Path(code.co_filename).stem}.{code.co_name}"
                labels[code] = label
            parts.append(label)
            current = current.f_back
        parts.reverse()
        return ";".join(parts)

    def _run(self) -> None:
        ident = self._target_ident
        while not self._stop.wait(self.interval):
            if ident is None:
                continue
            frame = sys._current_frames().get(ident)
            if frame is None:
                continue
            folded = self._fold(frame, self.max_depth)
            self.stacks[folded] = self.stacks.get(folded, 0) + 1
            self.samples += 1

    def start(self) -> None:
        """Begin sampling the *calling* thread."""
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._target_ident = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-trace-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> dict[str, Any]:
        """Stop sampling; returns the profile section for a recording."""
        thread = self._thread
        if thread is not None:
            self._stop.set()
            thread.join(timeout=5.0)
            self._thread = None
        return self.result()

    def result(self) -> dict[str, Any]:
        """The profile as a recording section (interval, samples, stacks)."""
        return {
            "interval": self.interval,
            "samples": self.samples,
            "stacks": dict(
                sorted(self.stacks.items(), key=lambda kv: (-kv[1], kv[0]))
            ),
        }


# -- the serialized artifact -----------------------------------------------


@dataclass
class TraceRecording:
    """One recording: aggregates, ring events, profile, overhead verdict.

    ``events`` rows are ``[span_id, parent_id, path_index, tid, t0,
    dur]`` with ``path_index`` into ``paths``; ``span_paths`` maps the
    path *string* to its complete ``{seconds, count}`` aggregate (ring
    wrap drops events, never aggregates).
    """

    name: str
    trace_id: str
    wall_seconds: float = 0.0
    counters: dict[str, float] = field(default_factory=dict)
    paths: list[str] = field(default_factory=lambda: [""])
    span_paths: dict[str, dict[str, float]] = field(default_factory=dict)
    events: list[list[Any]] = field(default_factory=list)
    links: list[list[Any]] = field(default_factory=list)
    spans_started: int = 0
    spans_finished: int = 0
    dropped: int = 0
    profile: dict[str, Any] | None = None
    overhead: dict[str, Any] | None = None
    schema_version: int = SCHEMA_VERSION

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "trace",
            "schema_version": self.schema_version,
            "name": self.name,
            "trace_id": self.trace_id,
            "wall_seconds": self.wall_seconds,
            "counters": self.counters,
            "paths": self.paths,
            "span_paths": self.span_paths,
            "events": self.events,
            "links": self.links,
            "spans_started": self.spans_started,
            "spans_finished": self.spans_finished,
            "dropped": self.dropped,
            "profile": self.profile,
            "overhead": self.overhead,
        }

    @staticmethod
    def from_dict(obj: Mapping[str, Any]) -> "TraceRecording":
        if obj.get("kind") != "trace":
            raise ValueError("not a trace recording (missing kind='trace')")
        version = int(obj.get("schema_version", 0))
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported trace schema version {version} "
                f"(this build reads {SCHEMA_VERSION})"
            )
        return TraceRecording(
            name=str(obj.get("name", "trace")),
            trace_id=str(obj.get("trace_id", "")),
            wall_seconds=float(obj.get("wall_seconds", 0.0)),
            counters={str(k): float(v) for k, v in dict(obj.get("counters", {})).items()},
            paths=[str(p) for p in obj.get("paths", [""])],
            span_paths={
                str(path): {"seconds": float(agg["seconds"]), "count": float(agg["count"])}
                for path, agg in dict(obj.get("span_paths", {})).items()
            },
            events=[list(event) for event in obj.get("events", [])],
            links=[list(link) for link in obj.get("links", [])],
            spans_started=int(obj.get("spans_started", 0)),
            spans_finished=int(obj.get("spans_finished", 0)),
            dropped=int(obj.get("dropped", 0)),
            profile=dict(obj["profile"]) if obj.get("profile") is not None else None,
            overhead=dict(obj["overhead"]) if obj.get("overhead") is not None else None,
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), sort_keys=True, indent=1) + "\n",
            encoding="utf-8",
        )

    @staticmethod
    def load(path: str | Path) -> "TraceRecording":
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(raw, dict):
            raise ValueError(f"{path}: not a JSON object")
        return TraceRecording.from_dict(raw)


# -- exports ---------------------------------------------------------------


def chrome_trace(rec: TraceRecording) -> dict[str, Any]:
    """The recording as Chrome trace-event JSON (Perfetto-loadable).

    Spans become complete (``"ph": "X"``) events in microseconds,
    rebased so the earliest event starts at 0; tracks (``tid``) carry
    worker lanes from merged recordings.  Load the saved file directly
    in https://ui.perfetto.dev or ``chrome://tracing``.
    """
    t_base = min((float(e[4]) for e in rec.events), default=0.0)
    trace_events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 1,
            "tid": 0,
            "args": {"name": f"repro {rec.name} [{rec.trace_id}]"},
        }
    ]
    for event in rec.events:
        path = rec.paths[int(event[2])]
        trace_events.append(
            {
                "ph": "X",
                "cat": "repro",
                "name": path.rsplit("/", 1)[-1] or "span",
                "pid": 1,
                "tid": int(event[3]),
                "ts": (float(event[4]) - t_base) * 1e6,
                "dur": float(event[5]) * 1e6,
                "args": {
                    "path": path,
                    "span": int(event[0]),
                    "parent": int(event[1]),
                },
            }
        )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "trace_id": rec.trace_id,
            "name": rec.name,
            "spans_finished": rec.spans_finished,
            "dropped": rec.dropped,
        },
    }


def steptracer_jsonl(rec: TraceRecording, sink: str | IO[str]) -> int:
    """Write the recording as StepTracer-compatible JSONL.

    One ``trace`` header line plus one ``span`` line per retained
    event — the same one-JSON-object-per-line shape (and writer) as the
    simulator's ``--trace`` output, so existing JSONL tooling reads
    both streams.  Returns the number of lines written.
    """
    with StepTracer(sink) as tracer:
        tracer.emit(
            "trace",
            trace_id=rec.trace_id,
            name=rec.name,
            schema_version=rec.schema_version,
            spans_started=rec.spans_started,
            spans_finished=rec.spans_finished,
            dropped=rec.dropped,
        )
        for event in rec.events:
            tracer.emit(
                "span",
                span=int(event[0]),
                parent=int(event[1]),
                path=rec.paths[int(event[2])],
                tid=int(event[3]),
                t0=float(event[4]),
                dur=float(event[5]),
            )
        return tracer.events_written


# -- report / diff ---------------------------------------------------------


def render_report(rec: TraceRecording, *, top: int = 20) -> str:
    """Human summary: top span paths by total seconds + top stacks."""
    lines = [
        f"trace {rec.name!r}  id {rec.trace_id}  "
        f"spans {rec.spans_finished} ({rec.dropped} events dropped by ring wrap)"
    ]
    if rec.wall_seconds:
        lines[0] += f"  wall {rec.wall_seconds:.3f}s"
    ranked = sorted(
        rec.span_paths.items(), key=lambda kv: (-kv[1]["seconds"], kv[0])
    )
    lines.append(f"  {'seconds':>10s}  {'count':>8s}  {'mean_us':>9s}  path")
    for path, agg in ranked[:top]:
        count = int(agg["count"])
        mean_us = agg["seconds"] / count * 1e6 if count else 0.0
        lines.append(
            f"  {agg['seconds']:10.4f}  {count:8d}  {mean_us:9.1f}  {path}"
        )
    if len(ranked) > top:
        lines.append(f"  ... {len(ranked) - top} more span path(s)")
    if rec.overhead is not None:
        fraction = float(rec.overhead.get("fraction", 0.0))
        budget = float(rec.overhead.get("budget", 0.0))
        verdict = "within" if fraction < budget else "OVER"
        lines.append(
            f"  self-overhead: {fraction * 100:.2f}% ({verdict} the "
            f"{budget * 100:.1f}% budget)"
        )
    profile = rec.profile
    if profile:
        lines.append(
            f"  profile: {int(profile.get('samples', 0))} samples at "
            f"{float(profile.get('interval', 0.0)) * 1e3:.1f}ms"
        )
        stacks = dict(profile.get("stacks", {}))
        total = sum(stacks.values()) or 1
        for stack, count in list(stacks.items())[: min(top, 5)]:
            leaf = stack.rsplit(";", 2)[-2:]
            lines.append(
                f"    {count / total * 100:5.1f}%  {';'.join(leaf)}"
            )
    return "\n".join(lines)


@dataclass(frozen=True)
class PathDelta:
    """One span path's wall-time movement between two recordings."""

    path: str
    base_seconds: float
    cur_seconds: float
    base_count: int
    cur_count: int

    @property
    def delta_seconds(self) -> float:
        return self.cur_seconds - self.base_seconds


def diff_recordings(base: TraceRecording, cur: TraceRecording) -> list[PathDelta]:
    """Per-span-path wall-time deltas, largest absolute movement first.

    The per-kernel deepening of ``compare_reports``' per-phase
    attribution: aggregates are complete even under ring wrap, so the
    deltas cover the whole run.
    """
    paths = sorted(set(base.span_paths) | set(cur.span_paths))
    empty = {"seconds": 0.0, "count": 0.0}
    deltas = [
        PathDelta(
            path=path,
            base_seconds=float(base.span_paths.get(path, empty)["seconds"]),
            cur_seconds=float(cur.span_paths.get(path, empty)["seconds"]),
            base_count=int(base.span_paths.get(path, empty)["count"]),
            cur_count=int(cur.span_paths.get(path, empty)["count"]),
        )
        for path in paths
    ]
    deltas.sort(key=lambda d: (-abs(d.delta_seconds), d.path))
    return deltas


def render_diff(
    deltas: list[PathDelta], *, fmt: str = "human", top: int = 20
) -> str:
    """Render a span-path diff as ``human`` or ``markdown`` text."""
    shown = deltas[:top]
    if fmt == "markdown":
        lines = [
            "| Δ seconds | baseline | current | calls (b→c) | span path |",
            "|---:|---:|---:|---|---|",
        ]
        for d in shown:
            lines.append(
                f"| {d.delta_seconds:+.4f} | {d.base_seconds:.4f} "
                f"| {d.cur_seconds:.4f} | {d.base_count}→{d.cur_count} "
                f"| `{d.path}` |"
            )
        return "\n".join(lines)
    if fmt != "human":
        raise ValueError(f"unknown diff format: {fmt!r}")
    lines = [
        f"  {'delta_s':>10s}  {'base_s':>10s}  {'cur_s':>10s}  "
        f"{'calls':>13s}  path"
    ]
    for d in shown:
        lines.append(
            f"  {d.delta_seconds:+10.4f}  {d.base_seconds:10.4f}  "
            f"{d.cur_seconds:10.4f}  {d.base_count:6d}→{d.cur_count:<6d}  {d.path}"
        )
    if len(deltas) > top:
        lines.append(f"  ... {len(deltas) - top} more span path(s)")
    return "\n".join(lines)

"""Holt's double exponential smoothing (trend-aware smoothing).

Section IV-A groups "exponential smoothing and variants thereof" among
the simple predictors.  Holt's linear method is the classic trend-aware
variant: it maintains a level ``l`` and a trend ``b``,

    l_t = alpha * x_t + (1 - alpha) * (l_{t-1} + b_{t-1})
    b_t = beta * (l_t - l_{t-1}) + (1 - beta) * b_{t-1}

and forecasts ``x_{t+1} = l_t + b_t``.  On ramp-heavy MMOG signals it
closes part of the gap between simple smoothing and the neural
predictor, at the same O(1) cost — which makes it a useful ablation
point between the paper's baselines and its contribution.
"""

from __future__ import annotations

import numpy as np

from repro.predictors.base import Predictor, register_predictor

__all__ = ["HoltPredictor"]


class HoltPredictor(Predictor):
    """Double exponential smoothing with level ``alpha``, trend ``beta``.

    Parameters
    ----------
    alpha:
        Level smoothing factor in (0, 1].
    beta:
        Trend smoothing factor in (0, 1].
    damping:
        Multiplier applied to the trend in the forecast (1 = classic
        Holt; < 1 damps the extrapolation, the standard guard against
        trend overshoot on noisy series).
    """

    def __init__(self, alpha: float = 0.5, beta: float = 0.3, *, damping: float = 0.9) -> None:
        super().__init__()
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if not 0.0 < beta <= 1.0:
            raise ValueError("beta must be in (0, 1]")
        if not 0.0 < damping <= 1.0:
            raise ValueError("damping must be in (0, 1]")
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.damping = float(damping)
        self.name = f"Holt {int(round(alpha * 100))}/{int(round(beta * 100))}%"

    def _reset_state(self) -> None:
        self._level = np.zeros(self.n_series)
        self._trend = np.zeros(self.n_series)
        self._observations = 0

    def observe(self, values: np.ndarray) -> None:
        """Record the actual values of the current step."""
        values = self._check_values(values)
        if self._observations == 0:
            self._level = values.copy()
        elif self._observations == 1:
            self._trend = values - self._level
            self._level = values.copy()
        else:
            prev_level = self._level
            self._level = self.alpha * values + (1.0 - self.alpha) * (
                prev_level + self._trend
            )
            self._trend = (
                self.beta * (self._level - prev_level)
                + (1.0 - self.beta) * self._trend
            )
        self._observations += 1

    def predict(self) -> np.ndarray:
        """Forecast the next step (shape ``(n_series,)``)."""
        self._require_ready()
        if self._observations == 0:
            return np.zeros(self.n_series)
        return np.maximum(self._level + self.damping * self._trend, 0.0)


register_predictor("Holt 50/30%", HoltPredictor)

"""Predictor evaluation: the Fig. 5 accuracy metric and Fig. 6 timing.

Accuracy (Sec. IV-D2): for a prediction algorithm and an input data set,
the *prediction error* is

    100 * sum_t |x_t - xhat_t| / sum_t x_t   [%],

i.e. the sum of un-normalized absolute sample errors over the sum of the
samples.  Timing (Fig. 6): the wall-clock distribution of a *single*
prediction call (min, quartiles, median, max).

Predictions live in *player-count* space, not resource space: the
resource dimensions (``Cpu``/``Mem``/... in
:mod:`repro.datacenter.resources`) only appear after
:class:`~repro.core.loadmodel.DemandModel` converts predicted player
counts into a :class:`~repro.datacenter.resources.ResourceVector`, so
nothing in this module carries a dimension tag.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.obs.ambient import ambient_metrics, record_ambient_phases
from repro.obs.timing import PhaseTimer
from repro.obs.trace import span
from repro.predictors.base import Predictor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry
from repro.predictors.neural import NeuralPredictor
from repro.predictors.simple import (
    AveragePredictor,
    LastValuePredictor,
    MovingAveragePredictor,
    SlidingWindowMedianPredictor,
)
from repro.predictors.smoothing import ExponentialSmoothingPredictor

__all__ = [
    "prediction_error_percent",
    "one_step_predictions",
    "evaluate_predictors",
    "PredictionTimingStats",
    "time_predictor",
    "paper_predictor_suite",
]


def prediction_error_percent(actual: np.ndarray, predicted: np.ndarray) -> float:
    """The paper's prediction-error metric, in percent.

    ``sum |actual - predicted| / sum actual * 100``.  Raises when the
    actual series sums to zero (the metric is undefined there).
    """
    a = np.asarray(actual, dtype=np.float64).reshape(-1)
    p = np.asarray(predicted, dtype=np.float64).reshape(-1)
    if a.shape != p.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {p.shape}")
    denom = float(a.sum())
    if denom <= 0:
        raise ValueError("prediction error undefined: actual series sums to zero")
    return float(np.abs(a - p).sum() / denom * 100.0)


def one_step_predictions(
    predictor: Predictor,
    data: np.ndarray,
    *,
    fit_fraction: float = 0.5,
    skip: int | None = None,
    metrics: "MetricsRegistry | None" = None,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Run a predictor over a data set, honouring its training protocol.

    Trainable predictors (those exposing ``fit``) are fit on the first
    ``fit_fraction`` of the data — the paper's off-line data-collection
    and training phases — and then evaluated on the remainder.
    Stateless predictors stream over the full data but are scored on the
    same evaluation span so errors are comparable.

    Parameters
    ----------
    predictor:
        The predictor (will be ``reset``).
    data:
        Shape ``(n_steps, n_series)`` or 1-D.
    fit_fraction:
        Portion of the data used for the off-line phases.
    skip:
        Evaluation start index; defaults to the fit split (plus a small
        warm-in so window predictors are filled).

    Returns
    -------
    (actual, predicted, start):
        Flattened aligned arrays over the evaluation span, and the start
        step of that span.
    """
    if metrics is None:
        metrics = ambient_metrics()
    timer = PhaseTimer() if metrics is not None else None
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[:, None]
    n_steps = arr.shape[0]
    split = int(n_steps * fit_fraction)
    t_mark = timer.mark() if timer is not None else 0.0
    with span("predict.fit"):
        if hasattr(predictor, "fit") and split > 10:
            predictor.fit(arr[:split])
            if metrics is not None:
                metrics.counter("predictors.fits").inc()
    if timer is not None:
        t_mark = timer.lap("predictor_fit", t_mark)
    start = skip if skip is not None else max(split, 8)
    if start >= n_steps:
        raise ValueError("nothing left to evaluate; lower fit_fraction or skip")
    with span("predict.series"):
        predictions = predictor.predict_series(arr)
    if metrics is not None:
        # One evaluation per trace step: the deterministic unit of
        # prediction work behind the Fig. 5 accuracy sweeps.
        metrics.counter("predictors.evaluations").inc(n_steps)
        if timer is not None:
            timer.lap("predictor_series", t_mark)
            record_ambient_phases(timer)
    return arr[start:].reshape(-1), predictions[start:].reshape(-1), start


def evaluate_predictors(
    datasets: Mapping[str, np.ndarray],
    predictors: Sequence[Predictor] | None = None,
    *,
    fit_fraction: float = 0.5,
    metrics: "MetricsRegistry | None" = None,
) -> dict[str, dict[str, float]]:
    """Prediction error of each predictor on each data set (Fig. 5).

    Returns ``{dataset_name: {predictor_name: error_percent}}``.
    ``metrics`` (or an ambient probe) receives the per-evaluation work
    counters recorded by :func:`one_step_predictions`.
    """
    if metrics is None:
        metrics = ambient_metrics()
    if predictors is None:
        predictors = paper_predictor_suite()
    results: dict[str, dict[str, float]] = {}
    for ds_name, data in datasets.items():
        row: dict[str, float] = {}
        for predictor in predictors:
            actual, predicted, _ = one_step_predictions(
                predictor, data, fit_fraction=fit_fraction, metrics=metrics
            )
            row[predictor.name] = prediction_error_percent(actual, predicted)
        results[ds_name] = row
    return results


@dataclass(frozen=True)
class PredictionTimingStats:
    """Distribution of single-prediction latency, in microseconds."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    n_samples: int

    @classmethod
    def from_samples(cls, seconds: np.ndarray) -> "PredictionTimingStats":
        """Summarize raw per-call timings (seconds) into microseconds."""
        us = np.asarray(seconds, dtype=np.float64) * 1e6
        if us.size == 0:
            raise ValueError("no timing samples")
        q1, med, q3 = np.percentile(us, [25, 50, 75])
        return cls(
            minimum=float(us.min()),
            q1=float(q1),
            median=float(med),
            q3=float(q3),
            maximum=float(us.max()),
            n_samples=int(us.size),
        )


def time_predictor(
    predictor: Predictor,
    data: np.ndarray,
    *,
    n_calls: int = 2000,
    fit_fraction: float = 0.5,
    metrics: "MetricsRegistry | None" = None,
) -> PredictionTimingStats:
    """Measure the latency of single ``predict`` calls (Fig. 6).

    The predictor is prepared exactly as in accuracy evaluation (fit on
    the first portion, streamed over the history), then ``predict`` is
    invoked ``n_calls`` times with a hot state and each call is timed
    individually with the highest-resolution clock available.
    ``metrics`` (or an ambient probe) records the deterministic call
    counts and a ``predictor_timing`` phase; counters are touched only
    outside the timed region, so the measured latencies are unaffected.
    """
    if metrics is None:
        metrics = ambient_metrics()
    timer = PhaseTimer() if metrics is not None else None
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[:, None]
    split = int(arr.shape[0] * fit_fraction)
    t_mark = timer.mark() if timer is not None else 0.0
    with span("predict.fit"):
        if hasattr(predictor, "fit") and split > 10:
            predictor.fit(arr[:split])
            if metrics is not None:
                metrics.counter("predictors.fits").inc()
        predictor.reset(arr.shape[1])
        for t in range(min(split + 16, arr.shape[0])):
            predictor.observe(arr[t])
    if timer is not None:
        t_mark = timer.lap("predictor_fit", t_mark)
    timings = np.empty(n_calls)
    with span("predict.timing"):
        for i in range(n_calls):
            t0 = time.perf_counter()
            predictor.predict()
            timings[i] = time.perf_counter() - t0
    if metrics is not None:
        metrics.counter("predictors.evaluations").inc(n_calls)
        metrics.counter("predictors.timed_calls").inc(n_calls)
        if timer is not None:
            timer.lap("predictor_timing", t_mark)
            record_ambient_phases(timer)
    return PredictionTimingStats.from_samples(timings)


def paper_predictor_suite() -> list[Predictor]:
    """The seven predictors of Fig. 5, in the paper's order."""
    return [
        NeuralPredictor(),
        AveragePredictor(),
        MovingAveragePredictor(),
        LastValuePredictor(),
        ExponentialSmoothingPredictor(0.25),
        ExponentialSmoothingPredictor(0.50),
        ExponentialSmoothingPredictor(0.75),
        SlidingWindowMedianPredictor(),
    ]

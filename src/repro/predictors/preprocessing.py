"""Polynomial signal preprocessors for the neural predictor.

Section IV-C: *"The signal preprocessors are based on several polynomial
functions which have the purpose of removing the unwanted noise from the
processed signal."*

We implement the standard least-squares polynomial smoother: project the
most recent ``window`` samples onto the space of degree-``degree``
polynomials.  Because the projection is linear, it reduces to a single
``window x window`` matrix applied to the input window — cheap enough
for the paper's microsecond-scale prediction budget.  (For interior
points this is exactly the Savitzky–Golay filter; here we smooth the
whole window at once because all of it feeds the network.)
"""

from __future__ import annotations

import numpy as np

__all__ = ["polynomial_smoothing_matrix", "PolynomialDenoiser"]


def polynomial_smoothing_matrix(window: int, degree: int) -> np.ndarray:
    """The projection matrix onto degree-``degree`` polynomials.

    For a window of samples ``x`` (oldest first), ``S @ x`` is the
    least-squares degree-``degree`` polynomial fit evaluated at the same
    points.  ``S`` is idempotent (a projection) and reproduces any
    polynomial of degree <= ``degree`` exactly.

    Parameters
    ----------
    window:
        Number of samples in the window (must exceed ``degree``).
    degree:
        Polynomial degree (0 = flat mean, 1 = linear trend, 2 = local
        parabola, ...).
    """
    if window <= 0:
        raise ValueError("window must be positive")
    if degree < 0:
        raise ValueError("degree must be non-negative")
    if degree >= window:
        raise ValueError("degree must be smaller than window")
    # Centred, scaled abscissae keep the Vandermonde system well-conditioned.
    t = np.linspace(-1.0, 1.0, window)
    V = np.vander(t, degree + 1, increasing=True)  # (window, degree+1)
    # S = V (V^T V)^{-1} V^T, computed via a solve for stability.
    gram = V.T @ V
    S = V @ np.linalg.solve(gram, V.T)
    return S


class PolynomialDenoiser:
    """Applies polynomial smoothing to windows of samples.

    Parameters
    ----------
    window:
        Window length (the neural predictor uses its input length, 6).
    degree:
        Polynomial degree of the fit (default 2: level + slope +
        curvature, enough to preserve the short-term dynamics the
        network needs while suppressing sample noise).
    """

    def __init__(self, window: int = 6, degree: int = 2) -> None:
        self.window = int(window)
        self.degree = int(degree)
        self._matrix = polynomial_smoothing_matrix(window, degree)

    @property
    def matrix(self) -> np.ndarray:
        """The smoothing matrix (copy)."""
        return self._matrix.copy()

    def smooth(self, windows: np.ndarray) -> np.ndarray:
        """Smooth one window (shape ``(window,)``) or a batch
        (shape ``(..., window)``); the window axis is last."""
        arr = np.asarray(windows, dtype=np.float64)
        if arr.shape[-1] != self.window:
            raise ValueError(f"last axis must have length {self.window}, got {arr.shape}")
        return arr @ self._matrix.T

    def __repr__(self) -> str:
        return f"PolynomialDenoiser(window={self.window}, degree={self.degree})"

"""The predictor interface and registry.

A predictor forecasts, for each of ``n_series`` parallel signals (one
per game sub-zone / server group), the next sample from the samples
observed so far.  The paper's provisioning loop re-predicts every two
minutes for every zone, so the interface is batched: ``observe`` takes
one value per series, ``predict`` returns one forecast per series.

Lifecycle::

    p = SomePredictor(...)
    p.reset(n_series=40)          # fresh state for 40 parallel series
    for t in range(T):
        forecast = p.predict()    # forecast of the value at step t
        p.observe(x[t])           # then reveal the actual value

``predict`` before any ``observe`` returns the predictor's prior
(zero by default) — callers typically discard the first few forecasts.
"""

from __future__ import annotations

import abc
from typing import Callable

import numpy as np

__all__ = ["Predictor", "PREDICTOR_REGISTRY", "register_predictor", "make_predictor"]


class Predictor(abc.ABC):
    """Abstract one-step-ahead forecaster over a batch of series."""

    #: Human-readable name used in result tables (matches the paper).
    name: str = "predictor"

    def __init__(self) -> None:
        self._n_series: int | None = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def n_series(self) -> int:
        """Number of parallel series; raises if :meth:`reset` not called."""
        if self._n_series is None:
            raise RuntimeError(f"{self.name}: call reset(n_series) before use")
        return self._n_series

    def reset(self, n_series: int) -> None:
        """Clear all state and size the predictor for ``n_series`` signals."""
        if n_series <= 0:
            raise ValueError("n_series must be positive")
        self._n_series = int(n_series)
        self._reset_state()

    @abc.abstractmethod
    def _reset_state(self) -> None:
        """Subclass hook: (re)allocate internal state for ``self.n_series``."""

    # -- core API ----------------------------------------------------------------

    @abc.abstractmethod
    def observe(self, values: np.ndarray) -> None:
        """Reveal the actual values of the current step (shape ``(n_series,)``)."""

    @abc.abstractmethod
    def predict(self) -> np.ndarray:
        """Forecast the next step's values (shape ``(n_series,)``)."""

    # -- conveniences -------------------------------------------------------------

    def _require_ready(self) -> None:
        """Raise a clear error when used before :meth:`reset`."""
        if self._n_series is None:
            raise RuntimeError(f"{self.name}: call reset(n_series) before use")

    def _check_values(self, values: np.ndarray) -> np.ndarray:
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim == 0:
            arr = arr.reshape(1)
        if arr.shape != (self.n_series,):
            raise ValueError(
                f"{self.name}: expected values of shape ({self.n_series},), got {arr.shape}"
            )
        if not np.all(np.isfinite(arr)):
            raise ValueError(f"{self.name}: observed values must be finite")
        return arr

    def predict_horizon(self, horizon: int) -> np.ndarray:
        """Iterated multi-step-ahead forecasts, shape ``(horizon, n_series)``.

        The generic scheme feeds each one-step forecast back as a
        pseudo-observation and predicts again, then restores the
        predictor's state.  Horizon forecasts drive *advance
        reservations* (Sec. II-B's second service model), where an
        operator books capacity for a future window instead of
        requesting it on demand.

        The default implementation snapshots state via :mod:`copy`
        (deep), which is correct for every built-in predictor;
        stateful subclasses with unpicklable state must override.
        """
        import copy

        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self._require_ready()
        snapshot = copy.deepcopy(self.__dict__)
        try:
            out = np.empty((horizon, self.n_series))
            for h in range(horizon):
                step = self.predict()
                out[h] = step
                # Feed the forecast back as if it had been observed.
                self.observe(np.maximum(step, 0.0))
        finally:
            self.__dict__ = snapshot
        return out

    def predict_series(self, matrix: np.ndarray) -> np.ndarray:
        """One-step-ahead forecasts over a whole history.

        Parameters
        ----------
        matrix:
            Shape ``(n_steps, n_series)`` (a 1-D array is treated as a
            single series).

        Returns
        -------
        numpy.ndarray
            Same shape; row ``t`` is the forecast of ``matrix[t]`` made
            after observing rows ``0..t-1``.  Row 0 is the predictor's
            prior.
        """
        arr = np.asarray(matrix, dtype=np.float64)
        squeeze = arr.ndim == 1
        if squeeze:
            arr = arr[:, None]
        n_steps, n_series = arr.shape
        self.reset(n_series)
        out = np.empty_like(arr)
        for t in range(n_steps):
            out[t] = self.predict()
            self.observe(arr[t])
        return out[:, 0] if squeeze else out

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


#: Registry of predictor factories keyed by the paper's display names.
PREDICTOR_REGISTRY: dict[str, Callable[[], "Predictor"]] = {}


def register_predictor(name: str, factory: Callable[[], "Predictor"]) -> None:
    """Register a predictor factory under a display name."""
    PREDICTOR_REGISTRY[name] = factory


def make_predictor(name: str) -> "Predictor":
    """Instantiate a registered predictor by display name."""
    try:
        factory = PREDICTOR_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown predictor {name!r}; known: {sorted(PREDICTOR_REGISTRY)}"
        ) from None
    return factory()

"""Load predictors for MMOG resource demand (paper Sec. IV).

Seven predictors are evaluated in the paper; all are implemented here
with a common streaming/batch interface:

* :class:`~repro.predictors.neural.NeuralPredictor` — the paper's novel
  multi-layer-perceptron predictor (6,3,1) with polynomial signal
  preprocessing (Sec. IV-C);
* :class:`~repro.predictors.simple.AveragePredictor`,
  :class:`~repro.predictors.simple.MovingAveragePredictor`,
  :class:`~repro.predictors.simple.LastValuePredictor`,
  :class:`~repro.predictors.simple.SlidingWindowMedianPredictor`;
* :class:`~repro.predictors.smoothing.ExponentialSmoothingPredictor`
  with the paper's three smoothing factors (25 %, 50 %, 75 %).

The AR family (:mod:`repro.predictors.arfamily`) implements the
autoregressive models the paper cites as the "more elaborate" class of
algorithms (Sec. IV-A) — provided for completeness and ablations even
though the paper's evaluation excludes them for cost reasons.

All predictors operate on *batches* of series simultaneously (one per
game sub-zone / server group), which keeps the provisioning simulation
vectorized; scalar helpers wrap the batch API.
"""

from repro.predictors.base import Predictor, PREDICTOR_REGISTRY, make_predictor
from repro.predictors.simple import (
    AveragePredictor,
    MovingAveragePredictor,
    LastValuePredictor,
    SlidingWindowMedianPredictor,
)
from repro.predictors.smoothing import ExponentialSmoothingPredictor
from repro.predictors.holt import HoltPredictor
from repro.predictors.seasonal import SeasonalNaivePredictor
from repro.predictors.arfamily import AutoRegressivePredictor
from repro.predictors.neural import NeuralPredictor, NeuralTrainingReport
from repro.predictors.preprocessing import polynomial_smoothing_matrix, PolynomialDenoiser
from repro.predictors.evaluation import (
    prediction_error_percent,
    one_step_predictions,
    evaluate_predictors,
    PredictionTimingStats,
    time_predictor,
    paper_predictor_suite,
)

__all__ = [
    "Predictor",
    "PREDICTOR_REGISTRY",
    "make_predictor",
    "AveragePredictor",
    "MovingAveragePredictor",
    "LastValuePredictor",
    "SlidingWindowMedianPredictor",
    "ExponentialSmoothingPredictor",
    "HoltPredictor",
    "SeasonalNaivePredictor",
    "AutoRegressivePredictor",
    "NeuralPredictor",
    "NeuralTrainingReport",
    "polynomial_smoothing_matrix",
    "PolynomialDenoiser",
    "prediction_error_percent",
    "one_step_predictions",
    "evaluate_predictors",
    "PredictionTimingStats",
    "time_predictor",
    "paper_predictor_suite",
]

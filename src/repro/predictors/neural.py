"""The paper's novel neural-network load predictor (Sec. IV-C).

Architecture: a low-complexity three-layer multi-layer perceptron with
a (6, 3, 1) structure — six input neurons fed with the six most recent
(polynomially denoised, normalized) samples, three hidden tanh neurons,
one linear output neuron forecasting the next sample.

Deployment follows the paper's two off-line phases:

1. **data-set collection** — entity-count samples are gathered per
   sub-zone at equidistant time steps (here: any history matrix);
2. **training** — most samples form the training set, the rest the test
   set; training runs in *eras* (present every training sample, adjust
   weights, evaluate on the test set) until a convergence criterion is
   fulfilled.

For streaming use inside the provisioning simulator the predictor can
also train itself automatically once a configurable warm-up history has
been observed (``warmup_steps``), so it slots into the same loop as the
stateless baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.predictors.base import Predictor, register_predictor
from repro.predictors.preprocessing import PolynomialDenoiser

__all__ = ["NeuralPredictor", "NeuralTrainingReport"]


@dataclass(frozen=True)
class NeuralTrainingReport:
    """Outcome of one training run.

    Attributes
    ----------
    eras:
        Number of training eras executed.
    train_mse / test_mse:
        Final mean-squared error on the normalized training / test sets.
    converged:
        ``True`` when the convergence criterion (no relative test-error
        improvement for ``patience`` eras) stopped training, ``False``
        when the era budget ran out first.
    scale:
        The normalization scale fixed during training.
    """

    eras: int
    train_mse: float
    test_mse: float
    converged: bool
    scale: float


class _MLP:
    """Minimal dense (in, hidden, 1) network with tanh hidden units,
    trained by full-batch Adam on the MSE loss."""

    def __init__(self, n_in: int, n_hidden: int, rng: np.random.Generator) -> None:
        # Xavier-style initialization keeps tanh units in their active range.
        self.W1 = rng.normal(0.0, 1.0 / np.sqrt(n_in), size=(n_in, n_hidden))
        self.b1 = np.zeros(n_hidden)
        self.W2 = rng.normal(0.0, 1.0 / np.sqrt(n_hidden), size=(n_hidden, 1))
        self.b2 = np.zeros(1)
        self._adam_m = [np.zeros_like(p) for p in self._params()]
        self._adam_v = [np.zeros_like(p) for p in self._params()]
        self._adam_t = 0

    def _params(self) -> list[np.ndarray]:
        return [self.W1, self.b1, self.W2, self.b2]

    def forward(self, X: np.ndarray) -> np.ndarray:
        """Network output for inputs ``X`` of shape ``(n, n_in)``."""
        h = np.tanh(X @ self.W1 + self.b1)
        return (h @ self.W2 + self.b2)[:, 0]

    def step(self, X: np.ndarray, y: np.ndarray, lr: float) -> float:
        """One full-batch Adam step; returns the pre-step MSE."""
        n = X.shape[0]
        h_pre = X @ self.W1 + self.b1
        h = np.tanh(h_pre)
        out = (h @ self.W2 + self.b2)[:, 0]
        err = out - y
        mse = float(np.mean(err**2))

        # Backprop (MSE; factor 2/n folded into the gradient).
        grad_out = (2.0 / n) * err[:, None]  # (n, 1)
        gW2 = h.T @ grad_out
        gb2 = grad_out.sum(axis=0)
        grad_h = grad_out @ self.W2.T * (1.0 - h**2)
        gW1 = X.T @ grad_h
        gb1 = grad_h.sum(axis=0)

        self._adam_t += 1
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        for i, (p, g) in enumerate(zip(self._params(), [gW1, gb1, gW2, gb2])):
            self._adam_m[i] = beta1 * self._adam_m[i] + (1 - beta1) * g
            self._adam_v[i] = beta2 * self._adam_v[i] + (1 - beta2) * g**2
            m_hat = self._adam_m[i] / (1 - beta1**self._adam_t)
            v_hat = self._adam_v[i] / (1 - beta2**self._adam_t)
            p -= lr * m_hat / (np.sqrt(v_hat) + eps)
        return mse

    def mse(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean-squared error without updating weights."""
        return float(np.mean((self.forward(X) - y) ** 2))


class NeuralPredictor(Predictor):
    """MLP (window, hidden, 1) predictor with polynomial preprocessing.

    Parameters
    ----------
    window:
        Input length (paper: 6 samples = 12 minutes of history).
    hidden:
        Hidden-layer width (paper: 3).
    degree:
        Degree of the polynomial denoiser applied to each input window
        (2 preserves level/slope/curvature while removing sample noise).
    warmup_steps:
        When used in streaming mode without an explicit :meth:`fit`,
        auto-train after this many observed steps (default one simulated
        day at 2-minute sampling).  Until trained, the predictor falls
        back to the last observed value.
    max_eras, learning_rate, patience, rel_tolerance, train_fraction:
        Training-protocol knobs (see :meth:`fit`).
    seed:
        Seed for weight initialization and the train/test shuffle.
    """

    name = "Neural"

    def __init__(
        self,
        window: int = 6,
        hidden: int = 3,
        degree: int = 2,
        *,
        warmup_steps: int = 720,
        max_eras: int = 400,
        learning_rate: float = 0.02,
        patience: int = 25,
        rel_tolerance: float = 1e-4,
        train_fraction: float = 0.8,
        seed: int = 42,
    ) -> None:
        super().__init__()
        if window < 2:
            raise ValueError("window must be at least 2")
        if hidden < 1:
            raise ValueError("hidden must be at least 1")
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        self.window = int(window)
        self.hidden = int(hidden)
        self.denoiser = PolynomialDenoiser(window=window, degree=degree)
        self.warmup_steps = int(warmup_steps)
        self.max_eras = int(max_eras)
        self.learning_rate = float(learning_rate)
        self.patience = int(patience)
        self.rel_tolerance = float(rel_tolerance)
        self.train_fraction = float(train_fraction)
        self.seed = int(seed)
        self._net: _MLP | None = None
        self._scale: float = 1.0
        self._shrink: float = 1.0
        self.training_report: NeuralTrainingReport | None = None

    # -- training -----------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        """Whether the network has been trained."""
        return self._net is not None

    @property
    def scale(self) -> float:
        """The normalization scale fixed at training time."""
        return self._scale

    def fit(self, history: np.ndarray) -> NeuralTrainingReport:
        """Train the network on a history matrix.

        Parameters
        ----------
        history:
            Shape ``(n_steps, n_series)`` or 1-D; windows are pooled
            across all series.  Each window is normalized by its own
            mean level, so the (deliberately low-complexity, shared)
            network learns the *relative* short-term dynamics — the
            same network then serves sub-zones whose absolute entity
            counts differ by orders of magnitude.

        Returns
        -------
        NeuralTrainingReport
        """
        arr = np.asarray(history, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[:, None]
        if arr.shape[0] <= self.window + 1:
            raise ValueError(
                f"need more than {self.window + 1} steps of history, got {arr.shape[0]}"
            )
        rng = np.random.default_rng(self.seed)

        self._scale = max(float(arr.max()) * 1.1, 1e-9)
        X, y, ref = self._make_dataset(arr)

        # Shuffled train/test split: "most of the previously collected
        # samples as training sets, and the remaining samples as test sets".
        idx = rng.permutation(X.shape[0])
        n_train = max(int(self.train_fraction * X.shape[0]), 1)
        train_idx, test_idx = idx[:n_train], idx[n_train:]
        if test_idx.size == 0:
            test_idx = train_idx[-1:]
        X_tr, y_tr = X[train_idx], y[train_idx]
        X_te, y_te = X[test_idx], y[test_idx]
        ref_te = ref[test_idx]

        net = _MLP(self.window, self.hidden, rng)
        best_test = np.inf
        stale = 0
        converged = False
        era = 0
        for era in range(1, self.max_eras + 1):
            net.step(X_tr, y_tr, self.learning_rate)
            test_mse = net.mse(X_te, y_te)
            if test_mse < best_test * (1.0 - self.rel_tolerance):
                best_test = test_mse
                stale = 0
            else:
                stale += 1
                if stale >= self.patience:
                    converged = True
                    break

        self._net = net
        # Shrinkage selection: scale the learned correction by the
        # factor that minimizes the (ref-weighted) absolute test error.
        # Guarantees the deployed predictor is at least as good as
        # persistence on held-out data — an overfit correction is shrunk
        # toward zero instead of being deployed at full strength.
        delta_te = net.forward(X_te)
        candidates = np.array([0.0, 0.25, 0.5, 0.75, 1.0])
        losses = [
            float(np.sum(ref_te * np.abs(lam * delta_te - y_te))) for lam in candidates
        ]
        self._shrink = float(candidates[int(np.argmin(losses))])
        report = NeuralTrainingReport(
            eras=era,
            train_mse=net.mse(X_tr, y_tr),
            test_mse=net.mse(X_te, y_te),
            converged=converged,
            scale=self._scale,
        )
        self.training_report = report
        return report

    #: Windows whose mean level is below this many entities/players are
    #: excluded from training and predicted by persistence instead: the
    #: relative normalization is meaningless on (nearly) empty zones.
    MIN_WINDOW_LEVEL = 1.0

    #: Clamp on the network's relative correction output.
    MAX_DELTA = 1.5

    def _window_reference(self, windows: np.ndarray) -> np.ndarray:
        """Per-window normalization level: the window mean, floored."""
        return np.maximum(windows.mean(axis=-1), 1e-9)

    def _make_dataset(self, raw: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Sliding windows pooled over series: X ``(N, window)``, y ``(N,)``.

        The network learns a *residual correction to persistence*: the
        input is the (polynomially denoised) window divided by its own
        mean level, and the target is the next value's deviation from
        the window's last value, in the same relative units.  This
        normalization lets the one small shared network serve sub-zones
        whose absolute entity counts differ by orders of magnitude, and
        anchors the forecast at the persistence baseline — the network
        only has to learn the predictable part of the dynamics.  Windows
        at (nearly) zero level are dropped (see
        :data:`MIN_WINDOW_LEVEL`).
        """
        n_steps, n_series = raw.shape
        n_windows = n_steps - self.window
        # Vectorized window extraction via stride tricks on each series.
        windows = np.lib.stride_tricks.sliding_window_view(
            raw, self.window, axis=0
        )  # (n_windows + 1, n_series, window)
        X = windows[:-1].reshape(-1, self.window)  # windows ending at t-1
        y = raw[self.window :].reshape(-1)  # the value at t
        assert X.shape[0] == y.shape[0] == n_windows * n_series
        ref = self._window_reference(X)
        keep = ref >= self.MIN_WINDOW_LEVEL
        if not keep.any():
            raise ValueError("history is (nearly) all zero; nothing to learn")
        X, y, ref = X[keep], y[keep], ref[keep]
        last = X[:, -1]
        # Centre the relative window at zero: the network sees the
        # *shape* of the recent history (deviations from the window
        # level), not the level itself — tiny deviations riding on a
        # large common-mode input would be numerically invisible to a
        # small tanh network.  Polynomial smoothing preserves constants,
        # so smoothing and centring commute.
        X = self.denoiser.smooth(X / ref[:, None]) - 1.0
        y = np.clip((y - last) / ref, -self.MAX_DELTA, self.MAX_DELTA)
        return X, y, ref

    # -- streaming API ------------------------------------------------------------

    def _reset_state(self) -> None:
        self._buffer = np.zeros((self.window, self.n_series))
        self._filled = 0
        self._head = 0
        self._history: list[np.ndarray] = []
        self._last = np.zeros(self.n_series)

    def observe(self, values: np.ndarray) -> None:
        """Record the actual values of the current step."""
        values = self._check_values(values)
        self._buffer[self._head] = values
        self._head = (self._head + 1) % self.window
        self._filled = min(self._filled + 1, self.window)
        self._last = values.copy()
        if not self.is_fitted:
            self._history.append(values.copy())
            if len(self._history) >= self.warmup_steps:
                self.fit(np.array(self._history))
                self._history.clear()

    def predict(self) -> np.ndarray:
        """Forecast the next step (shape ``(n_series,)``)."""
        self._require_ready()
        if not self.is_fitted or self._filled < self.window:
            # Persistence fallback while untrained / under-filled.
            return self._last.copy()
        # Reassemble the window in chronological order (oldest first).
        order = (np.arange(self.window) + self._head) % self.window
        window = self._buffer[order].T  # (n_series, window)
        return self._predict_windows(window)

    def _predict_windows(self, windows: np.ndarray) -> np.ndarray:
        """Forecast from raw windows, shape ``(n, window)`` (oldest first)."""
        ref = self._window_reference(windows)
        usable = ref >= self.MIN_WINDOW_LEVEL
        # Persistence baseline everywhere; the network adds its learned
        # correction where the level supports relative normalization.
        out = windows[:, -1].astype(np.float64).copy()
        if usable.any():
            X = self.denoiser.smooth(windows[usable] / ref[usable, None]) - 1.0
            delta = np.clip(self._net.forward(X), -self.MAX_DELTA, self.MAX_DELTA)
            out[usable] = np.maximum(out[usable] + self._shrink * delta * ref[usable], 0.0)
        return out

    def predict_window(self, window: np.ndarray) -> float:
        """Forecast from an explicit window (oldest first), scalar helper."""
        arr = np.asarray(window, dtype=np.float64)
        if arr.shape != (self.window,):
            raise ValueError(f"expected window of shape ({self.window},)")
        if not self.is_fitted:
            raise RuntimeError("predictor is not fitted")
        return float(self._predict_windows(arr[None, :])[0])


register_predictor("Neural", NeuralPredictor)

"""Autoregressive reference predictors.

Section IV-A discusses the "more elaborated prediction algorithms" —
AR / I / MA models and their combinations (ARMA, ARIMA) — and excludes
them from the MMOG deployment for being "more time consuming and
resource intensive".  We implement the AR(p) member of the family as a
reference/ablation predictor: it is fit by ordinary least squares on a
history matrix (pooled over series, like the neural predictor) and then
produces one-step-ahead forecasts as a linear combination of the last
``p`` samples.

Like :class:`~repro.predictors.neural.NeuralPredictor` it supports
streaming auto-fit after a warm-up period, so it can be dropped into the
provisioning loop for the ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.predictors.base import Predictor, register_predictor

__all__ = ["AutoRegressivePredictor"]


class AutoRegressivePredictor(Predictor):
    """AR(p) with intercept, fit by least squares.

    Parameters
    ----------
    order:
        Number of lags ``p`` (default 6, matching the neural
        predictor's input window for a fair comparison).
    warmup_steps:
        Auto-fit after this many streamed observations when
        :meth:`fit` was not called explicitly.
    ridge:
        Small L2 regularization on the coefficients, for numerical
        stability on nearly collinear lag matrices.
    """

    name = "AR"

    def __init__(self, order: int = 6, *, warmup_steps: int = 720, ridge: float = 1e-6) -> None:
        super().__init__()
        if order < 1:
            raise ValueError("order must be at least 1")
        self.order = int(order)
        self.warmup_steps = int(warmup_steps)
        self.ridge = float(ridge)
        self._coef: np.ndarray | None = None  # (order + 1,): intercept first

    @property
    def is_fitted(self) -> bool:
        """Whether coefficients have been estimated."""
        return self._coef is not None

    @property
    def coefficients(self) -> np.ndarray:
        """Fitted ``[intercept, w_lag1_oldest, ..., w_lag_newest]``."""
        if self._coef is None:
            raise RuntimeError("predictor is not fitted")
        return self._coef.copy()

    def fit(self, history: np.ndarray) -> None:
        """Estimate AR coefficients from a history matrix (pooled)."""
        arr = np.asarray(history, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[:, None]
        if arr.shape[0] <= self.order + 1:
            raise ValueError(f"need more than {self.order + 1} steps of history")
        windows = np.lib.stride_tricks.sliding_window_view(arr, self.order, axis=0)
        X = windows[:-1].reshape(-1, self.order)
        y = arr[self.order :].reshape(-1)
        # Normal equations with intercept and a touch of ridge.
        Xb = np.column_stack([np.ones(X.shape[0]), X])
        gram = Xb.T @ Xb + self.ridge * np.eye(self.order + 1)
        self._coef = np.linalg.solve(gram, Xb.T @ y)

    def _reset_state(self) -> None:
        self._buffer = np.zeros((self.order, self.n_series))
        self._filled = 0
        self._head = 0
        self._history: list[np.ndarray] = []
        self._last = np.zeros(self.n_series)

    def observe(self, values: np.ndarray) -> None:
        """Record the actual values of the current step."""
        values = self._check_values(values)
        self._buffer[self._head] = values
        self._head = (self._head + 1) % self.order
        self._filled = min(self._filled + 1, self.order)
        self._last = values.copy()
        if not self.is_fitted:
            self._history.append(values.copy())
            if len(self._history) >= self.warmup_steps:
                self.fit(np.array(self._history))
                self._history.clear()

    def predict(self) -> np.ndarray:
        """Forecast the next step (shape ``(n_series,)``)."""
        self._require_ready()
        if not self.is_fitted or self._filled < self.order:
            return self._last.copy()
        order_idx = (np.arange(self.order) + self._head) % self.order
        window = self._buffer[order_idx].T  # (n_series, order), oldest first
        pred = self._coef[0] + window @ self._coef[1:]
        return np.maximum(pred, 0.0)


register_predictor("AR", AutoRegressivePredictor)

"""The paper's simple predictors: average, moving average, last value,
sliding-window median.

These are the "computationally inexpensive" baselines of Sec. IV-A.
Their strength is cost; their weakness, as the evaluation shows, is
either lag (window methods) or nonstationarity blindness (the global
average — the paper's worst performer on dynamic signals).
"""

from __future__ import annotations

import numpy as np

from repro.predictors.base import Predictor, register_predictor

__all__ = [
    "AveragePredictor",
    "MovingAveragePredictor",
    "LastValuePredictor",
    "SlidingWindowMedianPredictor",
]


class AveragePredictor(Predictor):
    """Forecast = mean of *all* samples observed so far.

    Maintains a running sum, so each prediction is O(1).  On
    nonstationary MMOG signals this predictor systematically
    under-forecasts rising load and over-forecasts falling load, which
    is exactly the behaviour behind its poor Table V results.
    """

    name = "Average"

    def _reset_state(self) -> None:
        self._sum = np.zeros(self.n_series)
        self._count = 0

    def observe(self, values: np.ndarray) -> None:
        """Record the actual values of the current step."""
        values = self._check_values(values)
        self._sum += values
        self._count += 1

    def predict(self) -> np.ndarray:
        """Forecast the next step (shape ``(n_series,)``)."""
        self._require_ready()
        if self._count == 0:
            return np.zeros(self.n_series)
        return self._sum / self._count


class _WindowedPredictor(Predictor):
    """Shared ring-buffer machinery for fixed-window predictors."""

    def __init__(self, window: int) -> None:
        super().__init__()
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = int(window)

    def _reset_state(self) -> None:
        self._buffer = np.zeros((self.window, self.n_series))
        self._filled = 0
        self._head = 0

    def observe(self, values: np.ndarray) -> None:
        """Record the actual values of the current step."""
        values = self._check_values(values)
        self._buffer[self._head] = values
        self._head = (self._head + 1) % self.window
        self._filled = min(self._filled + 1, self.window)

    def _window_values(self) -> np.ndarray:
        """The currently filled window, shape ``(filled, n_series)``."""
        if self._filled < self.window:
            return self._buffer[: self._filled]
        return self._buffer


class MovingAveragePredictor(_WindowedPredictor):
    """Forecast = mean of the last ``window`` samples (paper default 5)."""

    name = "Moving average"

    def __init__(self, window: int = 5) -> None:
        super().__init__(window)

    def predict(self) -> np.ndarray:
        """Forecast the next step (shape ``(n_series,)``)."""
        self._require_ready()
        if self._filled == 0:
            return np.zeros(self.n_series)
        return self._window_values().mean(axis=0)


class LastValuePredictor(Predictor):
    """Forecast = the most recent sample (the persistence forecast).

    The paper singles this out as the only predictor with "no
    computational requirements" and the runner-up to the neural
    predictor in allocation quality.
    """

    name = "Last value"

    def _reset_state(self) -> None:
        self._last = np.zeros(self.n_series)
        self._seen = False

    def observe(self, values: np.ndarray) -> None:
        """Record the actual values of the current step."""
        self._last = self._check_values(values).copy()
        self._seen = True

    def predict(self) -> np.ndarray:
        """Forecast the next step (shape ``(n_series,)``)."""
        self._require_ready()
        return self._last.copy()


class SlidingWindowMedianPredictor(_WindowedPredictor):
    """Forecast = median of the last ``window`` samples (paper default 5).

    More robust to single-sample spikes than the moving average, at the
    cost of reacting even more slowly to genuine level shifts.
    """

    name = "Sliding window median"

    def __init__(self, window: int = 5) -> None:
        super().__init__(window)

    def predict(self) -> np.ndarray:
        """Forecast the next step (shape ``(n_series,)``)."""
        self._require_ready()
        if self._filled == 0:
            return np.zeros(self.n_series)
        return np.median(self._window_values(), axis=0)


register_predictor("Average", AveragePredictor)
register_predictor("Moving average", MovingAveragePredictor)
register_predictor("Last value", LastValuePredictor)
register_predictor("Sliding window median", SlidingWindowMedianPredictor)

"""Exponential smoothing predictors.

Simple exponential smoothing maintains the state
``s_t = alpha * x_t + (1 - alpha) * s_{t-1}`` and forecasts
``x_{t+1} = s_t``.  The paper evaluates three smoothing factors —
25 %, 50 % and 75 % — in Fig. 5, and one representative member in the
provisioning experiments (Table V).
"""

from __future__ import annotations

import numpy as np

from repro.predictors.base import Predictor, register_predictor

__all__ = ["ExponentialSmoothingPredictor"]


class ExponentialSmoothingPredictor(Predictor):
    """Simple exponential smoothing with factor ``alpha`` in (0, 1].

    ``alpha`` close to 1 tracks the signal closely (approaching the
    last-value predictor); ``alpha`` close to 0 produces a heavily
    smoothed, slowly adapting forecast.
    """

    def __init__(self, alpha: float = 0.5) -> None:
        super().__init__()
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = float(alpha)
        self.name = f"Exp. smoothing {int(round(alpha * 100))}%"

    def _reset_state(self) -> None:
        self._state = np.zeros(self.n_series)
        self._seen = False

    def observe(self, values: np.ndarray) -> None:
        """Record the actual values of the current step."""
        values = self._check_values(values)
        if not self._seen:
            # Initialize the state at the first observation, the textbook
            # choice (an all-zero start would bias early forecasts).
            self._state = values.copy()
            self._seen = True
        else:
            self._state = self.alpha * values + (1.0 - self.alpha) * self._state

    def predict(self) -> np.ndarray:
        """Forecast the next step (shape ``(n_series,)``)."""
        self._require_ready()
        return self._state.copy()


register_predictor("Exp. smoothing 25%", lambda: ExponentialSmoothingPredictor(0.25))
register_predictor("Exp. smoothing 50%", lambda: ExponentialSmoothingPredictor(0.50))
register_predictor("Exp. smoothing 75%", lambda: ExponentialSmoothingPredictor(0.75))

"""Seasonal-naive prediction: forecast from the same time yesterday.

MMOG load is dominated by a diurnal cycle (Sec. III-C), so a natural
baseline the paper does not evaluate is the *seasonal-naive* forecast:
the value one season (day) ago, optionally blended with the current
level to track day-to-day drift,

    xhat_{t+1} = w * x_{t+1-S} + (1 - w) * x_t .

Pure seasonal-naive (``w = 1``) is excellent on clean cycles but ignores
today's shocks entirely (content releases, mass quits); the blend keeps
the persistence anchor.  Included as an ablation baseline to check how
much of the neural predictor's edge is just "knowing the cycle".
"""

from __future__ import annotations

import numpy as np

from repro.predictors.base import Predictor, register_predictor

__all__ = ["SeasonalNaivePredictor"]


class SeasonalNaivePredictor(Predictor):
    """Blend of the value one season ago and the last value.

    Parameters
    ----------
    season:
        Season length in steps (default 720 = 24 h of 2-minute samples).
    weight:
        Weight ``w`` of the seasonal component; ``1 - w`` goes to the
        last observed value.  Until a full season of history exists the
        forecast falls back to persistence.
    """

    def __init__(self, season: int = 720, weight: float = 0.5) -> None:
        super().__init__()
        if season < 1:
            raise ValueError("season must be at least 1 step")
        if not 0.0 <= weight <= 1.0:
            raise ValueError("weight must be in [0, 1]")
        self.season = int(season)
        self.weight = float(weight)
        self.name = f"Seasonal naive {int(round(weight * 100))}%"

    def _reset_state(self) -> None:
        self._ring = np.zeros((self.season, self.n_series))
        self._head = 0
        self._count = 0
        self._last = np.zeros(self.n_series)

    def observe(self, values: np.ndarray) -> None:
        """Record the actual values of the current step."""
        values = self._check_values(values)
        self._ring[self._head] = values
        self._head = (self._head + 1) % self.season
        self._count += 1
        self._last = values.copy()

    def predict(self) -> np.ndarray:
        """Forecast the next step (shape ``(n_series,)``)."""
        self._require_ready()
        if self._count < self.season:
            return self._last.copy()
        # With a full ring, the slot at _head holds the value exactly
        # one season before the next step.
        seasonal = self._ring[self._head]
        return self.weight * seasonal + (1.0 - self.weight) * self._last


register_predictor("Seasonal naive 50%", SeasonalNaivePredictor)

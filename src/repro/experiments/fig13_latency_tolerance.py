"""Fig. 13 — The impact of the MMOG latency tolerance.

Setup per Sec. V-E: only the North American data centers of Table III,
with hosting policies coarse on the East Coast and gradually finer
toward the West Coast; the workload is the combined North American
demand (three player regions: US East, US Central, US West), scaled so
the system is busy.  One simulation per latency-tolerance class — from
*same location* (servers must be co-located with their players) to
*very far* (any server may serve any player).

Claim verified: as the latency tolerance grows, allocations migrate
from each region's local centers toward the centers with the finest
hosting policies (the coarse East Coast centers are increasingly
bypassed).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import DemandModel, GameSpec, SimulationResult, update_model
from repro.datacenter import build_north_american_datacenters
from repro.datacenter.geography import LatencyClass
from repro.datacenter.resources import CPU
from repro.experiments import common
from repro.predictors import NeuralPredictor
from repro.reporting import render_table
from repro.traces import RegionSpec, synthesize_runescape_like

__all__ = [
    "run",
    "format_result",
    "Fig13Result",
    "LATENCY_CLASSES",
    "north_american_trace",
    "latency_simulation",
]

#: The five maximal-distance classes of Sec. V-E, nearest-first.
LATENCY_CLASSES: tuple[LatencyClass, ...] = (
    LatencyClass.SAME_LOCATION,
    LatencyClass.VERY_CLOSE,
    LatencyClass.CLOSE,
    LatencyClass.FAR,
    LatencyClass.VERY_FAR,
)

#: North American player regions, scaled so the combined workload keeps
#: the 107-machine NA platform busy at peak.
NA_REGIONS: tuple[RegionSpec, ...] = (
    RegionSpec("US East", "US East", n_groups=60, utc_offset_hours=-5.0),
    RegionSpec("US Central", "US Central", n_groups=25, utc_offset_hours=-6.0),
    RegionSpec("US West", "US West", n_groups=45, utc_offset_hours=-8.0),
)


def north_american_trace(seed: int = 7):
    """The combined North American workload trace (cached)."""
    return common.cached(
        ("fig13-trace", seed),
        lambda: synthesize_runescape_like(
            n_days=common.eval_days() + common.warmup_days(),
            seed=seed,
            regions=NA_REGIONS,
        ),
    )


def latency_simulation(latency: LatencyClass, *, seed: int = 7) -> SimulationResult:
    """The Sec. V-E simulation for one latency class (cached)."""

    def build() -> SimulationResult:
        trace = north_american_trace(seed)
        game = GameSpec(
            name="na-mmog",
            trace=trace,
            demand_model=DemandModel(update=update_model("O(n^2)")),
            predictor_factory=NeuralPredictor,
            latency_class=latency,
        )
        centers = build_north_american_datacenters()
        return common.run_ecosystem([game], centers)

    return common.cached(("fig13", latency.value, seed), build)


@dataclass
class Fig13Result:
    """Allocation distribution across centers per latency class."""

    #: ``shares[latency class][center name] -> fraction of allocated CPU``.
    shares: dict[str, dict[str, float]]
    center_names: list[str]
    east_share: dict[str, float]
    west_share: dict[str, float]


_EAST = ("US East (1)", "US East (2)", "Canada East")
_WEST = ("US West (1)", "US West (2)", "Canada West")


def run(
    *, classes: tuple[LatencyClass, ...] = LATENCY_CLASSES, seed: int = 7
) -> Fig13Result:
    """Run one simulation per latency class and compute center shares."""
    shares: dict[str, dict[str, float]] = {}
    names: list[str] = []
    for latency in classes:
        result = latency_simulation(latency, seed=seed)
        total = sum(result.center_cpu_mean.values())
        names = sorted(result.center_cpu_mean)
        shares[latency.value] = {
            name: (value / total if total > 0 else 0.0)
            for name, value in result.center_cpu_mean.items()
        }
    east = {
        cls: sum(share.get(n, 0.0) for n in _EAST) for cls, share in shares.items()
    }
    west = {
        cls: sum(share.get(n, 0.0) for n in _WEST) for cls, share in shares.items()
    }
    return Fig13Result(
        shares=shares, center_names=names, east_share=east, west_share=west
    )


def format_result(result: Fig13Result) -> str:
    """Render the stacked-bar data: center share per latency class."""
    headers = ["Latency class"] + result.center_names
    rows = []
    for cls, share in result.shares.items():
        rows.append(
            [cls] + [f"{share.get(n, 0.0) * 100:.1f}" for n in result.center_names]
        )
    trend = ", ".join(
        f"{cls}: east {result.east_share[cls] * 100:.0f} % / "
        f"west {result.west_share[cls] * 100:.0f} %"
        for cls in result.shares
    )
    return (
        render_table(
            headers,
            rows,
            title="Fig. 13 — Allocated-CPU share [%] per data center and latency class",
        )
        + f"\n\nEast/West coast share by class: {trend}"
        + "\n(paper: higher tolerance shifts allocations toward the finer-grained "
        "Central/West centers)"
    )

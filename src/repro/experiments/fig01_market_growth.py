"""Fig. 1 — The number of MMORPG players over time (1997-2008).

Regenerates the market-growth picture from the parametric title
catalogue: per-title subscription curves, the aggregate, the six titles
above 500k players, and the paper's 2011 projection ("assuming the same
rate of growth, there will be over 60 million players by 2011").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.market import market_series, project_total, titles_above
from repro.reporting import render_series, render_table

__all__ = ["run", "format_result", "Fig1Result"]


@dataclass
class Fig1Result:
    """Market series and headline statistics."""

    years: np.ndarray
    series: dict[str, np.ndarray]
    titles_over_500k: list[str]
    total_2008: float
    projection_2011: float


def run(*, start_year: float = 1997.0, end_year: float = 2008.5, points_per_year: int = 12) -> Fig1Result:
    """Build the Fig. 1 data set."""
    years = np.linspace(
        start_year, end_year, int((end_year - start_year) * points_per_year) + 1
    )
    series = market_series(years)
    return Fig1Result(
        years=years,
        series=series,
        titles_over_500k=titles_above(500_000, 2008.0),
        total_2008=float(np.interp(2008.0, years, series["All"])),
        projection_2011=project_total(2008.0, 2011.0),
    )


def format_result(result: Fig1Result) -> str:
    """Render the figure as text: top-title table + aggregate sparkline."""
    final = {name: s[-1] for name, s in result.series.items() if name != "All"}
    top = sorted(final.items(), key=lambda kv: -kv[1])[:10]
    lines = [
        render_table(
            ["Title", "Players (2008)"],
            [(name, f"{int(v):,}") for name, v in top],
            title="Fig. 1 — MMORPG subscriptions (top titles, model)",
        ),
        "",
        render_series(result.series["All"], label="All titles 1997-2008"),
        "",
        f"Titles above 500k players in 2008: {', '.join(result.titles_over_500k)}",
        f"Total market 2008: {result.total_2008 / 1e6:.1f} M players",
        f"Projection for 2011 at the same growth rate: "
        f"{result.projection_2011 / 1e6:.1f} M players (paper: > 60 M)",
    ]
    return "\n".join(lines)

"""Ablation — advance reservations vs. on-demand requests.

Section II-B names two data-center service models: best-effort
(requests served immediately, as in the paper's evaluation) and
*advance reservations* (requests "immediately fitted in the schedule"
for a future window).  This ablation quantifies the price of booking
ahead: the operator reserves capacity ``lead`` minutes in advance from
an iterated multi-step forecast, so every booking carries ``lead``
minutes of extra forecast error — and reserved capacity idles between
booking and use.

Measured, per booking lead: over-allocation, under-allocation, and
significant events.  Lead 0 is the paper's on-demand baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import SimulationResult
from repro.datacenter.resources import CPU
from repro.experiments import common
from repro.reporting import render_table

__all__ = ["run", "format_result", "AdvanceBookingResult", "LEADS_MINUTES"]

#: Booking leads swept, in minutes (0 = on demand).
LEADS_MINUTES: tuple[int, ...] = (0, 10, 30, 60)


@dataclass
class AdvanceBookingResult:
    """Per-lead averages."""

    leads: tuple[int, ...]
    over: dict[int, float]
    under: dict[int, float]
    events: dict[int, int]


def _lead_simulation(lead_minutes: int, seed: int) -> SimulationResult:
    def build() -> SimulationResult:
        trace = common.standard_trace(seed=seed)
        game = common.make_game(trace, predictor="Neural", update="O(n^2)")
        centers = common.optimal_centers()
        lead_steps = int(round(lead_minutes / 2.0))
        return common.run_ecosystem_with_lead(game, centers, lead_steps)

    return common.cached(("ablation-advance", lead_minutes, seed), build)


def run(*, leads: tuple[int, ...] = LEADS_MINUTES, seed: int = 1) -> AdvanceBookingResult:
    """Sweep the booking lead."""
    over, under, events = {}, {}, {}
    for lead in leads:
        tl = _lead_simulation(lead, seed).combined
        over[lead] = tl.average_over_allocation(CPU)
        under[lead] = tl.average_under_allocation(CPU)
        events[lead] = tl.significant_events(CPU)
    return AdvanceBookingResult(leads=tuple(leads), over=over, under=under, events=events)


def format_result(result: AdvanceBookingResult) -> str:
    """Render the lead sweep."""
    rows = [
        (
            "on demand" if lead == 0 else f"{lead} min ahead",
            f"{result.over[lead]:.1f}",
            f"{result.under[lead]:.4f}",
            result.events[lead],
        )
        for lead in result.leads
    ]
    return render_table(
        ["Booking lead", "Over-alloc [%]", "Under-alloc [%]", "|Y|>1% events"],
        rows,
        title="Ablation — advance reservations vs on demand (O(n^2), Neural)",
    ) + (
        "\n\nBooking ahead buys schedulability at the cost of multi-step "
        "forecast error: events grow with the lead."
    )

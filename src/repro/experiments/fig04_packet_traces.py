"""Fig. 4 — Player interaction drives server load (packet-level CDFs).

Generates the eight game-session captures and reports, per trace, the
packet-length and inter-arrival-time statistics whose CDFs the paper
plots, plus the qualitative relations the text derives from them:

* fast-paced sessions (T1, T6) have small, regular IATs regardless of
  crowding;
* market p2p (T2) and combat p2p (T3) share packet sizes but differ
  strongly in IAT;
* group-interaction sessions (T4) combine the largest packets with
  near-fast-paced IATs;
* repeated captures of one environment (T5a/T5b) are statistically
  indistinguishable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nettrace import (
    PacketTrace,
    SessionScenario,
    TraceSummary,
    generate_paper_traces,
    ks_distance,
    summarize_trace,
)
from repro.reporting import render_table

__all__ = ["run", "format_result", "Fig4Result"]


@dataclass
class Fig4Result:
    """Per-trace summaries and the validation-pair distances."""

    traces: dict[SessionScenario, PacketTrace]
    summaries: dict[SessionScenario, TraceSummary]
    ks_t5_pair_iat: float
    ks_t5_pair_length: float
    ks_t2_vs_t3_iat: float
    ks_t2_vs_t3_length: float


def run(*, duration_seconds: float = 600.0) -> Fig4Result:
    """Generate all Fig. 4 traces and summarize them."""
    traces = generate_paper_traces(duration_seconds=duration_seconds)
    summaries = {scen: summarize_trace(trace) for scen, trace in traces.items()}
    t5a, t5b = traces[SessionScenario.T5A], traces[SessionScenario.T5B]
    t2, t3 = traces[SessionScenario.T2], traces[SessionScenario.T3]
    return Fig4Result(
        traces=traces,
        summaries=summaries,
        ks_t5_pair_iat=ks_distance(t5a.inter_arrival_ms(), t5b.inter_arrival_ms()),
        ks_t5_pair_length=ks_distance(t5a.lengths, t5b.lengths),
        ks_t2_vs_t3_iat=ks_distance(t2.inter_arrival_ms(), t3.inter_arrival_ms()),
        ks_t2_vs_t3_length=ks_distance(t2.lengths, t3.lengths),
    )


def format_result(result: Fig4Result) -> str:
    """Render the per-trace statistics table and the CDF relations."""
    rows = []
    for scen, s in result.summaries.items():
        rows.append(
            (
                str(scen),
                s.n_packets,
                f"{s.length_median:.0f}",
                f"{s.length_p90:.0f}",
                f"{s.iat_median_ms:.0f}",
                f"{s.iat_mean_ms:.0f}",
                f"{s.throughput_bps / 1000:.1f}",
            )
        )
    lines = [
        render_table(
            ["Trace", "Packets", "len p50 [B]", "len p90 [B]", "IAT p50 [ms]",
             "IAT mean [ms]", "kB/s"],
            rows,
            title="Fig. 4 — Session packet statistics (length and IAT CDF moments)",
        ),
        "",
        f"T5a vs T5b (same environment):  KS(IAT) = {result.ks_t5_pair_iat:.3f}, "
        f"KS(len) = {result.ks_t5_pair_length:.3f}  (validation: small)",
        f"T2 vs T3  (market vs combat):   KS(IAT) = {result.ks_t2_vs_t3_iat:.3f}, "
        f"KS(len) = {result.ks_t2_vs_t3_length:.3f}  (paper: sizes alike, IAT differs)",
    ]
    return "\n".join(lines)

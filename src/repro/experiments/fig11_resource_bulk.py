"""Fig. 11 — The impact of the CPU resource bulk.

Sweeps the CPU resource bulk through the HP-3..HP-7 values (0.22, 0.28,
0.37, 0.56, 1.11 units) with all other policy knobs held at the HP-3
level (memory bulk 2, time bulk 180 min), every data center under the
same policy.  Claims verified: bigger bulks drive over-allocation up,
while finer bulks increase the number of significant under-allocation
events (less incidental headroom per server group).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import SimulationResult
from repro.datacenter.policy import custom_policy
from repro.datacenter.resources import Cpu, Mem
from repro.datacenter.resources import CPU
from repro.experiments import common
from repro.reporting import render_table

__all__ = ["run", "format_result", "Fig11Result", "CPU_BULKS"]

#: The HP-3..HP-7 CPU bulks of Table IV.
CPU_BULKS: tuple[float, ...] = (0.22, 0.28, 0.37, 0.56, 1.11)


@dataclass
class Fig11Result:
    """Per-bulk averages: over/under-allocation and event counts."""

    bulks: tuple[float, ...]
    over: dict[float, float]
    under: dict[float, float]
    events: dict[float, int]


def _bulk_simulation(bulk: float, seed: int) -> SimulationResult:
    def build() -> SimulationResult:
        trace = common.standard_trace(seed=seed)
        game = common.make_game(trace, predictor="Neural", update="O(n^2)")
        pol = custom_policy(
            f"HP-sweep-{bulk}",
            cpu_bulk=Cpu(bulk),
            memory_bulk=Mem(2.0),
            time_bulk_minutes=180,
        )
        centers = common.standard_centers(policies=[pol])
        return common.run_ecosystem([game], centers)

    return common.cached(("fig11", bulk, seed), build)


def run(*, bulks: tuple[float, ...] = CPU_BULKS, seed: int = 1) -> Fig11Result:
    """Run the CPU-bulk sweep."""
    over, under, events = {}, {}, {}
    for bulk in bulks:
        tl = _bulk_simulation(bulk, seed).combined
        over[bulk] = tl.average_over_allocation(CPU)
        under[bulk] = tl.average_under_allocation(CPU)
        events[bulk] = tl.significant_events(CPU)
    return Fig11Result(bulks=tuple(bulks), over=over, under=under, events=events)


def format_result(result: Fig11Result) -> str:
    """Render the sweep as a table plus the two trend statements."""
    rows = [
        (f"{b:.2f}", f"{result.over[b]:.1f}", f"{result.under[b]:.3f}", result.events[b])
        for b in result.bulks
    ]
    return (
        render_table(
            ["CPU bulk [units]", "Over-alloc [%]", "Under-alloc [%]", "|Y|>1% events"],
            rows,
            title="Fig. 11 — Impact of the CPU resource bulk (time bulk fixed at 180 min)",
        )
        + "\n\nPaper trends: over-allocation rises with the bulk; "
        "under-allocation events rise as bulks get finer."
    )

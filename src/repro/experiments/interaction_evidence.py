"""Interaction evidence — player interaction determines server load.

Sections III-D and IV-D1 argue that MMOG load is driven by entity
*interactions*, not just entity counts — the premise behind the
``O(n^2)``-family update models.  This experiment measures it directly
in the emulator: per sub-zone and sample, it counts interacting pairs
(entities within interaction range) alongside entity counts, and checks

* the counts correlate strongly (interaction load is predictable from
  population, the basis of Sec. IV-B's prediction approach), and
* pairs grow *superlinearly* with the entity count (the log-log slope
  sits clearly above 1), which is why convex update models — and the
  whole Sec. V-C analysis — matter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.emulator import TABLE_I_SPECS, emulate_with_interactions
from repro.emulator.interactions import InteractionTrace, load_interaction_correlation
from repro.experiments import common
from repro.reporting import render_table

__all__ = ["run", "format_result", "InteractionEvidenceResult"]


@dataclass
class InteractionEvidenceResult:
    """Per-data-set correlation and log-log scaling exponent."""

    correlation: dict[str, float]
    scaling_exponent: dict[str, float]
    traces: dict[str, InteractionTrace]


def _scaling_exponent(trace: InteractionTrace) -> float:
    """Log-log slope of pairs vs entities over populated zone-cells."""
    n = trace.zone_counts.reshape(-1).astype(np.float64)
    pairs = trace.zone_interactions.reshape(-1).astype(np.float64)
    mask = (n >= 5) & (pairs >= 1)
    if mask.sum() < 10:
        return float("nan")
    slope, _ = np.polyfit(np.log(n[mask]), np.log(pairs[mask]), 1)
    return float(slope)


def run(
    *, sets: tuple[str, ...] = ("Set 2", "Set 6"), duration_days: float = 0.25,
    seed_offset: int = 0,
) -> InteractionEvidenceResult:
    """Measure interactions for a fast-paced and a calm data set."""

    def build() -> InteractionEvidenceResult:
        specs = {s.name: s for s in TABLE_I_SPECS}
        correlation, exponent, traces = {}, {}, {}
        for name in sets:
            config = specs[name].to_config(duration_days=duration_days)
            trace = emulate_with_interactions(config)
            traces[name] = trace
            correlation[name] = load_interaction_correlation(trace)
            exponent[name] = _scaling_exponent(trace)
        return InteractionEvidenceResult(
            correlation=correlation, scaling_exponent=exponent, traces=traces
        )

    return common.cached(
        ("interaction-evidence", sets, duration_days, seed_offset), build
    )


def format_result(result: InteractionEvidenceResult) -> str:
    """Render per-set interaction statistics."""
    rows = []
    for name, corr in result.correlation.items():
        trace = result.traces[name]
        rows.append(
            (
                name,
                f"{trace.zone_counts.mean():.1f}",
                f"{trace.zone_interactions.mean():.1f}",
                f"{corr:.3f}",
                f"{result.scaling_exponent[name]:.2f}",
            )
        )
    return render_table(
        ["Data set", "mean entities/zone", "mean pairs/zone",
         "corr(entities, pairs)", "log-log slope"],
        rows,
        title="Interaction evidence — interacting pairs vs entity counts",
    ) + (
        "\n\nPairs track population (high correlation) but grow superlinearly "
        "(slope > 1): interaction, not raw population, sets the update cost."
    )

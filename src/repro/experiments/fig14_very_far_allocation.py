"""Fig. 14 — Resource allocation per data center, *Very far* tolerance.

Decomposes each North American center's average CPU into the share
serving US East Coast requests, the share serving other regions, and
free capacity.  Claims verified: the coarse-policy US East centers are
the (only) ones left with substantial free resources, and the US East
requests themselves are served from the finer-grained Central/West
centers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datacenter.geography import LatencyClass
from repro.experiments.fig13_latency_tolerance import latency_simulation
from repro.reporting import render_table

__all__ = ["run", "format_result", "Fig14Result"]

_EAST_REGION = "US East"
_EAST_CENTERS = ("US East (1)", "US East (2)", "Canada East")


@dataclass
class Fig14Result:
    """Per-center decomposition of the Very-far allocation (CPU units)."""

    east_handled: dict[str, float]
    other_handled: dict[str, float]
    free: dict[str, float]
    capacity: dict[str, float]

    def free_fraction(self, center: str) -> float:
        """Free share of one center's CPU capacity."""
        cap = self.capacity[center]
        return self.free[center] / cap if cap > 0 else 0.0


def run(*, seed: int = 7) -> Fig14Result:
    """Decompose the Very-far simulation's per-center allocation."""
    result = latency_simulation(LatencyClass.VERY_FAR, seed=seed)
    east: dict[str, float] = {name: 0.0 for name in result.center_capacity_cpu}
    total: dict[str, float] = dict(result.center_cpu_mean)
    for (center, region), value in result.center_region_cpu_mean.items():
        if region == _EAST_REGION:
            east[center] = east.get(center, 0.0) + value
    other = {name: max(total.get(name, 0.0) - east.get(name, 0.0), 0.0) for name in total}
    free = {
        name: max(result.center_capacity_cpu[name] - total.get(name, 0.0), 0.0)
        for name in result.center_capacity_cpu
    }
    return Fig14Result(
        east_handled=east,
        other_handled=other,
        free=free,
        capacity=dict(result.center_capacity_cpu),
    )


def format_result(result: Fig14Result) -> str:
    """Render the per-center decomposition in the paper's layout."""
    rows = []
    for name in sorted(result.capacity):
        rows.append(
            (
                name,
                f"{result.east_handled.get(name, 0.0):.1f}",
                f"{result.other_handled.get(name, 0.0):.1f}",
                f"{result.free[name]:.1f}",
                f"{result.capacity[name]:.0f}",
            )
        )
    def _free_frac(names):
        free = sum(result.free[n] for n in names if n in result.free)
        cap = sum(result.capacity[n] for n in names if n in result.capacity)
        return free / cap if cap else 0.0

    east_frac = _free_frac(("US East (1)", "US East (2)"))
    west_frac = _free_frac(("US West (1)", "US West (2)"))
    return (
        render_table(
            ["Data center", "US East requests", "Other requests", "Free", "Capacity"],
            rows,
            title="Fig. 14 — Mean CPU allocation per NA data center (Very far)",
        )
        + f"\n\nFree capacity share: US East centers {east_frac * 100:.0f} % vs "
        f"US West centers {west_frac * 100:.0f} % "
        "(paper: the coarse-policy East centers are the ones left with free resources)"
    )

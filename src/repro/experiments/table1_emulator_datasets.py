"""Table I — The eight emulator trace data sets.

Runs the game emulator for every Table I configuration and reports the
configured knobs next to the *measured* dynamics, verifying that the
signal-type taxonomy (Type I high instantaneous, Type II low, Type III
medium) comes out of the emulation rather than being baked into the
output.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.emulator import (
    EmulationTrace,
    TABLE_I_SPECS,
    generate_table1_datasets,
)
from repro.experiments import common
from repro.reporting import render_table

__all__ = ["run", "format_result", "Table1Result", "datasets_cached"]


@dataclass
class Table1Result:
    """Per-data-set emulation traces and their measured dynamics."""

    traces: dict[str, EmulationTrace]
    measured_instantaneous: dict[str, float]
    measured_overall: dict[str, float]


def datasets_cached(**overrides) -> dict[str, EmulationTrace]:
    """The eight Table I traces, memoized for reuse by Figs. 5-6."""
    key = ("table1-datasets", tuple(sorted(overrides.items())))
    return common.cached(key, lambda: generate_table1_datasets(**overrides))


def run(**overrides) -> Table1Result:
    """Emulate all Table I data sets and measure their dynamics."""
    traces = datasets_cached(**overrides)
    return Table1Result(
        traces=traces,
        measured_instantaneous={
            name: tr.instantaneous_variability() for name, tr in traces.items()
        },
        measured_overall={name: tr.overall_variability() for name, tr in traces.items()},
    )


def format_result(result: Table1Result) -> str:
    """Render the Table I rows with configured + measured columns."""
    rows = []
    for spec in TABLE_I_SPECS:
        tr = result.traces[spec.name]
        agg, scout, team, camp = spec.profile_mix
        rows.append(
            (
                spec.name,
                f"{agg:.0f}/{scout:.0f}/{team:.0f}/{camp:.0f}",
                "Yes" if spec.peak_hours else "No",
                spec.peak_load,
                spec.overall_dynamics.plusses,
                spec.instantaneous_dynamics.plusses,
                str(spec.signal_type),
                f"{result.measured_overall[spec.name]:.2f}",
                f"{result.measured_instantaneous[spec.name]:.3f}",
            )
        )
    return render_table(
        ["Set", "Aggr/Scout/Team/Camp [%]", "Peak hrs", "Peak load",
         "Overall", "Inst.", "Signal", "meas. overall", "meas. inst."],
        rows,
        title="Table I — Emulator data-set configurations and measured dynamics",
    )

"""Fig. 2 — Globally active concurrent RuneScape players, Dec 07-Jan 08.

The two-month window contains the three population shocks the paper
annotates: the 10 December 2007 unpopular decision (the concurrency
drops by about a quarter in under a day), the amendment and partial
(~95 %) recovery, and two content releases (18 Dec, 15 Jan) each worth
roughly a week of ~50 % elevated concurrency.  The synthetic timeline
places the same events at days 9, 12, 17 and 45.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.reporting import render_series
from repro.traces import synthesize_global_population

__all__ = ["run", "format_result", "Fig2Result"]


@dataclass
class Fig2Result:
    """The two-month global concurrency series plus shock statistics."""

    step_days: np.ndarray
    players: np.ndarray
    pre_crash_level: float
    crash_level: float
    crash_drop_fraction: float
    crash_duration_days: float
    recovery_level_fraction: float
    surge_gain_fraction: float


def _window_mean(players: np.ndarray, days: np.ndarray, lo: float, hi: float) -> float:
    mask = (days >= lo) & (days < hi)
    return float(players[mask].mean())


def run(*, seed: int = 20081, peak_players: int = 250_000) -> Fig2Result:
    """Synthesize the Fig. 2 scenario and extract the shock statistics."""
    step_days, players = synthesize_global_population(
        n_days=60.0, seed=seed, peak_players=peak_players
    )
    # Daily means factor out the diurnal cycle when measuring the shocks.
    pre = _window_mean(players, step_days, 7.0, 9.0)
    trough = _window_mean(players, step_days, 10.0, 12.0)
    recovered = _window_mean(players, step_days, 30.0, 34.0)
    surge = _window_mean(players, step_days, 17.5, 20.0)
    return Fig2Result(
        step_days=step_days,
        players=players,
        pre_crash_level=pre,
        crash_level=trough,
        crash_drop_fraction=1.0 - trough / pre,
        crash_duration_days=0.8,
        recovery_level_fraction=recovered / pre,
        surge_gain_fraction=surge / trough - 1.0,
    )


def format_result(result: Fig2Result) -> str:
    """Render the concurrency series and the annotated shock statistics."""
    lines = [
        "Fig. 2 — Global active concurrent players (two months, 2 h averages)",
        render_series(result.players, label="concurrent players"),
        "",
        f"Pre-crash level (days 7-9):        {result.pre_crash_level:,.0f}",
        f"Post-decision trough (days 10-12): {result.crash_level:,.0f} "
        f"(-{result.crash_drop_fraction * 100:.0f} % in < 1 day; paper: ~25 %)",
        f"Recovered level (days 30-34):      "
        f"{result.recovery_level_fraction * 100:.0f} % of pre-crash (paper: ~95 %)",
        f"Content-release surge:             "
        f"+{result.surge_gain_fraction * 100:.0f} % for ~1 week (paper: ~50 %)",
    ]
    return "\n".join(lines)

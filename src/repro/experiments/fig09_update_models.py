"""Fig. 9 — Over- and under-allocation over time for three update models.

Shows the Ω(t)/Υ(t) time series for ``O(n)``, ``O(n^2)`` and ``O(n^3)``
under dynamic allocation with the Neural predictor.  Claim verified:
the higher the update-model complexity, the larger the over-allocation
fluctuations and the more frequent the significant under-allocation
events.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datacenter.resources import CPU
from repro.experiments.table6_interaction_types import model_simulation
from repro.reporting import render_series

__all__ = ["run", "format_result", "Fig9Result", "FIG9_MODELS"]

#: The three update models plotted in Fig. 9.
FIG9_MODELS: tuple[str, ...] = ("O(n)", "O(n^2)", "O(n^3)")


@dataclass
class Fig9Result:
    """Per-model Ω/Υ series and their summary statistics."""

    over: dict[str, np.ndarray]
    under: dict[str, np.ndarray]
    over_std: dict[str, float]
    events: dict[str, int]


def run(*, models: tuple[str, ...] = FIG9_MODELS, seed: int = 1) -> Fig9Result:
    """Collect the Fig. 9 series from the Sec. V-C simulations."""
    over, under, over_std, events = {}, {}, {}, {}
    for model in models:
        tl = model_simulation(model, "dynamic", seed=seed).combined
        over[model] = tl.over_allocation(CPU)
        under[model] = tl.under_allocation(CPU)
        over_std[model] = float(np.std(over[model]))
        events[model] = tl.significant_events(CPU)
    return Fig9Result(over=over, under=under, over_std=over_std, events=events)


def format_result(result: Fig9Result) -> str:
    """Render paired Ω/Υ sparklines per model."""
    lines = ["Fig. 9 — Over-/under-allocation over time per update model (dynamic)"]
    for model in result.over:
        lines.append(render_series(result.over[model], label=f"{model} over"))
        lines.append(render_series(result.under[model], label=f"{model} under"))
    lines.append("")
    lines.append(
        "Ω fluctuation (std): "
        + ", ".join(f"{m}: {s:.1f}" for m, s in result.over_std.items())
        + "   (paper: grows with complexity)"
    )
    lines.append(
        "Significant events: "
        + ", ".join(f"{m}: {e}" for m, e in result.events.items())
        + "   (paper: more frequent with complexity)"
    )
    return "\n".join(lines)

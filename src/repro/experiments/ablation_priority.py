"""Ablation — prioritizing requests by MMOG interaction type.

The paper closes Sec. V-F with: "we plan to investigate in future work
the impact of prioritizing the resource requests according to the
interaction type of the MMOG".  This ablation implements and evaluates
that mechanism on a deliberately busy platform: a light ``O(n log n)``
game and a heavy ``O(n^2 log n)`` game share the North American centers
under contention, and the request priority decides who is served first
at each step.

Measured: per-game significant under-allocation events for three
orderings (no priority, heavy-first, light-first).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import DemandModel, GameSpec, SimulationResult, update_model
from repro.datacenter import build_north_american_datacenters
from repro.datacenter.resources import CPU
from repro.experiments import common
from repro.predictors import NeuralPredictor
from repro.reporting import render_table
from repro.traces import RegionSpec, synthesize_runescape_like

__all__ = ["run", "format_result", "PriorityResult", "ORDERINGS"]

#: Priority assignments per scenario: (light priority, heavy priority).
ORDERINGS: dict[str, tuple[int, int]] = {
    "no priority": (0, 0),
    "heavy-first": (0, 1),
    "light-first": (1, 0),
}

#: A workload sized so the 107-machine NA platform saturates at the
#: shared evening peaks (priority then decides who is served) while
#: staying feasible off-peak.
_REGIONS = (
    RegionSpec("US East", "US East", n_groups=40, utc_offset_hours=-5.0),
    RegionSpec("US West", "US West", n_groups=30, utc_offset_hours=-8.0),
)


@dataclass
class PriorityResult:
    """Per-ordering, per-game event counts and under-allocation."""

    events: dict[str, dict[str, int]]
    under: dict[str, dict[str, float]]
    unmatched_steps: dict[str, int]


def _simulation(label: str, priorities: tuple[int, int], seed: int) -> SimulationResult:
    def build() -> SimulationResult:
        n_days = common.eval_days() + common.warmup_days()
        light = GameSpec(
            name="light",
            trace=synthesize_runescape_like(n_days=n_days, seed=seed, regions=_REGIONS),
            demand_model=DemandModel(update=update_model("O(n log n)")),
            predictor_factory=NeuralPredictor,
            priority=priorities[0],
        )
        heavy = GameSpec(
            name="heavy",
            trace=synthesize_runescape_like(
                n_days=n_days, seed=seed + 1, regions=_REGIONS
            ),
            demand_model=DemandModel(update=update_model("O(n^2 log n)")),
            predictor_factory=NeuralPredictor,
            priority=priorities[1],
        )
        centers = build_north_american_datacenters()
        return common.run_ecosystem([light, heavy], centers)

    return common.cached(("ablation-priority", label, seed), build)


def run(*, seed: int = 17) -> PriorityResult:
    """Run the three priority scenarios."""
    events: dict[str, dict[str, int]] = {}
    under: dict[str, dict[str, float]] = {}
    unmatched: dict[str, int] = {}
    for label, priorities in ORDERINGS.items():
        result = _simulation(label, priorities, seed)
        events[label] = {
            game: tl.significant_events(CPU) for game, tl in result.per_game.items()
        }
        under[label] = {
            game: tl.average_under_allocation(CPU)
            for game, tl in result.per_game.items()
        }
        unmatched[label] = result.unmatched_steps
    return PriorityResult(events=events, under=under, unmatched_steps=unmatched)


def format_result(result: PriorityResult) -> str:
    """Render per-ordering outcomes for both games."""
    rows = []
    for label in result.events:
        rows.append(
            (
                label,
                result.events[label]["light"],
                result.events[label]["heavy"],
                f"{result.under[label]['light']:.3f}",
                f"{result.under[label]['heavy']:.3f}",
                result.unmatched_steps[label],
            )
        )
    return render_table(
        ["Ordering", "light events", "heavy events", "light under [%]",
         "heavy under [%]", "unmatched steps"],
        rows,
        title="Ablation — request priority by interaction type (busy NA platform)",
    ) + (
        "\n\nPrioritizing a game shifts the scarce-capacity shortfalls onto "
        "the other tenant."
    )

"""Fig. 5 — Prediction accuracy of the seven algorithms on MMOG data.

Every predictor forecasts, one step ahead, the per-sub-zone entity
counts of each Table I data set; the error metric is the paper's
normalized absolute error (Sec. IV-D2).  The headline claims verified
here: the neural predictor has the lowest error overall and adapts to
every signal type, while the Average predictor collapses on Type II/III
signals.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.table1_emulator_datasets import datasets_cached
from repro.predictors import evaluate_predictors, paper_predictor_suite
from repro.reporting import render_table

__all__ = ["run", "format_result", "Fig5Result"]


@dataclass
class Fig5Result:
    """``errors[data set][predictor] -> error %`` plus rankings."""

    errors: dict[str, dict[str, float]]
    best_per_set: dict[str, str]
    wins_by_predictor: dict[str, int]


def run(*, fit_fraction: float = 0.5) -> Fig5Result:
    """Evaluate the Fig. 5 predictor suite on the Table I data sets."""
    datasets = {name: tr.zone_counts for name, tr in datasets_cached().items()}
    errors = evaluate_predictors(
        datasets, paper_predictor_suite(), fit_fraction=fit_fraction
    )
    best = {ds: min(row, key=row.get) for ds, row in errors.items()}
    wins: dict[str, int] = {}
    for winner in best.values():
        wins[winner] = wins.get(winner, 0) + 1
    return Fig5Result(errors=errors, best_per_set=best, wins_by_predictor=wins)


def format_result(result: Fig5Result) -> str:
    """Render the error matrix (rows = data sets) and the winners."""
    predictors = list(next(iter(result.errors.values())).keys())
    rows = []
    for ds, row in result.errors.items():
        rows.append([ds] + [f"{row[p]:.2f}" for p in predictors] + [result.best_per_set[ds]])
    table = render_table(
        ["Data set"] + predictors + ["best"],
        rows,
        title="Fig. 5 — Prediction error [%] per data set",
    )
    wins = ", ".join(f"{k}: {v}" for k, v in sorted(result.wins_by_predictor.items()))
    return f"{table}\n\nWins per predictor: {wins}"

"""Fig. 8 — CPU over-allocation: static vs. dynamic provisioning.

Same workload and platform as Table V, the Neural predictor for the
dynamic case; the static case installs every region's horizon peak up
front.  Claim verified: dynamic provisioning's average over-allocation
is several times lower than static's (the paper reports ~25 % vs
~250 %, i.e. roughly an order of magnitude under HP-1/HP-2, and notes
the dynamic number shrinks further under friendlier lease policies).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import SimulationResult
from repro.datacenter.resources import CPU
from repro.experiments import common
from repro.experiments.table5_predictor_allocation import predictor_simulation
from repro.reporting import render_series

__all__ = ["run", "format_result", "Fig8Result"]


@dataclass
class Fig8Result:
    """Ω(t) series and averages for both allocation modes."""

    dynamic_series: np.ndarray
    static_series: np.ndarray
    dynamic_average: float
    static_average: float

    @property
    def static_over_dynamic(self) -> float:
        """How many times more over-allocated static provisioning is."""
        return self.static_average / max(self.dynamic_average, 1e-9)


def _static_simulation(seed: int) -> SimulationResult:
    def build() -> SimulationResult:
        trace = common.standard_trace(seed=seed)
        game = common.make_game(trace, predictor="Neural", update="O(n^2)")
        centers = common.standard_centers()
        return common.run_ecosystem([game], centers, mode="static")

    return common.cached(("fig8-static", seed), build)


def run(*, seed: int = 1) -> Fig8Result:
    """Compare the static and dynamic CPU over-allocation series."""
    dynamic = predictor_simulation("Neural", seed=seed).combined
    static = _static_simulation(seed).combined
    return Fig8Result(
        dynamic_series=dynamic.over_allocation(CPU),
        static_series=static.over_allocation(CPU),
        dynamic_average=dynamic.average_over_allocation(CPU),
        static_average=static.average_over_allocation(CPU),
    )


def format_result(result: Fig8Result) -> str:
    """Render both Ω(t) series and the headline ratio."""
    return "\n".join(
        [
            "Fig. 8 — CPU over-allocation, static vs. dynamic (HP-1/HP-2, Neural)",
            render_series(result.static_series, label="static allocation"),
            render_series(result.dynamic_series, label="dynamic allocation"),
            "",
            f"Average over-allocation: dynamic {result.dynamic_average:.1f} %, "
            f"static {result.static_average:.1f} % "
            f"(static/dynamic = {result.static_over_dynamic:.1f}x; paper: ~10x "
            f"under this policy pair, 5-7x under the optimal policy of Table VI)",
        ]
    )

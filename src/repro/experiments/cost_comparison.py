"""Operation-cost comparison — the paper's economic bottom line.

"We show that the dynamic resource provisioning reduces considerably
the MMOG operation costs with a reasonable loss of performance"
(Sec. V / VII).  This experiment prices the Table VI simulations with a
rate card (dollars per resource unit-hour) and reports, per update
model, the two-week bill under static and dynamic provisioning, the
savings, and the performance cost (significant events).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datacenter.pricing import DEFAULT_PRICES, PriceList, timeline_cost
from repro.datacenter.resources import CPU
from repro.experiments.table6_interaction_types import UPDATE_MODEL_ORDER, model_simulation
from repro.reporting import render_table

__all__ = ["run", "format_result", "CostResult", "CostRow"]


@dataclass(frozen=True)
class CostRow:
    """One update model's two-week bill under both strategies."""

    update: str
    static_cost: float
    dynamic_cost: float
    events: int

    @property
    def savings_fraction(self) -> float:
        """Relative saving of going dynamic."""
        if self.static_cost <= 0:
            return 0.0
        return 1.0 - self.dynamic_cost / self.static_cost


@dataclass
class CostResult:
    """All rows plus the rate card used."""

    rows: list[CostRow]
    prices: PriceList


def run(
    *,
    updates: tuple[str, ...] = UPDATE_MODEL_ORDER,
    prices: PriceList = DEFAULT_PRICES,
    seed: int = 1,
) -> CostResult:
    """Price the Sec. V-C simulations (cached; reuses Table VI runs)."""
    rows = []
    for update in updates:
        dynamic = model_simulation(update, "dynamic", seed=seed)
        static = model_simulation(update, "static", seed=seed)
        rows.append(
            CostRow(
                update=update,
                static_cost=timeline_cost(
                    static.combined, step_minutes=static.step_minutes, prices=prices
                ),
                dynamic_cost=timeline_cost(
                    dynamic.combined, step_minutes=dynamic.step_minutes, prices=prices
                ),
                events=dynamic.combined.significant_events(CPU),
            )
        )
    return CostResult(rows=rows, prices=prices)


def format_result(result: CostResult) -> str:
    """Render the per-model bills and savings."""
    rows = [
        (
            r.update,
            f"${r.static_cost:,.0f}",
            f"${r.dynamic_cost:,.0f}",
            f"{r.savings_fraction * 100:.0f} %",
            r.events,
        )
        for r in result.rows
    ]
    best = max(result.rows, key=lambda r: r.savings_fraction)
    return (
        render_table(
            ["Update model", "Static bill", "Dynamic bill", "Savings",
             "|Y|>1% events"],
            rows,
            title="Operation cost over the evaluation window "
            "(rate card: $/unit-hour CPU {:.2f}, net {:.2f})".format(
                result.prices.cpu_per_unit_hour, result.prices.extnet_out_per_unit_hour
            ),
        )
        + f"\n\nLargest saving: {best.update} at {best.savings_fraction * 100:.0f} % "
        "(paper: dynamic provisioning 'reduces considerably the MMOG operation "
        "costs with a reasonable loss of performance')"
    )

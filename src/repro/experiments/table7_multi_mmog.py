"""Table VII — Servicing multiple MMOGs concurrently.

Setup per Sec. V-F: three MMOG types share the platform — MMOG A uses
the ``O(n log n)`` update model, MMOG B ``O(n^2)``, MMOG C
``O(n^2 log n)`` — in seven workload mixes from pure C to pure A.  The
mix percentages scale each game's server-group counts, keeping the
total workload comparable across scenarios.

Claims verified: performance is stable while the computing-intensive
B/C games dominate, the efficiency of the provisioning is determined by
its biggest consumer, and the pure-A scenario is markedly more
efficient than every mixed one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import DemandModel, GameSpec, SimulationResult, update_model
from repro.datacenter.resources import CPU
from repro.experiments import common
from repro.predictors import NeuralPredictor
from repro.reporting import render_table
from repro.traces import RegionSpec, synthesize_runescape_like
from repro.traces.synthesis import DEFAULT_REGIONS

__all__ = ["run", "format_result", "Table7Result", "Table7Row", "WORKLOAD_MIXES"]

#: The seven workload structures of Table VII: (A %, B %, C %).
WORKLOAD_MIXES: tuple[tuple[int, int, int], ...] = (
    (0, 0, 100),
    (5, 5, 90),
    (10, 10, 80),
    (25, 25, 50),
    (33, 33, 33),
    (0, 100, 0),
    (100, 0, 0),
)

_GAME_MODELS = {"A": "O(n log n)", "B": "O(n^2)", "C": "O(n^2 log n)"}


@dataclass(frozen=True)
class Table7Row:
    """One Table VII row."""

    mix: tuple[int, int, int]
    over: float
    under: float
    events: int


@dataclass
class Table7Result:
    """All rows plus the underlying simulations."""

    rows: list[Table7Row]
    simulations: dict[tuple[int, int, int], SimulationResult]


def _scaled_regions(fraction: float) -> tuple[RegionSpec, ...]:
    """The default region layout with group counts scaled by a mix share."""
    regions = []
    for spec in DEFAULT_REGIONS:
        n = max(int(round(spec.n_groups * fraction)), 1)
        regions.append(
            RegionSpec(
                spec.name, spec.location_name, n_groups=n,
                utc_offset_hours=spec.utc_offset_hours, weight=spec.weight,
            )
        )
    return tuple(regions)


def mix_simulation(mix: tuple[int, int, int], *, seed: int = 3) -> SimulationResult:
    """The Sec. V-F simulation for one workload mix (cached)."""

    def build() -> SimulationResult:
        n_days = common.eval_days() + common.warmup_days()
        games = []
        for (label, model), share in zip(_GAME_MODELS.items(), mix):
            if share <= 0:
                continue
            trace = synthesize_runescape_like(
                n_days=n_days,
                seed=seed + ord(label),
                regions=_scaled_regions(share / 100.0),
            )
            games.append(
                GameSpec(
                    name=f"mmog-{label}",
                    trace=trace,
                    demand_model=DemandModel(update=update_model(model)),
                    predictor_factory=NeuralPredictor,
                )
            )
        centers = common.optimal_centers()
        return common.run_ecosystem(games, centers)

    return common.cached(("table7", mix, seed), build)


def run(
    *, mixes: tuple[tuple[int, int, int], ...] = WORKLOAD_MIXES, seed: int = 3
) -> Table7Result:
    """Run every Table VII scenario and tabulate the averages."""
    rows = []
    sims: dict[tuple[int, int, int], SimulationResult] = {}
    for mix in mixes:
        result = mix_simulation(mix, seed=seed)
        sims[mix] = result
        tl = result.combined
        rows.append(
            Table7Row(
                mix=mix,
                over=tl.average_over_allocation(CPU),
                under=tl.average_under_allocation(CPU),
                events=tl.significant_events(CPU),
            )
        )
    return Table7Result(rows=rows, simulations=sims)


def format_result(result: Table7Result) -> str:
    """Render the Table VII rows in the paper's layout."""
    rows = [
        (
            f"{r.mix[0]:>3d} / {r.mix[1]:>3d} / {r.mix[2]:>3d}",
            f"{r.over:.2f}",
            f"{r.under:.3f}",
            r.events,
        )
        for r in result.rows
    ]
    pure_a = next(r for r in result.rows if r.mix == (100, 0, 0))
    heaviest = next(r for r in result.rows if r.mix == (0, 0, 100))
    return (
        render_table(
            ["Mix A/B/C [%]", "Over [%]", "Under [%]", "|Y|>1% events"],
            rows,
            title="Table VII — Concurrent MMOG mixes (A=O(n log n), B=O(n^2), "
            "C=O(n^2 log n))",
        )
        + f"\n\nPure-A over-allocation {pure_a.over:.1f} % vs pure-C "
        f"{heaviest.over:.1f} % (paper: the biggest consumer determines efficiency; "
        "pure A is markedly cheaper)"
    )

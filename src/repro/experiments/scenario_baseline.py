"""Scenario-driven baseline — the SYN-* control run as an experiment.

The scenario DSL (:mod:`repro.scenario`) and the experiment registry
meet here: the same constant-arrival control workload the committed
``scenarios/syn-baseline.yaml`` document describes, expressed as an
in-code :class:`~repro.scenario.schema.Scenario` literal so the RA018
value checker audits it like any other call site, run through the
standard ``run_scenario`` path, and reported with the deterministic
work counters the rerun gate compares.

Measured: the scenario's scalar counters (simulation, matching, and
data-center work), which must be byte-for-byte stable across reruns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.reporting import render_table
from repro.scenario.runner import run_scenario, scenario_jsonl
from repro.scenario.schema import Scenario

__all__ = ["run", "format_result", "ScenarioBaselineResult", "BASELINE"]

#: The in-code twin of ``scenarios/syn-baseline.yaml``: constant
#: arrivals, every stochastic stressor zeroed, two regions, short.
BASELINE = Scenario(
    scenario_id="syn-baseline",
    label="constant-arrival control run, stressors off",
    seed=2008,
    duration_days=1.0,
    warmup_days=0.25,
    arrival_process="constant",
    noise_std=0.0,
    weekend_boost=0.0,
    spike_rate_per_region_day=0.0,
    outage_rate_per_group_day=0.0,
    always_full_percent=0.0,
    region_count=2,
)


@dataclass
class ScenarioBaselineResult:
    """Counters plus the emitted JSONL for downstream diffing."""

    counters: dict[str, float]
    jsonl: str


def run() -> ScenarioBaselineResult:
    """Run the control scenario and collect its deterministic counters."""
    outcome = run_scenario(BASELINE)
    return ScenarioBaselineResult(
        counters=dict(sorted(outcome.bench.counters.items())),
        jsonl=scenario_jsonl(outcome),
    )


def format_result(result: ScenarioBaselineResult) -> str:
    rows = [
        (name, f"{value:,.0f}") for name, value in result.counters.items()
    ]
    return render_table(
        ["Counter", "Value"],
        rows,
        title=f"scenario {BASELINE.scenario_id}: deterministic work counters",
    )
